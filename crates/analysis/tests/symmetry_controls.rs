//! Negative and positive controls for the orbit-pruned, memory-bounded
//! search.
//!
//! * A fully asymmetric instance (distinct IGP costs everywhere) must
//!   report an automorphism group of order 1 and a reduction factor of
//!   exactly 1.0 — requesting symmetry on it changes nothing.
//! * A rotation-symmetric instance must actually prune: fewer visited
//!   states, reduction factor ≥ 2, same verdict evidence.
//! * The byte budget must be able to stop a search (reported as a memory
//!   stop, not a crash), and a sufficient budget must compact without
//!   observable digest collisions while reproducing the unbounded result.

use ibgp_analysis::{explore, ExploreOptions};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_topology::{Topology, TopologyBuilder};
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, Med, RouterId};
use std::sync::Arc;

fn exit(id: u32, at: u32) -> ExitPathRef {
    Arc::new(
        ExitPath::builder(ExitPathId::new(id))
            .via(AsId::new(1))
            .med(Med::new(0))
            .exit_point(RouterId::new(at))
            .build_unchecked(),
    )
}

/// Distinct IGP costs on every link and session: nothing can be relabeled.
fn asymmetric_instance() -> (Topology, Vec<ExitPathRef>) {
    let topo = TopologyBuilder::new(4)
        .link(0, 2, 10)
        .link(0, 3, 1)
        .link(1, 3, 9)
        .link(1, 2, 2)
        .cluster([0], [2])
        .cluster([1], [3])
        .build()
        .unwrap();
    (topo, vec![exit(1, 2), exit(2, 3)])
}

/// Fig 13's shape: three reflector/client clusters in a cost rotation,
/// one identical-attribute exit per client.
fn rotational_instance() -> (Topology, Vec<ExitPathRef>) {
    let costs = [[2u64, 1, 3], [3, 2, 1], [1, 3, 2]];
    let mut b = TopologyBuilder::new(6);
    for (i, row) in costs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            b = b.link(i as u32, 3 + j as u32, c);
        }
    }
    let topo = b
        .cluster([0], [3])
        .cluster([1], [4])
        .cluster([2], [5])
        .build()
        .unwrap();
    (topo, vec![exit(1, 3), exit(2, 4), exit(3, 5)])
}

#[test]
fn asymmetric_instance_reports_the_trivial_group_and_factor_one() {
    let (topo, exits) = asymmetric_instance();
    let plain = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits.clone(),
        ExploreOptions::new(),
    );
    let sym = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits,
        ExploreOptions::new().symmetry(true),
    );
    assert_eq!(sym.metrics.group_order, 1);
    assert_eq!(sym.metrics.reduction_factor(), 1.0);
    assert_eq!(sym.states, plain.states, "trivial group must not prune");
    assert_eq!(sym.stable_vectors, plain.stable_vectors);
    assert_eq!(sym.complete, plain.complete);
    // Symmetry was never requested here, so the plain run reports no
    // group at all — and still a factor of 1.0.
    assert_eq!(plain.metrics.group_order, 0);
    assert_eq!(plain.metrics.reduction_factor(), 1.0);
}

#[test]
fn rotational_instance_prunes_by_its_group_order() {
    let (topo, exits) = rotational_instance();
    let plain = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits.clone(),
        ExploreOptions::new(),
    );
    let sym = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits,
        ExploreOptions::new().symmetry(true),
    );
    assert_eq!(sym.metrics.group_order, 3, "the 3-cycle rotation");
    assert!(
        sym.states < plain.states,
        "pruning must shrink the visited set ({} vs {})",
        sym.states,
        plain.states
    );
    assert!(
        sym.metrics.reduction_factor() >= 2.0,
        "got {:.2}x",
        sym.metrics.reduction_factor()
    );
    assert_eq!(sym.metrics.orbit_states, plain.states as u64);
    assert_eq!(sym.stable_vectors, plain.stable_vectors);
    assert_eq!(sym.complete, plain.complete);
}

#[test]
fn tiny_budget_stops_the_search_as_a_memory_verdict() {
    let (topo, exits) = rotational_instance();
    let r = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits,
        ExploreOptions::new().max_bytes(64),
    );
    assert_eq!(r.stop.memory_budget(), Some(64));
    assert!(r.memory_exhausted());
    assert!(!r.complete);
    assert_eq!(
        r.stop.state_cap(),
        None,
        "stopped by memory, not the state cap"
    );
    assert!(
        r.metrics.compactions >= 1,
        "budget breach must compact first"
    );
}

#[test]
fn sufficient_budget_compacts_without_collisions_and_keeps_the_result() {
    let (topo, exits) = rotational_instance();
    let unbounded = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits.clone(),
        ExploreOptions::new(),
    );
    // Far below the exact-key footprint, far above the digest footprint.
    let bounded = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits,
        ExploreOptions::new().max_bytes(64 * 1024),
    );
    assert_eq!(bounded.metrics.compactions, 1);
    assert_eq!(bounded.metrics.digest_collisions, 0);
    assert_eq!(bounded.stop.memory_budget(), None);
    assert!(bounded.complete);
    assert_eq!(bounded.states, unbounded.states);
    assert_eq!(bounded.stable_vectors, unbounded.stable_vectors);
    // `visited_bytes` is the peak, which includes the instant the budget
    // was breached (just before compaction) — so it sits barely above it.
    assert!(bounded.metrics.visited_bytes > 0);
}
