//! Property test: the parallel sharded-frontier explorer is bit-identical
//! to the sequential search at every thread count.
//!
//! Random topologies (full mesh, one cluster, two clusters), random exit
//! sets, and all three protocol variants are explored at `jobs` ∈
//! {1, 2, 8}; every run must agree on the state count, completeness, the
//! cap verdict, and the (canonically sorted) stable-vector list. Small
//! caps are included so the mid-merge cap trip point is exercised too —
//! the capped prefix must be the same prefix at every thread count.

use ibgp_analysis::{explore, ExploreOptions};
use ibgp_proto::variants::ProtocolConfig;
use proptest::prelude::*;

mod common;
use common::{build_exits, build_topology};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn parallel_explore_is_bit_identical_to_sequential(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        memoized in any::<bool>(),
        // 0 = effectively uncapped; k > 0 caps the search after k states
        // so the cap trip point itself is compared across thread counts.
        cap_raw in 0usize..40,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];
        let max_states = if cap_raw == 0 { 200_000 } else { cap_raw };

        let opts = |jobs: usize| {
            ExploreOptions::new()
                .max_states(max_states)
                .memoized(memoized)
                .jobs(jobs)
        };
        let sequential = explore(&topo, config, exits.clone(), opts(1));

        // The canonical ordering is part of the contract.
        let mut sorted = sequential.stable_vectors.clone();
        sorted.sort();
        prop_assert_eq!(&sorted, &sequential.stable_vectors);
        prop_assert_eq!(sequential.complete, sequential.stop.state_cap().is_none());

        for jobs in [2usize, 8] {
            let parallel = explore(&topo, config, exits.clone(), opts(jobs));
            prop_assert_eq!(parallel.states, sequential.states, "jobs={}", jobs);
            prop_assert_eq!(parallel.complete, sequential.complete, "jobs={}", jobs);
            prop_assert_eq!(parallel.stop.state_cap(), sequential.stop.state_cap(), "jobs={}", jobs);
            prop_assert_eq!(
                &parallel.stable_vectors, &sequential.stable_vectors,
                "jobs={}", jobs
            );
            // Engine-side counters are sums over the same work set, so
            // they are deterministic too.
            prop_assert_eq!(
                parallel.metrics.activations, sequential.metrics.activations,
                "jobs={}", jobs
            );
            prop_assert_eq!(
                parallel.metrics.messages, sequential.metrics.messages,
                "jobs={}", jobs
            );
            prop_assert_eq!(parallel.metrics.workers, jobs as u64);
        }
    }

    /// Orbit-collapsed search is an exact reduction: at every thread
    /// count it reaches the same verdict as the plain search, visiting a
    /// subset of its states (one representative per orbit).
    #[test]
    fn symmetry_equivalence(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        cap_raw in 0usize..40,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];
        let max_states = if cap_raw == 0 { 200_000 } else { cap_raw };

        let opts = |jobs: usize, symmetry: bool| {
            ExploreOptions::new()
                .max_states(max_states)
                .jobs(jobs)
                .symmetry(symmetry)
        };
        let plain = explore(&topo, config, exits.clone(), opts(1, false));
        let sym = explore(&topo, config, exits.clone(), opts(1, true));

        // The symmetric search is deterministic across thread counts,
        // exactly like the plain one.
        let sym8 = explore(&topo, config, exits.clone(), opts(8, true));
        prop_assert_eq!(sym8.states, sym.states);
        prop_assert_eq!(sym8.complete, sym.complete);
        prop_assert_eq!(sym8.stop.state_cap(), sym.stop.state_cap());
        prop_assert_eq!(sym8.stop.memory_budget(), sym.stop.memory_budget());
        prop_assert_eq!(&sym8.stable_vectors, &sym.stable_vectors);

        // Orbit collapse can only shrink the visited set, so a capped
        // symmetric search implies a capped plain search.
        prop_assert!(sym.states <= plain.states);
        if sym.stop.state_cap().is_some() {
            prop_assert!(plain.stop.state_cap().is_some());
        }
        // No byte budget was set, so memory never stops either search.
        prop_assert_eq!(sym.stop.memory_budget(), None);
        prop_assert_eq!(plain.stop.memory_budget(), None);
        prop_assert!(sym.metrics.reduction_factor() >= 1.0);
        if sym.complete && plain.complete {
            // The representatives stand for exactly the plain state set.
            prop_assert_eq!(sym.metrics.orbit_states, plain.states as u64);
            prop_assert_eq!(&sym.stable_vectors, &plain.stable_vectors);
        }

        // A complete plain search forces a complete symmetric search,
        // and then the full classification verdicts must coincide.
        if plain.complete {
            prop_assert!(sym.complete);
            let (class_plain, _) =
                ibgp_analysis::classify(&topo, config, &exits, opts(1, false));
            let (class_sym, _) =
                ibgp_analysis::classify(&topo, config, &exits, opts(1, true));
            prop_assert_eq!(class_plain, class_sym);
        }
    }

    /// The digest-compaction memory bound is deterministic: the same
    /// budget stops the same search at the same point at every thread
    /// count, and an unbounded rerun confirms the budget only truncated
    /// (never corrupted) the search.
    #[test]
    fn memory_budget_is_deterministic_across_jobs(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        budget in 64usize..4096,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];
        let opts = |jobs: usize| {
            ExploreOptions::new()
                .max_states(200_000)
                .jobs(jobs)
                .max_bytes(budget)
        };
        let bounded = explore(&topo, config, exits.clone(), opts(1));
        prop_assert_eq!(bounded.complete, bounded.stop.memory_budget().is_none());
        if bounded.stop.memory_budget().is_some() {
            prop_assert_eq!(bounded.stop.memory_budget(), Some(budget));
            prop_assert!(bounded.metrics.compactions >= 1);
        }
        for jobs in [2usize, 8] {
            let parallel = explore(&topo, config, exits.clone(), opts(jobs));
            prop_assert_eq!(parallel.states, bounded.states, "jobs={}", jobs);
            prop_assert_eq!(parallel.stop.memory_budget(), bounded.stop.memory_budget(), "jobs={}", jobs);
            prop_assert_eq!(parallel.complete, bounded.complete, "jobs={}", jobs);
            prop_assert_eq!(
                &parallel.stable_vectors, &bounded.stable_vectors,
                "jobs={}", jobs
            );
        }
        // Digest mode can only conflate states, never invent them.
        let unbounded = explore(&topo, config, exits.clone(),
            ExploreOptions::new().max_states(200_000).jobs(1));
        prop_assert!(bounded.states <= unbounded.states);
    }
}
