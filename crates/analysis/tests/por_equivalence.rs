//! Property test: invisibility partial-order reduction is an exact
//! reduction of the activation-set search.
//!
//! Random topologies, exit sets, and protocol variants are explored with
//! `por` off and on. The contract:
//!
//! * the pruned search is a pure function of each state, so its verdict
//!   is bit-identical at every thread count;
//! * pruning never adds states, so a complete unpruned search forces a
//!   complete pruned search with the identical stable-vector list and
//!   classification;
//! * under a small cap, the pruned search may legitimately finish where
//!   the unpruned one caps out, but a capped pruned search implies a
//!   capped unpruned search;
//! * the reduction composes with symmetry orbit collapse — the combined
//!   search still matches the plain search's verdict whenever the plain
//!   search completes.

use ibgp_analysis::{classify, explore, ExploreOptions};
use ibgp_proto::variants::ProtocolConfig;
use proptest::prelude::*;

mod common;
use common::{build_exits, build_topology};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn por_is_exact_and_jobs_deterministic(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        flat in any::<bool>(),
        // 0 = effectively uncapped; k > 0 caps the search after k states
        // so the capped-off / completed-on asymmetry is exercised too.
        cap_raw in 0usize..40,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];
        let max_states = if cap_raw == 0 { 200_000 } else { cap_raw };

        let opts = |por: bool, jobs: usize| {
            ExploreOptions::new()
                .max_states(max_states)
                .flat_encoding(flat)
                .jobs(jobs)
                .por(por)
        };
        let off = explore(&topo, config, exits.clone(), opts(false, 1));
        let on = explore(&topo, config, exits.clone(), opts(true, 1));

        // The ample-set choice is a pure function of each state, so the
        // pruned search is as jobs-deterministic as the plain one.
        for jobs in [2usize, 8] {
            let par = explore(&topo, config, exits.clone(), opts(true, jobs));
            prop_assert_eq!(par.states, on.states, "jobs={}", jobs);
            prop_assert_eq!(par.complete, on.complete, "jobs={}", jobs);
            prop_assert_eq!(par.stop.state_cap(), on.stop.state_cap(), "jobs={}", jobs);
            prop_assert_eq!(&par.stable_vectors, &on.stable_vectors, "jobs={}", jobs);
            prop_assert_eq!(par.metrics.por_ample, on.metrics.por_ample, "jobs={}", jobs);
            prop_assert_eq!(par.metrics.por_full, on.metrics.por_full, "jobs={}", jobs);
        }

        // Pruning only removes redundant interleavings.
        prop_assert!(on.states <= off.states);
        if on.stop.state_cap().is_some() {
            prop_assert!(off.stop.state_cap().is_some(), "POR capped where the full search finished");
        }
        prop_assert_eq!(on.stop.memory_budget(), None);
        prop_assert_eq!(
            off.metrics.por_ample + off.metrics.por_full, 0,
            "the unpruned search must not consult the ample set"
        );

        if off.complete {
            prop_assert!(on.complete, "POR lost completeness");
            // Exactness: the identical reachable fixed-point set, hence
            // the identical (canonically sorted) stable-vector list and
            // the identical end-to-end classification.
            prop_assert_eq!(&on.stable_vectors, &off.stable_vectors);
            let (class_off, _) = classify(&topo, config, &exits, opts(false, 8));
            let (class_on, _) = classify(&topo, config, &exits, opts(true, 8));
            prop_assert_eq!(class_on, class_off);
        }
    }

    /// POR × symmetry: the two exact reductions compose, and the stack
    /// still agrees with the plain search whenever the latter completes.
    #[test]
    fn por_composes_with_symmetry(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        cap_raw in 0usize..40,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];
        let max_states = if cap_raw == 0 { 200_000 } else { cap_raw };

        let opts = |por: bool, symmetry: bool, jobs: usize| {
            ExploreOptions::new()
                .max_states(max_states)
                .symmetry(symmetry)
                .jobs(jobs)
                .por(por)
        };
        let plain = explore(&topo, config, exits.clone(), opts(false, false, 1));
        let both = explore(&topo, config, exits.clone(), opts(true, true, 1));

        // Deterministic across thread counts, like every other mode.
        let both8 = explore(&topo, config, exits.clone(), opts(true, true, 8));
        prop_assert_eq!(both8.states, both.states);
        prop_assert_eq!(both8.complete, both.complete);
        prop_assert_eq!(both8.stop.state_cap(), both.stop.state_cap());
        prop_assert_eq!(&both8.stable_vectors, &both.stable_vectors);

        prop_assert!(both.states <= plain.states);
        if plain.complete {
            prop_assert!(both.complete);
            prop_assert_eq!(&both.stable_vectors, &plain.stable_vectors);
            let (class_plain, _) = classify(&topo, config, &exits, opts(false, false, 1));
            let (class_both, _) = classify(&topo, config, &exits, opts(true, true, 1));
            prop_assert_eq!(class_both, class_plain);
        }
    }

    /// POR × the byte budget: a memory-stopped pruned search records the
    /// budget as its stop reason, stays jobs-deterministic, and an
    /// unbounded rerun confirms the budget only truncated the search.
    #[test]
    fn por_composes_with_the_byte_budget(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        budget in 64usize..4096,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];
        let opts = |jobs: usize| {
            ExploreOptions::new()
                .max_states(200_000)
                .max_bytes(budget)
                .jobs(jobs)
                .por(true)
        };
        let bounded = explore(&topo, config, exits.clone(), opts(1));
        prop_assert_eq!(bounded.complete, bounded.stop.memory_budget().is_none());
        if bounded.stop.memory_budget().is_some() {
            prop_assert_eq!(bounded.stop.memory_budget(), Some(budget));
        }
        for jobs in [2usize, 8] {
            let par = explore(&topo, config, exits.clone(), opts(jobs));
            prop_assert_eq!(par.states, bounded.states, "jobs={}", jobs);
            prop_assert_eq!(par.stop.memory_budget(), bounded.stop.memory_budget(), "jobs={}", jobs);
            prop_assert_eq!(par.complete, bounded.complete, "jobs={}", jobs);
            prop_assert_eq!(&par.stable_vectors, &bounded.stable_vectors, "jobs={}", jobs);
        }
        let unbounded = explore(&topo, config, exits.clone(),
            ExploreOptions::new().max_states(200_000).por(true));
        prop_assert!(bounded.states <= unbounded.states);
    }
}
