//! Property test: the constraint-solver backend is exact.
//!
//! Random topologies and exit sets under every selection policy. The
//! contract, against two independent oracles:
//!
//! * the solver's complete model enumeration equals the brute-force
//!   `(|P|+1)^n` odometer (`enumerate_stable_standard`) — the *global*
//!   fixed-point set, reachable or not;
//! * the reachable stable vectors found by a complete search are a
//!   subset of that global set, and whenever the two sets coincide the
//!   `--solver sat` classification equals the search classification;
//! * a solver `Persistent` (zero fixed points anywhere) implies the
//!   search's reachability-based `Persistent`;
//! * a decision-capped enumeration is honest: it reports incomplete,
//!   classifies `Unknown`, and its partial model list is a subset of
//!   the complete run's.

use ibgp_analysis::stable::enumerate_stable_standard;
use ibgp_analysis::{classify, ExploreOptions, OscillationClass};
use ibgp_proto::variants::{ProtocolConfig, ProtocolVariant};
use ibgp_proto::SelectionPolicy;
use ibgp_solver::enumerate_stable;
use ibgp_types::{ExitPathId, SearchBudget, SolverMode, VerdictOrigin};
use proptest::prelude::*;

mod common;
use common::{build_exits, build_topology};

fn sorted(mut v: Vec<Vec<Option<ExitPathId>>>) -> Vec<Vec<Option<ExitPathId>>> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn solver_matches_brute_force_and_search(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        policy_raw in 0u8..3,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let policy = [
            SelectionPolicy::PAPER,
            SelectionPolicy::RFC1771,
            SelectionPolicy::ALWAYS_COMPARE_MED,
        ][policy_raw as usize];
        let config = ProtocolConfig { variant: ProtocolVariant::Standard, policy };

        // Oracle 1: the brute-force odometer over all (|P|+1)^n vectors.
        // At most 6^5 candidates here, so the cap never trips.
        let brute = enumerate_stable_standard(&topo, policy, &exits, 1_000_000)
            .expect("candidate space fits the cap");
        let report = enumerate_stable(&topo, policy, &exits, &SearchBudget::states(usize::MAX));
        prop_assert!(report.complete, "unbounded enumeration must complete");
        prop_assert_eq!(&report.fixed_points, &sorted(brute.fixed_points.clone()));

        // Oracle 2: the reachability search. Its stable vectors are the
        // *reachable* fixed points — always a subset of the global set.
        let opts = || ExploreOptions::new().max_states(200_000);
        let (search_class, search) = classify(&topo, config, &exits, opts());
        prop_assert!(search.complete, "tiny instances must search to completion");
        prop_assert_eq!(search.origin, VerdictOrigin::Search);
        for v in &search.stable_vectors {
            prop_assert!(
                report.fixed_points.contains(v),
                "search found a stable vector the solver missed: {:?}", v
            );
        }

        let (sat_class, sat) =
            classify(&topo, config, &exits, opts().solver(SolverMode::Sat));
        prop_assert_eq!(sat.origin, VerdictOrigin::Solver);
        prop_assert_eq!(sat.states, 0, "the solver never visits a reachable state");
        prop_assert!(sat.complete);
        prop_assert_eq!(&sat.stable_vectors, &report.fixed_points);

        // Zero fixed points *anywhere* certainly means zero reachable ones.
        if sat_class == OscillationClass::Persistent {
            prop_assert_eq!(search_class, OscillationClass::Persistent);
        }
        // When every fixed point is reachable the two backends see the
        // same multiplicity and run the same unique-fixed-point cycle
        // probe, so the classifications must coincide.
        if search.stable_vectors == report.fixed_points {
            prop_assert_eq!(sat_class, search_class);
        }
    }

    /// Budget honesty: a decision-capped enumeration reports incomplete,
    /// classifies `Unknown`, and only ever under-approximates.
    #[test]
    fn capped_enumeration_is_honest(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        cap in 0usize..6,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let policy = SelectionPolicy::PAPER;

        let full = enumerate_stable(&topo, policy, &exits, &SearchBudget::states(usize::MAX));
        let capped = enumerate_stable(&topo, policy, &exits, &SearchBudget::states(cap));
        prop_assert_eq!(capped.complete, capped.stop.state_cap().is_none());
        for v in &capped.fixed_points {
            prop_assert!(full.fixed_points.contains(v), "a capped run invented a model");
        }
        if capped.complete {
            prop_assert_eq!(&capped.fixed_points, &full.fixed_points);
        } else {
            let config = ProtocolConfig { variant: ProtocolVariant::Standard, policy };
            let (class, reach) = classify(
                &topo,
                config,
                &exits,
                ExploreOptions::new().max_states(cap).solver(SolverMode::Sat),
            );
            prop_assert_eq!(class, OscillationClass::Unknown);
            prop_assert!(!reach.complete);
            prop_assert_eq!(reach.origin, VerdictOrigin::Solver);
        }
    }
}
