//! Property test: the flat fixed-width state encoding is an exact drop-in
//! for the legacy `StateKey` path.
//!
//! The two encodings key the same underlying configurations through a
//! bijection (`StateCodec::{encode_key, decode_key}`), so a search driven
//! by either must make the same New/Seen decision at every probe — and
//! therefore visit the same states in the same order, trip the same cap
//! at the same point, and surface the same stable vectors. This suite
//! drives both paths in lockstep over random instances (all three
//! protocol variants, all three session shapes, with and without
//! symmetry reduction, capped and uncapped) and asserts the full
//! observable result is identical. Encoding-internal gauges (cache
//! splits, digest collisions, byte estimates) are deliberately excluded:
//! they are allowed to differ.

use ibgp_analysis::{explore, ExploreOptions, Reachability};
use ibgp_proto::variants::ProtocolConfig;
use proptest::prelude::*;

mod common;
use common::{build_exits, build_topology};

/// Everything the two encodings must agree on.
fn assert_observably_equal(flat: &Reachability, legacy: &Reachability, label: &str) {
    assert_eq!(flat.states, legacy.states, "{label}: states");
    assert_eq!(flat.complete, legacy.complete, "{label}: complete");
    assert_eq!(
        flat.stop.state_cap(),
        legacy.stop.state_cap(),
        "{label}: cap"
    );
    assert_eq!(
        flat.stable_vectors, legacy.stable_vectors,
        "{label}: stable vectors"
    );
    let (fm, lm) = (&flat.metrics, &legacy.metrics);
    assert_eq!(fm.states_visited, lm.states_visited, "{label}: visited");
    assert_eq!(fm.activations, lm.activations, "{label}: activations");
    assert_eq!(fm.messages, lm.messages, "{label}: messages");
    assert_eq!(
        fm.paths_advertised, lm.paths_advertised,
        "{label}: paths advertised"
    );
    assert_eq!(fm.best_changes, lm.best_changes, "{label}: best changes");
    assert_eq!(fm.frontier_depth, lm.frontier_depth, "{label}: depth");
    assert_eq!(fm.peak_queue, lm.peak_queue, "{label}: peak queue");
    assert_eq!(fm.group_order, lm.group_order, "{label}: group order");
    assert_eq!(fm.orbit_states, lm.orbit_states, "{label}: orbit states");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn flat_explorer_matches_legacy_lockstep(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        symmetry in any::<bool>(),
        // 0 = effectively uncapped; k > 0 caps after k states so the cap
        // trip point itself is compared across encodings.
        cap_raw in 0usize..40,
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];
        let max_states = if cap_raw == 0 { 200_000 } else { cap_raw };

        let opts = |flat: bool, jobs: usize| {
            ExploreOptions::new()
                .max_states(max_states)
                .jobs(jobs)
                .symmetry(symmetry)
                .flat_encoding(flat)
        };
        let legacy = explore(&topo, config, exits.clone(), opts(false, 1));
        let flat = explore(&topo, config, exits.clone(), opts(true, 1));
        assert_observably_equal(&flat, &legacy, "sequential");

        // The flat path keeps the legacy determinism contract: the pool
        // reproduces the in-thread result bit for bit.
        let flat8 = explore(&topo, config, exits.clone(), opts(true, 8));
        assert_observably_equal(&flat8, &legacy, "flat jobs=8");
    }
}
