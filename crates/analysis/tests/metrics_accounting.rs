//! Regression tests for parallel rate accounting.
//!
//! A multi-worker search must report its throughput off the
//! *coordinator's* wall clock. The historical failure mode this guards
//! against: folding per-worker metrics into the aggregate sums each
//! worker's own elapsed time, so an 8-worker search reports up to 8× the
//! real wall time and a rate deflated by the same factor.

use ibgp_analysis::{explore, ExploreOptions};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, Med, RouterId};
use std::sync::Arc;
use std::time::Instant;

fn exit(id: u32, exit_point: u32) -> ExitPathRef {
    Arc::new(
        ExitPath::builder(ExitPathId::new(id))
            .via(AsId::new(1))
            .med(Med::new(0))
            .exit_point(RouterId::new(exit_point))
            .build_unchecked(),
    )
}

/// A 5-router two-cluster instance with a few thousand reachable states —
/// enough work that a summed-worker-time bug would be unmissable.
fn instance() -> (ibgp_topology::Topology, Vec<ExitPathRef>) {
    let topo = TopologyBuilder::new(5)
        .link(0, 2, 10)
        .link(0, 3, 1)
        .link(1, 3, 10)
        .link(1, 2, 1)
        .link(2, 4, 2)
        .link(3, 4, 3)
        .cluster([0], [2, 4])
        .cluster([1], [3])
        .build()
        .unwrap();
    let exits = vec![exit(1, 2), exit(2, 3), exit(3, 4)];
    (topo, exits)
}

/// A jobs=8 search must never report a rate computed from summed worker
/// time: its `elapsed_nanos` is bounded by externally observed wall
/// clock (one worker's share of which is far below 8× wall), and the
/// reported rate is exactly `states / elapsed`.
#[test]
fn parallel_rate_is_wall_clock_not_summed_worker_time() {
    let (topo, exits) = instance();
    let started = Instant::now();
    let r = explore(
        &topo,
        ProtocolConfig::STANDARD,
        exits,
        ExploreOptions::new().max_states(500_000).jobs(8),
    );
    let external_wall = started.elapsed().as_nanos() as u64;

    assert_eq!(r.metrics.workers, 8);
    assert!(r.metrics.handoffs > 0, "pool path must hand batches off");
    assert!(
        r.states > 100,
        "instance must be big enough to be probative"
    );
    // The coordinator's own clock can only read *less* than the clock
    // wrapped around the whole call. Summed worker time on a search this
    // size would exceed the external wall clock many times over.
    assert!(
        r.metrics.elapsed_nanos <= external_wall,
        "reported {} ns but the whole call took {} ns: elapsed must be \
         coordinator wall clock, not a sum over workers",
        r.metrics.elapsed_nanos,
        external_wall
    );
    assert!(r.metrics.elapsed_nanos > 0);
    // And the advertised rate is defined off that same wall clock.
    let expected = r.metrics.states_visited as f64 / (r.metrics.elapsed_nanos as f64 / 1e9);
    assert!(
        (r.metrics.states_per_sec() - expected).abs() < 1e-9,
        "states_per_sec must be states / coordinator-elapsed"
    );
}

/// The same instance at jobs ∈ {1, 2, 8} reports the same work totals —
/// engine counters are sums over a deterministic work set, and none of
/// them secretly scale with the worker count.
#[test]
fn work_totals_do_not_scale_with_worker_count() {
    let (topo, exits) = instance();
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| {
            explore(
                &topo,
                ProtocolConfig::STANDARD,
                exits.clone(),
                ExploreOptions::new().max_states(500_000).jobs(jobs),
            )
        })
        .collect();
    for (r, jobs) in runs.iter().zip([1u64, 2, 8]) {
        assert_eq!(r.metrics.workers, jobs);
        assert_eq!(r.states, runs[0].states, "jobs={jobs}");
        assert_eq!(
            r.metrics.activations, runs[0].metrics.activations,
            "jobs={jobs}"
        );
        assert_eq!(r.metrics.messages, runs[0].metrics.messages, "jobs={jobs}");
        assert_eq!(
            r.metrics.best_changes, runs[0].metrics.best_changes,
            "jobs={jobs}"
        );
    }
}
