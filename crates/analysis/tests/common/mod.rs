//! Shared random-instance generators for the equivalence suites.

use ibgp_topology::{Topology, TopologyBuilder};
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use std::sync::Arc;

/// Connected topology over `n` routers: a chain plus deduplicated extra
/// links, under one of three I-BGP session shapes.
pub fn build_topology(
    n: usize,
    shape: u8,
    chain_costs: &[u64],
    extra_links: &[(u32, u32, u64)],
) -> Topology {
    let mut b = TopologyBuilder::new(n);
    let mut seen: Vec<(u32, u32)> = Vec::new();
    for (i, &cost) in chain_costs.iter().take(n - 1).enumerate() {
        let (u, v) = (i as u32, i as u32 + 1);
        b = b.link(u, v, cost);
        seen.push((u, v));
    }
    for &(u, v, cost) in extra_links {
        let (u, v) = (u % n as u32, v % n as u32);
        let pair = (u.min(v), u.max(v));
        if u != v && !seen.contains(&pair) {
            seen.push(pair);
            b = b.link(pair.0, pair.1, cost);
        }
    }
    b = match shape {
        0 => b.full_mesh(),
        _ if shape == 2 && n >= 4 => {
            let evens: Vec<u32> = (2..n as u32).step_by(2).collect();
            let odds: Vec<u32> = (3..n as u32).step_by(2).collect();
            b.cluster([0], evens).cluster([1], odds)
        }
        _ => b.cluster([0], 1..n as u32),
    };
    b.build().expect("generated topology must validate")
}

/// Exit-path table from raw tuples, ids 1..=n_exits.
pub fn build_exits(n: usize, n_exits: usize, raw: &[(u32, u32, u32, u64)]) -> Vec<ExitPathRef> {
    raw.iter()
        .take(n_exits)
        .enumerate()
        .map(|(i, &(next_as, med, exit_point, exit_cost))| {
            Arc::new(
                ExitPath::builder(ExitPathId::new(i as u32 + 1))
                    .via(AsId::new(next_as))
                    .med(Med::new(med))
                    .exit_point(RouterId::new(exit_point % n as u32))
                    .exit_cost(IgpCost::new(exit_cost))
                    .build_unchecked(),
            )
        })
        .collect()
}
