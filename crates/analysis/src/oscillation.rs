//! Oscillation classification (§1's taxonomy).
//!
//! The paper distinguishes **persistent** route oscillations — no stable
//! routing configuration is reachable, so some routers exchange updates
//! forever under every fair schedule — from **transient** ones, where
//! stable configurations exist but particular message orderings or delays
//! keep the system churning (Fig 2, Fig 3). This module derives the class
//! from reachability evidence plus a simultaneous-activation probe.

use crate::reachability::{explore, ExploreOptions, Reachability};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::{AllAtOnce, Engine, SyncEngine};
use ibgp_topology::Topology;
use ibgp_types::ExitPathRef;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a configuration behaves under the given protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OscillationClass {
    /// No stable configuration is reachable: persistent oscillation
    /// (proven by complete exhaustive search).
    Persistent,
    /// Stable configurations exist, but oscillation or outcome divergence
    /// is possible depending on timing: either a simultaneous-activation
    /// schedule provably cycles, or multiple distinct stable outcomes are
    /// reachable.
    Transient,
    /// Exactly one stable configuration is reachable and the probe
    /// schedules converge to it.
    Stable,
    /// The exploration hit its state cap; no verdict.
    Unknown,
}

impl fmt::Display for OscillationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OscillationClass::Persistent => "persistent oscillation",
            OscillationClass::Transient => "transient oscillation possible",
            OscillationClass::Stable => "stable",
            OscillationClass::Unknown => "unknown (inconclusive search)",
        };
        f.write_str(s)
    }
}

/// Classify a scenario under a protocol configuration.
///
/// Runs the exhaustive reachability search under the given options, then
/// probes the all-at-once schedule for provable cycles. With
/// [`ExploreOptions::solver`] set to [`ibgp_types::SolverMode::Sat`] the
/// search is replaced by the constraint solver (see [`crate::solver`]),
/// falling back to search for variants the encoding does not cover.
pub fn classify(
    topo: &Topology,
    config: ProtocolConfig,
    exits: &[ExitPathRef],
    options: ExploreOptions,
) -> (OscillationClass, Reachability) {
    if options.solver == ibgp_types::SolverMode::Sat {
        if let Some(result) = crate::solver::classify_sat(topo, config, exits, &options) {
            return result;
        }
    }
    let probe_budget = 4 * options.max_states as u64 + 16;
    let loop_prevention = options.loop_prevention;
    let reach = explore(topo, config, exits.to_vec(), options);
    if !reach.complete {
        return (OscillationClass::Unknown, reach);
    }
    if reach.stable_vectors.is_empty() {
        return (OscillationClass::Persistent, reach);
    }
    if reach.stable_vectors.len() > 1 {
        return (OscillationClass::Transient, reach);
    }
    // Unique stable outcome; still check the simultaneous schedule for a
    // provable cycle (a unique fixed point can coexist with a live cycle).
    let mut engine = SyncEngine::new(topo, config, exits.to_vec());
    engine.set_loop_prevention(loop_prevention);
    let outcome = engine.run(&mut AllAtOnce, probe_budget);
    if outcome.cycled() {
        (OscillationClass::Transient, reach)
    } else {
        (OscillationClass::Stable, reach)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, ExitPathId, Med, RouterId};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    #[test]
    fn trivial_scenario_is_stable() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        let opts = ExploreOptions::new().max_states(10_000);
        let (class, reach) = classify(&topo, ProtocolConfig::STANDARD, &exits, opts);
        assert_eq!(class, OscillationClass::Stable);
        assert!(reach.can_converge());
    }

    #[test]
    fn disagree_is_transient_under_standard_and_stable_under_modified() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let opts = ExploreOptions::new().max_states(100_000);
        let (class, _) = classify(&topo, ProtocolConfig::STANDARD, &exits, opts.clone());
        assert_eq!(class, OscillationClass::Transient);
        let (class, _) = classify(&topo, ProtocolConfig::MODIFIED, &exits, opts);
        assert_eq!(class, OscillationClass::Stable);
    }

    #[test]
    fn capped_search_is_unknown() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let opts = ExploreOptions::new().max_states(2);
        let (class, reach) = classify(&topo, ProtocolConfig::STANDARD, &exits, opts);
        assert_eq!(class, OscillationClass::Unknown);
        // The class says only that the search was inconclusive; the
        // specific reason lives in the stop reason, not the class.
        assert_eq!(class.to_string(), "unknown (inconclusive search)");
        assert_eq!(
            reach.stop,
            ibgp_types::StopReason::StateCap(2),
            "the cap that stopped the search"
        );
    }
}
