//! # ibgp-analysis
//!
//! Decision procedures over I-BGP-with-route-reflection configurations:
//!
//! * [`reachability`] — exhaustive breadth-first exploration of every
//!   configuration reachable from `config(0)` under nondeterministic
//!   activation choices. This decides the paper's STABLE I-BGP WITH ROUTE
//!   REFLECTION question (§5) — NP-complete in general, solved here by
//!   bounded search on the small instances the paper's figures use.
//! * [`stable`] — direct enumeration of *all* fixed points of the
//!   standard protocol (reachable or not), used to confirm claims like
//!   "Fig 2 has exactly two stable solutions".
//! * [`solver`] — the same fixed points found by constraint solving
//!   (`ibgp-solver`'s CNF encoding + DPLL) instead of `(|P|+1)^n`
//!   enumeration; backs the `--solver sat` classification mode.
//! * [`oscillation`] — classification of a scenario as persistently
//!   oscillating, transiently oscillation-prone, or deterministically
//!   stable, from the reachability evidence.
//! * [`forwarding`] — the "real route" packet walk of §7: hop-by-hop
//!   forwarding where every intermediate router consults its *own* best
//!   route; detects the routing loops of Fig 14 and verifies the
//!   loop-freedom lemmas 7.6/7.7.
//! * [`determinism`] — the §7 uniqueness theorem as an experiment: run
//!   many distinct fair activation sequences (and crash/restart
//!   schedules) and compare the fixed points reached.
//! * [`flush`] — Lemma 7.2 as an experiment: withdrawn exit paths are
//!   eventually flushed from every `PossibleExits` set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod determinism;
pub mod flush;
pub mod forwarding;
pub mod oscillation;
mod parallel;
pub mod reachability;
pub mod solver;
pub mod stable;
mod symmetry;

pub use determinism::{determinism_report, DeterminismReport};
pub use flush::{flush_report, FlushReport};
pub use forwarding::{forward_from, forwarding_loops, lemma_7_6_violations, ForwardingResult};
pub use oscillation::{classify, OscillationClass};
pub use reachability::{explore, ExploreOptions, Reachability};
pub use solver::classify_sat;
pub use stable::{enumerate_stable_standard, StableEnumeration};
