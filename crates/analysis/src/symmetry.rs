//! The automorphism group a reachability search prunes its state space
//! with, and the tie-soundness guard that keeps the pruning exact.
//!
//! [`SymmetryGroup::compute`] asks `ibgp_topology::canon` for the router
//! permutations preserving everything the protocol dynamics observe of
//! the topology (SPF matrix, sessions, roles, clusters, plus a per-router
//! digest of injected exit attributes), then induces for each router
//! permutation `π` the matching exit-path bijection `σ`: an exit at
//! router `u` maps to the attribute-identical exit at `π(u)`, with
//! identical-attribute exits at one router matched in ascending-id order.
//! Candidates with no consistent `σ` are rejected, so every element of
//! the group acts on whole configurations: `(π, σ)` applied to a
//! [`StateKey`] permutes the node slots by `π` and renames every exit id
//! by `σ`.
//!
//! **Soundness.** `config(0)` is invariant under every element, and one
//! activation step commutes with the group action — the selection rules
//! compare only quantities the verification preserves… except the two
//! *identifier-order* tie-breaks (smallest `learnedFrom` BGP id, smallest
//! exit id), which fire only when two distinct exits survive every
//! attribute rule. [`SymmetryGroup::compute`] therefore precomputes, per
//! router, the *dangerous pairs*: distinct exits tied on local-pref,
//! AS-path length, MED (under the active [`MedMode`]), E-BGP status at
//! the router, and IGP metric from the router. A reachable state in which
//! some router's `PossibleExits` contains a dangerous pair *might* put an
//! identifier-order rule in charge, so the search checks every generated
//! state with [`SymmetryGroup::guard_trips`] and, on the first hit,
//! restarts without symmetry. Tie *occurrence* is itself defined by
//! preserved quantities, so checking orbit representatives covers every
//! orbit member; if no state trips the guard, no identifier-order rule
//! ever discriminated and the orbit-collapsed search is exact.

use ibgp_proto::variants::ProtocolConfig;
use ibgp_proto::MedMode;
use ibgp_sim::flat::{FlatKey, StateCodec};
use ibgp_sim::signature::{NodeStateKey, StateKey};
use ibgp_topology::{canon, Topology};
use ibgp_types::{ExitPathId, ExitPathRef, RouterId};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// One group element: a router permutation with its induced exit-path
/// bijection.
struct Element {
    /// Old router index → new router index.
    routers: Vec<u32>,
    /// Exit-id mapping, sorted by source id for binary search.
    exits: Vec<(ExitPathId, ExitPathId)>,
}

impl Element {
    fn map_exit(&self, p: ExitPathId) -> ExitPathId {
        match self.exits.binary_search_by_key(&p, |e| e.0) {
            Ok(i) => self.exits[i].1,
            Err(_) => p,
        }
    }

    fn apply_key(&self, key: &StateKey) -> StateKey {
        let mut nodes = vec![
            NodeStateKey {
                possible: Vec::new(),
                best: None,
                advertised: Vec::new(),
                rr: Vec::new(),
            };
            key.nodes.len()
        ];
        for (u, node) in key.nodes.iter().enumerate() {
            let mut possible: Vec<ExitPathId> =
                node.possible.iter().map(|&p| self.map_exit(p)).collect();
            possible.sort_unstable();
            let mut advertised: Vec<ExitPathId> =
                node.advertised.iter().map(|&p| self.map_exit(p)).collect();
            advertised.sort_unstable();
            nodes[self.routers[u] as usize] = NodeStateKey {
                possible,
                best: node.best.map(|p| self.map_exit(p)),
                advertised,
                // Loop-prevention attribute words never appear here:
                // symmetry is forced off whenever loop prevention is on.
                rr: Vec::new(),
            };
        }
        StateKey {
            nodes,
            phase: key.phase,
        }
    }

    fn apply_vector(&self, bv: &[Option<ExitPathId>]) -> Vec<Option<ExitPathId>> {
        let mut out = vec![None; bv.len()];
        for (u, b) in bv.iter().enumerate() {
            out[self.routers[u] as usize] = b.map(|p| self.map_exit(p));
        }
        out
    }
}

/// The automorphism group of one search instance, with its tie-soundness
/// guard. See the module docs for the exactness argument.
pub(crate) struct SymmetryGroup {
    /// Every element, identity included.
    elements: Vec<Element>,
    /// Per router: sorted exit-id pairs an identifier-order tie-break
    /// could be asked to separate.
    dangerous: Vec<Vec<(ExitPathId, ExitPathId)>>,
    has_danger: bool,
}

/// Digest of everything the attribute selection rules can read off an
/// exit path: local-pref, the full AS path, MED, exit cost. Identifiers —
/// the exit id, the exit point, and the next hop (whose BGP id enters the
/// dynamics only through the `learnedFrom` identifier-order tie-break) —
/// are deliberately excluded: they are relabeled by the group action, and
/// every rule that *orders* by them is covered by the dangerous-pair
/// guard.
fn attr_digest(p: &ExitPathRef) -> u64 {
    let mut h = DefaultHasher::new();
    p.local_pref().hash(&mut h);
    p.as_path().hash(&mut h);
    p.med().hash(&mut h);
    p.exit_cost().hash(&mut h);
    h.finish()
}

/// Full attribute equality backing the digests (collision safety).
fn attrs_equal(a: &ExitPathRef, b: &ExitPathRef) -> bool {
    a.local_pref() == b.local_pref()
        && a.as_path() == b.as_path()
        && a.med() == b.med()
        && a.exit_cost() == b.exit_cost()
}

/// Can the MED rule *fail* to separate `a` from `b` under this mode?
fn med_tied(mode: MedMode, a: &ExitPathRef, b: &ExitPathRef) -> bool {
    match mode {
        MedMode::Ignore => true,
        MedMode::AlwaysCompare => a.med() == b.med(),
        MedMode::PerNeighborAs => a.next_as() != b.next_as() || a.med() == b.med(),
    }
}

/// Is `(a, b)` a pair only an identifier-order rule could separate at
/// router `u`? Both rule orders interpose exactly the E-BGP preference
/// and the IGP metric between the attribute rules and the
/// identifier-order rules, so the condition is order-independent.
fn dangerous_at(
    topo: &Topology,
    config: &ProtocolConfig,
    u: RouterId,
    a: &ExitPathRef,
    b: &ExitPathRef,
) -> bool {
    let metric = |p: &ExitPathRef| {
        topo.igp_cost(u, p.exit_point())
            .saturating_add(p.exit_cost())
    };
    a.local_pref() == b.local_pref()
        && a.as_path_length() == b.as_path_length()
        && med_tied(config.policy.med_mode, a, b)
        && (a.exit_point() == u) == (b.exit_point() == u)
        && metric(a) == metric(b)
}

impl SymmetryGroup {
    /// Compute the group for one `(topology, protocol, exits)` instance.
    pub(crate) fn compute(topo: &Topology, config: ProtocolConfig, exits: &[ExitPathRef]) -> Self {
        let n = topo.len();

        // Router colors: the sorted multiset of exit-attribute digests
        // injected at the router.
        let colors: Vec<u64> = (0..n)
            .map(|u| {
                let mut attrs: Vec<u64> = exits
                    .iter()
                    .filter(|p| p.exit_point().index() == u)
                    .map(attr_digest)
                    .collect();
                attrs.sort_unstable();
                attrs.insert(0, canon::hash_str("exits"));
                canon::hash_parts(&attrs)
            })
            .collect();

        // Exits grouped by (router, attribute digest), ids ascending —
        // the matching blocks σ is induced from.
        let mut groups: BTreeMap<(u32, u64), Vec<&ExitPathRef>> = BTreeMap::new();
        for p in exits {
            groups
                .entry((p.exit_point().raw(), attr_digest(p)))
                .or_default()
                .push(p);
        }
        for members in groups.values_mut() {
            members.sort_by_key(|p| p.id());
        }

        let mut elements = Vec::new();
        'candidates: for perm in canon::automorphisms(topo, &colors) {
            let mut mapping: Vec<(ExitPathId, ExitPathId)> = Vec::with_capacity(exits.len());
            for ((router, digest), members) in &groups {
                let Some(targets) = groups.get(&(perm[*router as usize], *digest)) else {
                    continue 'candidates;
                };
                if targets.len() != members.len() {
                    continue 'candidates;
                }
                for (src, dst) in members.iter().zip(targets) {
                    if !attrs_equal(src, dst) {
                        continue 'candidates;
                    }
                    mapping.push((src.id(), dst.id()));
                }
            }
            mapping.sort_unstable();
            elements.push(Element {
                routers: perm,
                exits: mapping,
            });
        }
        debug_assert!(!elements.is_empty(), "identity always induces a σ");

        // The guard only matters when the group can actually relabel
        // something; a trivial group never needs it.
        let mut dangerous = vec![Vec::new(); n];
        if elements.len() > 1 {
            for (u, slot) in dangerous.iter_mut().enumerate() {
                let u = RouterId::new(u as u32);
                for (i, a) in exits.iter().enumerate() {
                    for b in exits.iter().skip(i + 1) {
                        if dangerous_at(topo, &config, u, a, b) {
                            let (lo, hi) = if a.id() < b.id() {
                                (a.id(), b.id())
                            } else {
                                (b.id(), a.id())
                            };
                            slot.push((lo, hi));
                        }
                    }
                }
            }
        }
        let has_danger = dangerous.iter().any(|d| !d.is_empty());
        Self {
            elements,
            dangerous,
            has_danger,
        }
    }

    /// Group order (≥ 1; the identity is always present).
    pub(crate) fn order(&self) -> u64 {
        self.elements.len() as u64
    }

    /// Whether the group is just the identity (no pruning possible).
    pub(crate) fn is_trivial(&self) -> bool {
        self.elements.len() <= 1
    }

    /// The lexicographically minimal image of `key` under the group, and
    /// the size of `key`'s orbit (by orbit–stabilizer, counted from the
    /// stabilizer while all images are computed anyway).
    pub(crate) fn canonical(&self, key: &StateKey) -> (StateKey, u64) {
        let mut best: Option<StateKey> = None;
        let mut stabilizer = 0u64;
        for el in &self.elements {
            let img = el.apply_key(key);
            if &img == key {
                stabilizer += 1;
            }
            if best.as_ref().is_none_or(|b| img < *b) {
                best = Some(img);
            }
        }
        let best = best.expect("group has at least the identity");
        (best, self.elements.len() as u64 / stabilizer.max(1))
    }

    /// Every group image of a stable best-exit vector (duplicates
    /// included; callers dedup). Expanding each found fixed point through
    /// the group restores exactly the plain search's stable-vector set.
    pub(crate) fn vector_orbit(&self, bv: &[Option<ExitPathId>]) -> Vec<Vec<Option<ExitPathId>>> {
        self.elements.iter().map(|el| el.apply_vector(bv)).collect()
    }

    /// Does any router's `PossibleExits` in `key` contain a dangerous
    /// pair — i.e. could an identifier-order tie-break have discriminated
    /// while producing or leaving this state?
    pub(crate) fn guard_trips(&self, key: &StateKey) -> bool {
        if !self.has_danger {
            return false;
        }
        key.nodes.iter().enumerate().any(|(u, node)| {
            self.dangerous[u].iter().any(|&(a, b)| {
                node.possible.binary_search(&a).is_ok() && node.possible.binary_search(&b).is_ok()
            })
        })
    }
}

/// The same group, compiled to act directly on [`FlatKey`]s: per element
/// a router-block permutation plus an exit *bit-position* permutation,
/// applied by remapping set bits — no id lookups, no `Vec` churn.
///
/// Canonicalization picks the word-lexicographic minimum of the orbit.
/// That representative generally differs from the [`StateKey`]-order one
/// the legacy path picks, but any fixed total order is sound: dedup is
/// by orbit (two keys collapse iff they are orbit-mates, under either
/// order), orbit sizes are order-independent, and stable vectors are
/// found at raw states and expanded through the whole group — so the
/// search's observable output is unchanged.
pub(crate) struct FlatAction {
    routers: usize,
    mask_words: usize,
    node_words: usize,
    /// Per element: router slot map (old index → new index) and exit
    /// bit-position map in codec index space.
    elements: Vec<(Vec<u32>, Vec<u32>)>,
    order: u64,
    /// Per router: dangerous pairs as (word, bit-mask) coordinates into
    /// the router's `possible` bitmask.
    dangerous: Vec<Vec<(usize, u32, usize, u32)>>,
    has_danger: bool,
}

impl FlatAction {
    /// Compile `group` against `codec`'s exit numbering.
    pub(crate) fn new(group: &SymmetryGroup, codec: &StateCodec) -> Self {
        let slot = |id: ExitPathId| {
            codec
                .index_of(id)
                .expect("group acts on injected exits only")
        };
        let elements = group
            .elements
            .iter()
            .map(|el| {
                let exits = (0..codec.exit_count())
                    .map(|e| slot(el.map_exit(codec.id_at(e))) as u32)
                    .collect();
                (el.routers.clone(), exits)
            })
            .collect();
        let dangerous = group
            .dangerous
            .iter()
            .map(|pairs| {
                pairs
                    .iter()
                    .map(|&(a, b)| {
                        let (ea, eb) = (slot(a), slot(b));
                        (ea / 32, 1u32 << (ea % 32), eb / 32, 1u32 << (eb % 32))
                    })
                    .collect()
            })
            .collect();
        Self {
            routers: codec.routers(),
            mask_words: codec.mask_words(),
            node_words: codec.node_words(),
            elements,
            order: group.order(),
            dangerous,
            has_danger: group.has_danger,
        }
    }

    /// Apply one element's action to `src`, writing into `dst`.
    fn apply(&self, element: usize, src: &[u32], dst: &mut [u32]) {
        let (routers, exits) = &self.elements[element];
        dst.fill(0);
        for u in 0..self.routers {
            let block = &src[u * self.node_words..(u + 1) * self.node_words];
            let out = routers[u] as usize * self.node_words;
            // The two bitmask fields (possible, advertised) relabel bit
            // positions; the best slot relabels its index.
            for field in [0, self.mask_words] {
                for w in 0..self.mask_words {
                    let mut bits = block[field + w];
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let e = exits[w * 32 + b] as usize;
                        dst[out + field + e / 32] |= 1 << (e % 32);
                    }
                }
            }
            let best = block[2 * self.mask_words];
            dst[out + 2 * self.mask_words] = if best == 0 {
                0
            } else {
                exits[best as usize - 1] + 1
            };
        }
    }

    /// The word-lexicographically minimal image of `key` under the
    /// group, and the size of `key`'s orbit (orbit–stabilizer, same
    /// counting as [`SymmetryGroup::canonical`]).
    pub(crate) fn canonical(&self, key: &FlatKey) -> (FlatKey, u64) {
        let src = key.words();
        let mut img = vec![0u32; src.len()];
        let mut best: Option<Vec<u32>> = None;
        let mut stabilizer = 0u64;
        for element in 0..self.elements.len() {
            self.apply(element, src, &mut img);
            if img[..] == *src {
                stabilizer += 1;
            }
            if best.as_ref().is_none_or(|b| img < *b) {
                best = Some(img.clone());
            }
        }
        let best = best.expect("group has at least the identity");
        (
            FlatKey::new(best.into_boxed_slice()),
            self.order / stabilizer.max(1),
        )
    }

    /// Flat-encoding twin of [`SymmetryGroup::guard_trips`]: does any
    /// router's `possible` bitmask contain a dangerous pair?
    pub(crate) fn guard_trips(&self, key: &FlatKey) -> bool {
        if !self.has_danger {
            return false;
        }
        let words = key.words();
        (0..self.routers).any(|u| {
            let possible = &words[u * self.node_words..];
            self.dangerous[u]
                .iter()
                .any(|&(wa, ma, wb, mb)| possible[wa] & ma != 0 && possible[wb] & mb != 0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med};
    use std::sync::Arc;

    fn exit(id: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    /// Fig 13's rotation: three reflector/client clusters arranged in a
    /// cost cycle, one identical-attribute exit per client.
    fn fig13_like() -> (Topology, Vec<ExitPathRef>) {
        let costs = [[2u64, 1, 3], [3, 2, 1], [1, 3, 2]];
        let mut b = TopologyBuilder::new(6);
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                b = b.link(i as u32, 3 + j as u32, c);
            }
        }
        let topo = b
            .cluster([0], [3])
            .cluster([1], [4])
            .cluster([2], [5])
            .build()
            .unwrap();
        let exits = vec![exit(1, 3), exit(2, 4), exit(3, 5)];
        (topo, exits)
    }

    #[test]
    fn fig13_rotation_is_found() {
        let (topo, exits) = fig13_like();
        let g = SymmetryGroup::compute(&topo, ProtocolConfig::STANDARD, &exits);
        assert_eq!(g.order(), 3, "the 3-cycle rotation group");
        assert!(!g.is_trivial());
        // The identical-attribute exits are tied everywhere but on
        // metric; at equal-metric routers they form dangerous pairs.
        assert!(g.has_danger);
    }

    #[test]
    fn asymmetric_instances_get_the_trivial_group() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 2)
            .full_mesh()
            .build()
            .unwrap();
        let g = SymmetryGroup::compute(&topo, ProtocolConfig::STANDARD, &[exit(1, 0), exit(2, 2)]);
        assert!(g.is_trivial());
        assert_eq!(g.order(), 1);
    }

    #[test]
    fn canonical_collapses_orbits_and_counts_their_size() {
        let (topo, exits) = fig13_like();
        let g = SymmetryGroup::compute(&topo, ProtocolConfig::STANDARD, &exits);
        let node = |best: Option<u32>| NodeStateKey {
            possible: vec![ExitPathId::new(1)],
            best: best.map(ExitPathId::new),
            advertised: vec![],
            rr: vec![],
        };
        // A state asymmetric across the rotation: only client 3 holds
        // anything. Its orbit has 3 members, all with one canonical form.
        let key = StateKey {
            nodes: vec![
                node(None),
                node(None),
                node(None),
                NodeStateKey {
                    possible: vec![ExitPathId::new(1)],
                    best: Some(ExitPathId::new(1)),
                    advertised: vec![ExitPathId::new(1)],
                    rr: vec![],
                },
                node(None),
                node(None),
            ],
            phase: 0,
        };
        let (canon1, orbit) = g.canonical(&key);
        assert_eq!(orbit, 3);
        // Rotate by hand with a non-identity element: another client
        // holds another exit instead.
        let rot = g
            .elements
            .iter()
            .find(|e| e.routers != (0..6).collect::<Vec<u32>>())
            .unwrap();
        let rotated = rot.apply_key(&key);
        assert_ne!(rotated, key);
        let (canon2, orbit2) = g.canonical(&rotated);
        assert_eq!(canon1, canon2, "orbit-mates share a canonical form");
        assert_eq!(orbit2, 3);
    }

    #[test]
    fn guard_fires_only_on_co_occurring_dangerous_pairs() {
        let (topo, exits) = fig13_like();
        let g = SymmetryGroup::compute(&topo, ProtocolConfig::STANDARD, &exits);
        let empty = NodeStateKey {
            possible: vec![],
            best: None,
            advertised: vec![],
            rr: vec![],
        };
        let mut nodes = vec![empty.clone(); 6];
        // Exits 2 and 3 at client 3 (router index 3): distances 1 and 3
        // differ, so the pair (2,3) is tied on metric only at routers
        // equidistant from both exit points.
        nodes[3] = NodeStateKey {
            possible: vec![ExitPathId::new(2), ExitPathId::new(3)],
            best: None,
            advertised: vec![],
            rr: vec![],
        };
        let key = StateKey {
            nodes: nodes.clone(),
            phase: 0,
        };
        // d(3, 4) = d(3, 5) = 3 via the reflectors... compute from the
        // dangerous table instead of hand-deriving: the test asserts
        // consistency between the table and the guard.
        let expected = g.dangerous[3].contains(&(ExitPathId::new(2), ExitPathId::new(3)));
        assert_eq!(g.guard_trips(&key), expected);
        // A single exit never trips the guard.
        nodes[3].possible = vec![ExitPathId::new(2)];
        assert!(!g.guard_trips(&StateKey { nodes, phase: 0 }));
    }

    /// The flat-encoding action must agree with the `StateKey` action on
    /// everything the search observes: orbit sizes, orbit-mate collapse,
    /// and the tie-break guard. (The canonical *representatives* may
    /// differ — word-lex vs `StateKey` order — so the test compares
    /// orbit structure, not representatives.)
    #[test]
    fn flat_action_agrees_with_legacy_action() {
        let (topo, exits) = fig13_like();
        let g = SymmetryGroup::compute(&topo, ProtocolConfig::STANDARD, &exits);
        let codec = StateCodec::new(topo.len(), &exits);
        let action = FlatAction::new(&g, &codec);

        let node = |possible: Vec<u32>, best: Option<u32>, advertised: Vec<u32>| NodeStateKey {
            possible: possible.into_iter().map(ExitPathId::new).collect(),
            best: best.map(ExitPathId::new),
            advertised: advertised.into_iter().map(ExitPathId::new).collect(),
            rr: vec![],
        };
        let keys = [
            // Asymmetric: only client 3 holds exit 1 — orbit of 3.
            StateKey {
                nodes: vec![
                    node(vec![], None, vec![]),
                    node(vec![], None, vec![]),
                    node(vec![], None, vec![]),
                    node(vec![1], Some(1), vec![1]),
                    node(vec![], None, vec![]),
                    node(vec![], None, vec![]),
                ],
                phase: 0,
            },
            // Rotation-symmetric: every client holds its own exit —
            // orbit of 1 (fixed by the whole group).
            StateKey {
                nodes: vec![
                    node(vec![1, 2, 3], Some(1), vec![1]),
                    node(vec![1, 2, 3], Some(2), vec![2]),
                    node(vec![1, 2, 3], Some(3), vec![3]),
                    node(vec![1], Some(1), vec![1]),
                    node(vec![2], Some(2), vec![2]),
                    node(vec![3], Some(3), vec![3]),
                ],
                phase: 0,
            },
            // Dangerous co-occurrence: a router holds two tied exits.
            StateKey {
                nodes: vec![
                    node(vec![1, 2], None, vec![]),
                    node(vec![], None, vec![]),
                    node(vec![], None, vec![]),
                    node(vec![], None, vec![]),
                    node(vec![], None, vec![]),
                    node(vec![], None, vec![]),
                ],
                phase: 0,
            },
        ];
        for key in &keys {
            let flat = codec.encode_key(key);
            let (_, legacy_orbit) = g.canonical(key);
            let (flat_canon, flat_orbit) = action.canonical(&flat);
            assert_eq!(flat_orbit, legacy_orbit, "orbit sizes agree");
            assert_eq!(
                action.guard_trips(&flat),
                g.guard_trips(key),
                "guards agree"
            );
            // Every legacy orbit-mate maps to the same flat canonical form.
            for el in &g.elements {
                let mate = codec.encode_key(&el.apply_key(key));
                let (mate_canon, mate_orbit) = action.canonical(&mate);
                assert_eq!(mate_canon, flat_canon, "orbit-mates collapse");
                assert_eq!(mate_orbit, flat_orbit);
            }
            // Round-trip sanity: the canonical form decodes to a key in
            // the legacy orbit of the original.
            let decoded = codec.decode_key(&flat_canon);
            assert!(
                g.elements.iter().any(|el| el.apply_key(key) == decoded),
                "flat canonical form is a member of the legacy orbit"
            );
        }
    }

    #[test]
    fn vector_orbit_covers_all_rotations() {
        let (topo, exits) = fig13_like();
        let g = SymmetryGroup::compute(&topo, ProtocolConfig::STANDARD, &exits);
        let bv = vec![
            Some(ExitPathId::new(1)),
            Some(ExitPathId::new(2)),
            Some(ExitPathId::new(3)),
            Some(ExitPathId::new(1)),
            Some(ExitPathId::new(2)),
            Some(ExitPathId::new(3)),
        ];
        let orbit = g.vector_orbit(&bv);
        assert_eq!(orbit.len(), 3);
        assert!(orbit.contains(&bv), "identity image present");
    }
}
