//! Direct enumeration of standard-protocol fixed points.
//!
//! For the **standard** protocol a configuration is fully determined by
//! the advertised-exit vector `a : V → P ∪ {∅}` (each node advertises
//! exactly its best route's exit path): `PossibleExits` is recomputed from
//! neighbors' advertisements on every activation, so the synchronous sweep
//! is a function `g` on such vectors, and the stable configurations are
//! exactly the fixed points of `g`. Enumerating all `(|P|+1)^n` vectors
//! finds *every* stable solution, reachable from `config(0)` or not —
//! which is how we confirm statements like "Fig 2 has exactly two stable
//! routing configurations".
//!
//! (The modified protocol needs no enumeration — §7 proves its fixed point
//! is unique and the engine computes it; Walton's advertised state is a
//! set vector and is covered by reachability search instead.)

use ibgp_proto::selection::SelectionPolicy;
use ibgp_proto::{choose_best, route_at, transfer_allowed};
use ibgp_topology::Topology;
use ibgp_types::{BgpId, ExitPathId, ExitPathRef, Route, RouterId};
use std::collections::BTreeMap;

/// All fixed points of the standard protocol on a configuration.
#[derive(Debug, Clone)]
pub struct StableEnumeration {
    /// Distinct stable best-exit vectors (indexed by router).
    pub fixed_points: Vec<Vec<Option<ExitPathId>>>,
    /// How many candidate vectors were examined.
    pub candidates_checked: u64,
}

/// Error: the candidate space exceeds the given cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationTooLarge {
    /// Number of candidate vectors the enumeration would need.
    pub candidates: u128,
    /// The cap that was exceeded.
    pub cap: u64,
}

impl std::fmt::Display for EnumerationTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stable-state enumeration needs {} candidates (cap {})",
            self.candidates, self.cap
        )
    }
}

impl std::error::Error for EnumerationTooLarge {}

/// Enumerate every stable configuration of the standard protocol.
pub fn enumerate_stable_standard(
    topo: &Topology,
    policy: SelectionPolicy,
    exits: &[ExitPathRef],
    cap: u64,
) -> Result<StableEnumeration, EnumerationTooLarge> {
    let n = topo.len();
    let m = exits.len();
    let candidates = (m as u128 + 1).pow(n as u32);
    if candidates > cap as u128 {
        return Err(EnumerationTooLarge { candidates, cap });
    }

    // Per-node own exits.
    let mut my_exits: Vec<Vec<ExitPathRef>> = vec![Vec::new(); n];
    for p in exits {
        my_exits[p.exit_point().index()].push(p.clone());
    }

    // Odometer over assignments: digit 0 = advertise nothing, digit k =
    // advertise exits[k-1].
    let mut digits = vec![0usize; n];
    let mut fixed_points = Vec::new();
    let mut checked = 0u64;
    loop {
        checked += 1;
        if let Some(bv) = check_candidate(topo, policy, &my_exits, exits, &digits) {
            fixed_points.push(bv);
        }
        // Increment odometer.
        let mut i = 0;
        loop {
            if i == n {
                return Ok(StableEnumeration {
                    fixed_points,
                    candidates_checked: checked,
                });
            }
            digits[i] += 1;
            if digits[i] <= m {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

/// If the advertised assignment is a fixed point, return its best vector.
fn check_candidate(
    topo: &Topology,
    policy: SelectionPolicy,
    my_exits: &[Vec<ExitPathRef>],
    exits: &[ExitPathRef],
    digits: &[usize],
) -> Option<Vec<Option<ExitPathId>>> {
    let n = topo.len();
    let advertised: Vec<Option<&ExitPathRef>> = digits
        .iter()
        .map(|&d| if d == 0 { None } else { Some(&exits[d - 1]) })
        .collect();
    // Quick structural pruning: a node can only advertise a path it could
    // possibly know: its own exit, or one transferable to it by someone.
    // (The full consistency check below subsumes this; the pruning just
    // keeps the common case fast.)
    let mut best_vector = Vec::with_capacity(n);
    for ui in 0..n {
        let u = RouterId::new(ui as u32);
        // Gather possible exits at u under this advertised assignment.
        let mut gathered: BTreeMap<ExitPathId, (ExitPathRef, BgpId)> = BTreeMap::new();
        for p in &my_exits[ui] {
            gathered.insert(p.id(), (p.clone(), p.next_hop().bgp_id()));
        }
        for (vi, adv) in advertised.iter().enumerate() {
            let v = RouterId::new(vi as u32);
            if v == u {
                continue;
            }
            if let Some(p) = *adv {
                if transfer_allowed(topo, v, u, p.exit_point()) {
                    let sender = topo.bgp_id(v);
                    gathered
                        .entry(p.id())
                        .and_modify(|(_, lf)| {
                            if p.exit_point() != u {
                                *lf = (*lf).min(sender);
                            }
                        })
                        .or_insert_with(|| (p.clone(), sender));
                }
            }
        }
        let routes: Vec<Route> = gathered
            .values()
            .map(|(p, lf)| route_at(topo, u, p, *lf))
            .collect();
        let best = choose_best(policy, &routes);
        let best_id = best.as_ref().map(Route::exit_id);
        let advertised_id = advertised[ui].map(|p| p.id());
        if best_id != advertised_id {
            return None;
        }
        best_vector.push(best_id);
    }
    Some(best_vector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    #[test]
    fn single_exit_has_unique_fixed_point() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        let e =
            enumerate_stable_standard(&topo, SelectionPolicy::PAPER, &exits, 1_000_000).unwrap();
        assert_eq!(e.fixed_points.len(), 1);
        assert_eq!(
            e.fixed_points[0],
            vec![Some(ExitPathId::new(1)), Some(ExitPathId::new(1))]
        );
        assert_eq!(e.candidates_checked, 4);
    }

    #[test]
    fn disagree_gadget_has_exactly_two_fixed_points() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let e =
            enumerate_stable_standard(&topo, SelectionPolicy::PAPER, &exits, 1_000_000).unwrap();
        assert_eq!(e.fixed_points.len(), 2, "{:?}", e.fixed_points);
    }

    #[test]
    fn cap_is_respected() {
        let topo = TopologyBuilder::new(4)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 1, 0, 1), exit(3, 1, 0, 2)];
        let err = enumerate_stable_standard(&topo, SelectionPolicy::PAPER, &exits, 10).unwrap_err();
        assert_eq!(err.candidates, 256);
        assert!(err.to_string().contains("256"));
    }

    #[test]
    fn no_exits_yields_the_empty_fixed_point() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let e = enumerate_stable_standard(&topo, SelectionPolicy::PAPER, &[], 100).unwrap();
        assert_eq!(e.fixed_points, vec![vec![None, None]]);
    }
}
