//! Lemma 7.2 as an experiment: withdrawn exit paths are flushed.
//!
//! After an exit path `p` is withdrawn from `MyExits(exitPoint(p))`, stale
//! copies can linger in `PossibleExits` sets and keep being re-announced
//! for a while; the lemma proves every fair activation sequence flushes
//! them in level order (exit point first, then its cluster's reflectors,
//! and so on outward). This module withdraws a path from a converged
//! system, re-runs, and reports whether — and after how many steps — the
//! path disappeared everywhere.

use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::{Activation, Engine, SyncEngine};
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef, RouterId};
use serde::{Deserialize, Serialize};

/// Outcome of a withdraw-and-flush run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlushReport {
    /// Whether the path vanished from every `PossibleExits` set.
    pub flushed: bool,
    /// Steps taken after the withdrawal until the path was gone (or the
    /// budget, if not flushed).
    pub steps_to_flush: u64,
    /// Nodes that still held the path at the end (empty when flushed).
    pub holdouts: Vec<RouterId>,
}

/// Converge the system, withdraw `victim`, and run up to `max_steps` more
/// steps under `schedule`, checking after each step whether the path has
/// been flushed from every node.
pub fn flush_report(
    topo: &Topology,
    config: ProtocolConfig,
    exits: &[ExitPathRef],
    victim: ExitPathId,
    schedule: &mut dyn Activation,
    max_steps: u64,
) -> FlushReport {
    let mut engine = SyncEngine::new(topo, config, exits.to_vec());
    engine.run(schedule, max_steps);
    engine.withdraw(victim);

    let holds = |engine: &SyncEngine| -> Vec<RouterId> {
        topo.routers()
            .filter(|&u| engine.possible_exits(u).iter().any(|p| p.id() == victim))
            .collect()
    };

    let n = topo.len();
    for step in 0..max_steps {
        let holdouts = holds(&engine);
        if holdouts.is_empty() {
            return FlushReport {
                flushed: true,
                steps_to_flush: step,
                holdouts: Vec::new(),
            };
        }
        let set = schedule.next_set(n);
        engine.step(&set);
    }
    let holdouts = holds(&engine);
    FlushReport {
        flushed: holdouts.is_empty(),
        steps_to_flush: max_steps,
        holdouts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_sim::RoundRobin;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    /// Two clusters in a chain; withdrawing the only exit flushes it from
    /// all four levels.
    #[test]
    fn modified_protocol_flushes_across_clusters() {
        let topo = TopologyBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 1)
            .link(2, 3, 1)
            .cluster([0], [1])
            .cluster([2], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 1), exit(2, 2, 3, 3)];
        let report = flush_report(
            &topo,
            ProtocolConfig::MODIFIED,
            &exits,
            ExitPathId::new(1),
            &mut RoundRobin::new(),
            1_000,
        );
        assert!(report.flushed, "{report:?}");
        assert!(report.holdouts.is_empty());
        assert!(report.steps_to_flush > 0, "stale copies exist initially");
    }

    #[test]
    fn standard_protocol_also_flushes() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 0, 2)];
        let report = flush_report(
            &topo,
            ProtocolConfig::STANDARD,
            &exits,
            ExitPathId::new(1),
            &mut RoundRobin::new(),
            1_000,
        );
        assert!(report.flushed, "{report:?}");
    }

    #[test]
    fn missing_victim_is_trivially_flushed() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        let report = flush_report(
            &topo,
            ProtocolConfig::MODIFIED,
            &exits,
            ExitPathId::new(99),
            &mut RoundRobin::new(),
            100,
        );
        assert!(report.flushed);
        assert_eq!(report.steps_to_flush, 0);
    }
}
