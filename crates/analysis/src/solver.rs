//! Classification by constraint solving (`--solver sat`).
//!
//! For the **standard** protocol the stable configurations are exactly
//! the fixed points of the `Choose_best` sweep, and `ibgp-solver`
//! enumerates those fixed points from a CNF encoding without visiting a
//! single reachable state. That answers most of the oscillation
//! taxonomy directly and *exactly*:
//!
//! * zero fixed points ⇒ [`OscillationClass::Persistent`] — and this
//!   verdict is stronger than the search's, since it rules out stable
//!   routings reachable or not;
//! * two or more ⇒ [`OscillationClass::Transient`] (multiple stable
//!   outcomes — *which* one materializes depends on timing);
//! * exactly one ⇒ stable unless the simultaneous-activation probe
//!   exhibits a live cycle around the unique fixed point, mirroring
//!   [`crate::classify`]'s probe step.
//!
//! What the encoding cannot see is reachability itself, so the one
//! asymmetry with search verdicts is deliberate: the solver's
//! multiplicity is *global* where the search's is *reachable*. The two
//! coincide whenever every fixed point is reachable from `config(0)` —
//! true for all committed specimens except the paper's Fig 3, whose
//! MED-0 solution only E-BGP injection timing can reach: there the
//! search reports a unique reachable fixed point (stable) while the
//! solver reports both (transient), matching the figure's
//! delay-driven-oscillation story. The golden suite pins both sides.
//! Non-standard variants (Walton, modified) advertise sets, not single
//! exits — the encoding does not apply and callers fall back to search.

use crate::oscillation::OscillationClass;
use crate::reachability::{ExploreOptions, Reachability};
use ibgp_proto::variants::{ProtocolConfig, ProtocolVariant};
use ibgp_sim::{AllAtOnce, Engine, Metrics, SyncEngine};
use ibgp_solver::encode::enumerate_stable;
use ibgp_topology::Topology;
use ibgp_types::{ExitPathRef, SearchBudget, VerdictOrigin};
use std::time::Instant;

/// Classify by enumerating the fixed points of `Choose_best` with the
/// constraint solver instead of exploring reachable states.
///
/// Returns `None` when the encoding does not apply: any variant other
/// than [`ProtocolVariant::Standard`], or loop prevention on (the CNF
/// encodes the §4 `Transfer` predicate, not the message-level
/// ORIGINATOR_ID / CLUSTER_LIST mechanics). The caller then falls back
/// to reachability search. The options' `max_states` caps the solver's
/// branching decisions and the deadline is honored; `max_bytes`,
/// symmetry, POR, and the jobs knob have no solver-side meaning and are
/// ignored.
pub fn classify_sat(
    topo: &Topology,
    config: ProtocolConfig,
    exits: &[ExitPathRef],
    options: &ExploreOptions,
) -> Option<(OscillationClass, Reachability)> {
    if config.variant != ProtocolVariant::Standard {
        return None;
    }
    if options.loop_prevention {
        return None;
    }
    let started = Instant::now();
    let mut budget = SearchBudget::states(options.max_states);
    if let Some(deadline) = options.deadline {
        budget = budget.deadline(deadline);
    }
    let report = enumerate_stable(topo, config.policy, exits, &budget);
    let class = if !report.complete {
        OscillationClass::Unknown
    } else if report.fixed_points.is_empty() {
        OscillationClass::Persistent
    } else if report.fixed_points.len() > 1 {
        OscillationClass::Transient
    } else {
        // Unique fixed point: probe the simultaneous schedule for a live
        // cycle, exactly as the search-based classifier does.
        let probe_budget = 4 * options.max_states as u64 + 16;
        let mut engine = SyncEngine::new(topo, config, exits.to_vec());
        if engine.run(&mut AllAtOnce, probe_budget).cycled() {
            OscillationClass::Transient
        } else {
            OscillationClass::Stable
        }
    };
    let metrics = Metrics {
        elapsed_nanos: started.elapsed().as_nanos() as u64,
        ..Metrics::default()
    };
    Some((
        class,
        Reachability {
            states: 0,
            complete: report.complete,
            stable_vectors: report.fixed_points,
            stop: report.stop,
            metrics,
            origin: VerdictOrigin::Solver,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, ExitPathId, Med, RouterId, SolverMode, StopReason};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    fn disagree() -> (Topology, Vec<ExitPathRef>) {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        (topo, exits)
    }

    #[test]
    fn non_standard_variants_decline() {
        let (topo, exits) = disagree();
        let opts = ExploreOptions::new();
        assert!(classify_sat(&topo, ProtocolConfig::MODIFIED, &exits, &opts).is_none());
        assert!(classify_sat(&topo, ProtocolConfig::WALTON, &exits, &opts).is_none());
    }

    /// Loop prevention changes route propagation in ways the CNF does
    /// not model, so the solver declines and `classify` resolves the
    /// request via search — with an honest `Search` origin.
    #[test]
    fn loop_prevention_declines_and_falls_back_to_search() {
        let (topo, exits) = disagree();
        let opts = ExploreOptions::new()
            .max_states(100_000)
            .solver(SolverMode::Sat)
            .loop_prevention(true);
        assert!(classify_sat(&topo, ProtocolConfig::STANDARD, &exits, &opts).is_none());
        let (_, reach) = crate::classify(&topo, ProtocolConfig::STANDARD, &exits, opts);
        assert_eq!(reach.origin, VerdictOrigin::Search);
    }

    #[test]
    fn solver_and_search_agree_on_the_disagree_gadget() {
        let (topo, exits) = disagree();
        let opts = ExploreOptions::new().max_states(100_000);
        let (sat_class, sat_reach) =
            classify_sat(&topo, ProtocolConfig::STANDARD, &exits, &opts).unwrap();
        let (search_class, search_reach) =
            crate::classify(&topo, ProtocolConfig::STANDARD, &exits, opts);
        assert_eq!(sat_class, search_class);
        assert_eq!(sat_reach.stable_vectors, search_reach.stable_vectors);
        assert_eq!(sat_reach.origin, VerdictOrigin::Solver);
        assert_eq!(search_reach.origin, VerdictOrigin::Search);
        assert_eq!(sat_reach.states, 0, "no reachable state is ever visited");
        assert!(sat_reach.complete);
    }

    #[test]
    fn unique_fixed_point_still_runs_the_cycle_probe() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        let opts = ExploreOptions::new().max_states(10_000);
        let (class, reach) = classify_sat(&topo, ProtocolConfig::STANDARD, &exits, &opts).unwrap();
        assert_eq!(class, OscillationClass::Stable);
        assert_eq!(reach.stable_vectors.len(), 1);
    }

    #[test]
    fn classify_dispatches_on_the_solver_option() {
        let (topo, exits) = disagree();
        let opts = ExploreOptions::new()
            .max_states(100_000)
            .solver(SolverMode::Sat);
        let (class, reach) = crate::classify(&topo, ProtocolConfig::STANDARD, &exits, opts);
        assert_eq!(class, OscillationClass::Transient);
        assert_eq!(reach.origin, VerdictOrigin::Solver);
        // Non-standard variants fall back to search transparently.
        let opts = ExploreOptions::new()
            .max_states(100_000)
            .solver(SolverMode::Sat);
        let (class, reach) = crate::classify(&topo, ProtocolConfig::MODIFIED, &exits, opts);
        assert_eq!(class, OscillationClass::Stable);
        assert_eq!(reach.origin, VerdictOrigin::Search);
    }

    #[test]
    fn expired_deadline_is_unknown() {
        let (topo, exits) = disagree();
        let opts = ExploreOptions::new()
            .max_states(100_000)
            .deadline(Instant::now() - std::time::Duration::from_secs(1));
        let (class, reach) = classify_sat(&topo, ProtocolConfig::STANDARD, &exits, &opts).unwrap();
        assert_eq!(class, OscillationClass::Unknown);
        assert_eq!(reach.stop, StopReason::Deadline);
        assert!(!reach.complete);
    }
}
