//! Level-synchronous parallel driver for the reachability search.
//!
//! The exploration of [`crate::reachability`] is a BFS over configurations
//! whose per-state work — restore a snapshot, test stability, derive the
//! `n + 1` branch successors, canonicalize each — is embarrassingly
//! parallel, while its *bookkeeping* (dedup, the state cap, stable-vector
//! collection) is order-sensitive. This module splits the two:
//!
//! * **Workers** expand whole BFS levels in parallel, in *batches* of
//!   frontier states. Each worker owns a private [`SyncEngine`] (the
//!   engine is `Send` but not `Sync` — its memo is a `RefCell`) and
//!   restores it per unit. A worker reports either the state's stable
//!   best-exit vector or its successor list, pre-filtered against the
//!   *frozen* visited set of earlier levels — a read-only,
//!   order-independent test.
//! * **The coordinator** merges each level's unit outcomes *sequentially
//!   in canonical order* (frontier index, then branch index): within-level
//!   dedup, state counting, the cap and byte-budget checks, and
//!   stable-vector collection all happen here, in exactly the order the
//!   single-threaded explorer would perform them.
//!
//! **No locks on the hot path.** The visited set is a plain (unlocked)
//! striped table owned behind an [`Arc`]. While a level runs, workers
//! hold shared clones of that `Arc` — shipped to them inside each work
//! batch and shipped back with the results — and only *read*. Between
//! levels every clone has been returned, so the coordinator reclaims
//! unique ownership ([`Arc::get_mut`]) and inserts sequentially. The only
//! synchronization anywhere is the message channels themselves (plus a
//! `Mutex` around the shared work-queue receiver, held just long enough
//! to pop a batch). Nothing ever blocks a worker mid-expansion.
//!
//! **Two state encodings** drive the same search skeleton through the
//! [`Scheme`] trait:
//!
//! * [`FlatScheme`] (the default): states are [`FlatKey`]s — fixed-width
//!   `u32` blocks per router encoding (possible, advertised, best) as
//!   bitmasks over the injected exit-path table (see
//!   [`ibgp_sim::flat`]). The engine's [`SyncEngine::plan`] /
//!   [`SyncEngine::branch_key`] API derives every branch successor's key
//!   from one set of memoized update rows *without* restoring or stepping
//!   the engine per branch, and only materializes a full snapshot
//!   ([`SyncEngine::branch_snapshot`]) for successors that survive the
//!   visited pre-filter. Symmetry acts directly on the words via
//!   [`FlatAction`].
//! * [`LegacyScheme`] (`flat = false`): the original restore-step-rekey
//!   path over [`StateKey`]s, kept as the executable specification the
//!   equivalence suite drives the flat path against.
//!
//! The key spaces are bijective (`StateCodec::{encode_key, decode_key}`),
//! so both schemes visit the same states in the same order and report
//! identical `states`, `complete`, `stable_vectors`, and cap points. Only
//! encoding-internal gauges (cache splits, digests, byte estimates) may
//! differ.
//!
//! Determinism: a state's outcome is a pure function of its snapshot (the
//! pre-filter can only drop successors the merge would reject anyway), so
//! the merged per-level view is bit-identical for every `jobs` value,
//! including the in-thread `jobs = 1` path. Only the per-worker memo
//! split (cache hit/miss counts) varies with scheduling.
//!
//! **Symmetry reduction** ([`ExploreOptions::symmetry`]): each successor
//! key is canonicalized under the instance's automorphism group (see
//! [`crate::symmetry`]) *before* the visited-set probe, so orbit-mates
//! collapse to one representative. Stable vectors found at
//! representatives are expanded back through the group, which restores
//! exactly the plain search's stable-vector set. If any generated state
//! could have put an identifier-order tie-break in charge (the guard in
//! `crate::symmetry`), the whole search deterministically restarts with
//! symmetry off.
//!
//! **Partial-order reduction** ([`ExploreOptions::por`]): before
//! expanding a state's branches, each worker asks the engine for the
//! state's ample set — the enabled routers whose activation leaves every
//! transfer-filtered outgoing advertisement unchanged and therefore
//! commutes with every other transition (see `SyncEngine::ample_set` for
//! the exactness argument, including the structural discharge of the
//! cycle proviso). When the set is non-empty the state expands through
//! that one compound branch instead of all `n + 1`; otherwise it falls
//! back to full expansion. The choice is a pure function of the
//! snapshot, so verdicts stay bit-identical across `jobs`, and it is
//! automorphism-equivariant, so it composes with symmetry reduction
//! (and with the guard's symmetry-free restart, which keeps POR on).
//!
//! **Memory bounding** ([`ExploreOptions::max_bytes`]): the coordinator
//! accounts an estimated byte footprint for every inserted key. On the
//! first budget breach it compacts every shard from full keys to
//! digest-only hashes (64-bit, collision-counted while exact keys are
//! still around); if the digests alone breach the budget, the search
//! stops and reports "ran out of memory budget" instead of OOMing. Byte
//! estimates are per-encoding (`FlatKey`s are much smaller than
//! `StateKey`s), so a given budget caps the flat and legacy searches at
//! different points — but identically across `jobs` values within one
//! encoding.

use crate::reachability::{ExploreOptions, Reachability};
use crate::symmetry::{FlatAction, SymmetryGroup};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::signature::StateKey;
use ibgp_sim::{FlatKey, Metrics, StateCodec, SyncEngine, SyncSnapshot};
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef, RouterId, StopReason};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of visited-set stripes. A fixed power of two keeps
/// digest-sharded occupancy balanced.
const SHARD_COUNT: usize = 64;

/// Accounted bytes per hash-map entry beyond the key payload (digest,
/// bucket bookkeeping). An estimate, like `approx_bytes`.
const ENTRY_OVERHEAD: usize = 48;

/// Accounted bytes per digest-only entry after compaction.
const DIGEST_ENTRY_BYTES: usize = 16;

/// Largest number of frontier states bundled into one worker handoff.
const MAX_BATCH: usize = 256;

/// What the visited set needs from a state key: a well-mixed 64-bit
/// digest for sharding/bucketing and a byte estimate for the memory
/// budget. Implemented by both encodings.
pub(crate) trait SearchKey: Eq + Send + Sync {
    fn digest(&self) -> u64;
    fn approx_bytes(&self) -> usize;
}

impl SearchKey for StateKey {
    fn digest(&self) -> u64 {
        StateKey::digest(self)
    }
    fn approx_bytes(&self) -> usize {
        StateKey::approx_bytes(self)
    }
}

impl SearchKey for FlatKey {
    fn digest(&self) -> u64 {
        FlatKey::digest(self)
    }
    fn approx_bytes(&self) -> usize {
        FlatKey::approx_bytes(self)
    }
}

/// One shard of the visited set: exact keys until a memory budget forces
/// digest-only compaction.
enum ShardStore<K> {
    /// Digest → colliding keys. Exact membership, collision-free.
    Exact(HashMap<u64, Vec<K>>),
    /// Digests only. A collision conflates two states (counted while the
    /// exact keys were still around; unobservable afterwards).
    Digest(HashSet<u64>),
}

/// What one insert did.
enum Inserted {
    /// The key was new; `bytes` is its accounted footprint and
    /// `collision` whether it shares a digest with a distinct key
    /// (observable in exact mode only).
    New { bytes: usize, collision: bool },
    /// Already present (or digest-conflated).
    Seen,
}

/// The visited set, striped by key digest. Deliberately lock-free: the
/// coordinator owns it mutably between levels (via [`Arc::get_mut`]);
/// workers only ever hold it behind a shared `Arc` and call [`Self::contains`].
struct Visited<K> {
    shards: Vec<ShardStore<K>>,
}

impl<K: SearchKey> Visited<K> {
    fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| ShardStore::Exact(HashMap::new()))
                .collect(),
        }
    }

    /// Read-only membership test (the workers' pre-filter).
    fn contains(&self, key: &K) -> bool {
        let digest = key.digest();
        match &self.shards[(digest % SHARD_COUNT as u64) as usize] {
            ShardStore::Exact(map) => map.get(&digest).is_some_and(|bucket| bucket.contains(key)),
            ShardStore::Digest(set) => set.contains(&digest),
        }
    }

    /// Insert if new (the coordinator's authoritative dedup).
    fn insert(&mut self, key: K) -> Inserted {
        let digest = key.digest();
        match &mut self.shards[(digest % SHARD_COUNT as u64) as usize] {
            ShardStore::Exact(map) => {
                let bucket = map.entry(digest).or_default();
                if bucket.contains(&key) {
                    Inserted::Seen
                } else {
                    let collision = !bucket.is_empty();
                    let bytes = key.approx_bytes() + if collision { 0 } else { ENTRY_OVERHEAD };
                    bucket.push(key);
                    Inserted::New { bytes, collision }
                }
            }
            ShardStore::Digest(set) => {
                if set.insert(digest) {
                    Inserted::New {
                        bytes: DIGEST_ENTRY_BYTES,
                        collision: false,
                    }
                } else {
                    Inserted::Seen
                }
            }
        }
    }

    /// Drop every exact key, keeping digests only. Returns the accounted
    /// footprint of the compacted set.
    fn compact(&mut self) -> usize {
        let mut total = 0usize;
        for shard in &mut self.shards {
            let digests: HashSet<u64> = match shard {
                ShardStore::Exact(map) => map.keys().copied().collect(),
                ShardStore::Digest(set) => std::mem::take(set),
            };
            total += digests.len() * DIGEST_ENTRY_BYTES;
            *shard = ShardStore::Digest(digests);
        }
        total
    }

    /// Most keys (or digests) held by any one shard (balance gauge).
    fn peak_shard(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s {
                ShardStore::Exact(map) => map.values().map(Vec::len).sum::<usize>(),
                ShardStore::Digest(set) => set.len(),
            })
            .max()
            .unwrap_or(0) as u64
    }
}

/// What one frontier state turned out to be.
enum UnitOutcome<K> {
    /// A fixed point, with its best-exit vector.
    Stable(Vec<Option<ExitPathId>>),
    /// Not stable: per branch successor not already visited in an earlier
    /// level, in branch order: its (canonical) key, raw snapshot, and
    /// orbit size (1 without symmetry).
    Expanded {
        fresh: Vec<(K, SyncSnapshot, u64)>,
        /// A successor tripped the tie-soundness guard: the whole search
        /// must restart without symmetry.
        unsound: bool,
        /// The state was expanded through the single compound ample
        /// branch of the partial-order reduction (false for full
        /// expansion — including every expansion when POR is off).
        ample: bool,
    },
}

/// One encoding's search strategy: how to key the initial state and how
/// to expand one frontier state into outcomes. Shared (`&self`) across
/// worker threads; all engine state lives in the per-worker `SyncEngine`.
trait Scheme: Sync {
    type Key: SearchKey;

    /// Per-engine setup (e.g. attaching the flat codec). Called once for
    /// the coordinator's engine and once per worker engine.
    fn prepare_engine(&self, engine: &mut SyncEngine);

    /// Key and orbit size of the engine's current (initial) state, or
    /// `None` if it already trips the tie-soundness guard.
    fn initial(&self, engine: &mut SyncEngine) -> Option<(Self::Key, u64)>;

    /// Expand one frontier state on the given (prepared) engine.
    fn expand_unit(
        &self,
        engine: &mut SyncEngine,
        snap: &SyncSnapshot,
        branches: &[Vec<RouterId>],
        visited: &Visited<Self::Key>,
    ) -> UnitOutcome<Self::Key>;

    /// All images of a stable best-exit vector under the group (just the
    /// vector itself without symmetry).
    fn vector_orbit(&self, bv: &[Option<ExitPathId>]) -> Vec<Vec<Option<ExitPathId>>>;
}

/// The original restore-step-rekey path over [`StateKey`]s. Kept as the
/// executable specification that the equivalence tests drive [`FlatScheme`]
/// against.
struct LegacyScheme<'g> {
    group: Option<&'g SymmetryGroup>,
    por: bool,
}

impl Scheme for LegacyScheme<'_> {
    type Key = StateKey;

    fn prepare_engine(&self, _engine: &mut SyncEngine) {}

    fn initial(&self, engine: &mut SyncEngine) -> Option<(StateKey, u64)> {
        let raw = engine.state_key(0);
        match self.group {
            Some(g) => {
                if g.guard_trips(&raw) {
                    return None;
                }
                Some(g.canonical(&raw))
            }
            None => Some((raw, 1)),
        }
    }

    fn expand_unit(
        &self,
        engine: &mut SyncEngine,
        snap: &SyncSnapshot,
        branches: &[Vec<RouterId>],
        visited: &Visited<StateKey>,
    ) -> UnitOutcome<StateKey> {
        engine.restore(snap);
        let plan = engine.plan();
        if plan.stable {
            return UnitOutcome::Stable(engine.best_vector());
        }
        // POR: one compound ample branch when the engine can prove the
        // commutation precondition, the full branch set otherwise. The
        // choice is a pure function of the snapshot, so verdicts stay
        // bit-identical at every `jobs` value.
        let ample = if self.por {
            engine.ample_set(&plan)
        } else {
            None
        };
        let reduced = ample.is_some();
        let ample_storage;
        let branches: &[Vec<RouterId>] = match ample {
            Some(set) => {
                ample_storage = [set];
                &ample_storage
            }
            None => branches,
        };
        let mut fresh = Vec::new();
        for branch in branches {
            engine.restore(snap);
            engine.step(branch);
            let raw = engine.state_key(0);
            let (key, orbit) = match self.group {
                Some(g) => {
                    if g.guard_trips(&raw) {
                        // The level is abandoned wholesale; no point
                        // finishing this unit.
                        return UnitOutcome::Expanded {
                            fresh: Vec::new(),
                            unsound: true,
                            ample: false,
                        };
                    }
                    g.canonical(&raw)
                }
                None => (raw, 1),
            };
            // Pre-filter against earlier levels only: the set is frozen
            // while the level runs, so this test is order-independent.
            // Within-level duplicates are the coordinator's job.
            if !visited.contains(&key) {
                fresh.push((key, engine.snapshot(), orbit));
            }
        }
        UnitOutcome::Expanded {
            fresh,
            unsound: false,
            ample: reduced,
        }
    }

    fn vector_orbit(&self, bv: &[Option<ExitPathId>]) -> Vec<Vec<Option<ExitPathId>>> {
        match self.group {
            Some(g) => g.vector_orbit(bv),
            None => vec![bv.to_vec()],
        }
    }
}

/// The flat fixed-width encoding path. One [`SyncEngine::plan`] per
/// frontier state replaces the per-branch restore/step churn, and
/// [`SyncEngine::branch_snapshot`] only runs for successors that survive
/// the pre-filter.
struct FlatScheme<'g> {
    codec: Arc<StateCodec>,
    group: Option<&'g SymmetryGroup>,
    action: Option<FlatAction>,
    por: bool,
}

impl Scheme for FlatScheme<'_> {
    type Key = FlatKey;

    fn prepare_engine(&self, engine: &mut SyncEngine) {
        engine.set_codec(Arc::clone(&self.codec));
    }

    fn initial(&self, engine: &mut SyncEngine) -> Option<(FlatKey, u64)> {
        let raw = engine.flat_key();
        match &self.action {
            Some(a) => {
                if a.guard_trips(&raw) {
                    return None;
                }
                Some(a.canonical(&raw))
            }
            None => Some((raw, 1)),
        }
    }

    fn expand_unit(
        &self,
        engine: &mut SyncEngine,
        snap: &SyncSnapshot,
        branches: &[Vec<RouterId>],
        visited: &Visited<FlatKey>,
    ) -> UnitOutcome<FlatKey> {
        engine.restore(snap);
        let plan = engine.plan();
        if plan.stable {
            return UnitOutcome::Stable(engine.best_vector());
        }
        // POR branch choice: identical rule to the legacy scheme (the
        // equivalence suite holds the two encodings to the same reduced
        // state space).
        let ample = if self.por {
            engine.ample_set(&plan)
        } else {
            None
        };
        let reduced = ample.is_some();
        let ample_storage;
        let branches: &[Vec<RouterId>] = match ample {
            Some(set) => {
                ample_storage = [set];
                &ample_storage
            }
            None => branches,
        };
        let mut fresh = Vec::new();
        for branch in branches {
            let raw = engine.branch_key(&plan, branch);
            let (key, orbit) = match &self.action {
                Some(a) => {
                    if a.guard_trips(&raw) {
                        return UnitOutcome::Expanded {
                            fresh: Vec::new(),
                            unsound: true,
                            ample: false,
                        };
                    }
                    a.canonical(&raw)
                }
                None => (raw, 1),
            };
            if !visited.contains(&key) {
                fresh.push((key, engine.branch_snapshot(&plan, branch), orbit));
            }
        }
        UnitOutcome::Expanded {
            fresh,
            unsound: false,
            ample: reduced,
        }
    }

    fn vector_orbit(&self, bv: &[Option<ExitPathId>]) -> Vec<Vec<Option<ExitPathId>>> {
        match self.group {
            Some(g) => g.vector_orbit(bv),
            None => vec![bv.to_vec()],
        }
    }
}

/// One worker handoff: a slice of the frontier plus a shared handle on
/// the frozen visited set (returned with the results so the coordinator
/// can reclaim unique ownership between levels).
struct Batch<K> {
    /// Index of `units[0]` within the level's frontier.
    base: usize,
    units: Vec<SyncSnapshot>,
    visited: Arc<Visited<K>>,
}

/// Messages from workers to the coordinator.
enum WorkerMsg<K> {
    /// Outcomes of one batch, in unit order, plus the returned visited
    /// handle.
    Batch {
        base: usize,
        outcomes: Vec<UnitOutcome<K>>,
        visited: Arc<Visited<K>>,
    },
    /// Final engine counters, sent once when the worker shuts down.
    Done(Metrics),
}

/// Order-sensitive search bookkeeping, owned by the coordinator.
struct Progress {
    stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    states: usize,
    /// Why the search ended ([`StopReason::Complete`] unless a budget
    /// actually stopped it — never inferred from incompleteness).
    stop: StopReason,
    /// The tie-soundness guard fired: discard everything and rerun
    /// without symmetry.
    unsound: bool,
    frontier_depth: u64,
    peak_queue: u64,
    /// Work units expanded (= handoffs when a pool is in use).
    units: u64,
    /// Sum of orbit sizes over visited representatives (= reachable
    /// states the representatives stand for).
    orbit_states: u64,
    /// Current and peak accounted visited-set footprint.
    bytes: usize,
    peak_bytes: usize,
    collisions: u64,
    compactions: u64,
    /// Frontier states expanded through the compound ample branch.
    por_ample: u64,
    /// Frontier states fully expanded (the POR conservative fallback;
    /// counts every expansion when POR is off).
    por_full: u64,
}

/// The limits and initial-state accounting a `drive` run starts from.
struct DriveStart {
    max_states: usize,
    max_bytes: Option<usize>,
    deadline: Option<Instant>,
    /// Accounted bytes of the initial state's visited entry.
    initial_bytes: usize,
    /// Orbit size of the initial state (1 without symmetry).
    initial_orbit: u64,
}

/// Reclaim unique ownership of the visited set between levels. Panics if
/// any worker still holds a clone — which would be a protocol bug, since
/// every batch handle is shipped back with its results.
fn owned<K: SearchKey>(v: &mut Arc<Visited<K>>) -> &mut Visited<K> {
    Arc::get_mut(v).expect("level over: all clones returned")
}

/// Run the level loop: expand each frontier via `expand`, then merge the
/// outcomes in canonical (frontier index, branch index) order. This merge
/// is the single place dedup, the state cap, the byte budget, and
/// stable-vector discovery happen, which is what makes the result
/// independent of how `expand` schedules the per-unit work.
///
/// `expand` reads the visited set through the shared `Arc`; it must have
/// dropped every clone by the time it returns, because the merge reclaims
/// unique ownership to insert.
fn drive<S: Scheme>(
    scheme: &S,
    mut frontier: Vec<SyncSnapshot>,
    visited: &mut Arc<Visited<S::Key>>,
    start: DriveStart,
    mut expand: impl FnMut(Vec<SyncSnapshot>, &Arc<Visited<S::Key>>) -> Vec<UnitOutcome<S::Key>>,
) -> Progress {
    let DriveStart {
        max_states,
        max_bytes,
        deadline,
        initial_bytes,
        initial_orbit,
    } = start;
    let mut p = Progress {
        stable_vectors: Vec::new(),
        states: 1,
        stop: StopReason::Complete,
        unsound: false,
        frontier_depth: 0,
        peak_queue: 1,
        units: 0,
        orbit_states: initial_orbit,
        bytes: initial_bytes,
        peak_bytes: initial_bytes,
        collisions: 0,
        compactions: 0,
        por_ample: 0,
        por_full: 0,
    };
    // A budget smaller than the initial state compacts (and possibly
    // stops) immediately — deterministic, like every later breach.
    if let Some(budget) = max_bytes {
        if p.bytes > budget {
            p.bytes = owned(visited).compact();
            p.compactions += 1;
            if p.bytes > budget {
                p.stop = StopReason::MemoryBudget(budget);
                return p;
            }
        }
    }
    let mut depth = 0u64;
    'levels: while !frontier.is_empty() {
        // Deadline check sits at the level boundary: every state of a
        // level either all expands or none does, which keeps the stop
        // point coarse but the visited prefix well-defined — and makes
        // an already-expired deadline stop before the first expansion,
        // deterministically.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            p.stop = StopReason::Deadline;
            break 'levels;
        }
        p.units += frontier.len() as u64;
        let outcomes = expand(std::mem::take(&mut frontier), visited);
        // Soundness scan first: whether any unit flagged is a pure
        // function of the (deterministic) level contents, so the restart
        // decision is schedule-independent.
        if outcomes
            .iter()
            .any(|o| matches!(o, UnitOutcome::Expanded { unsound: true, .. }))
        {
            p.unsound = true;
            break 'levels;
        }
        let mut next = Vec::new();
        for outcome in outcomes {
            match outcome {
                // Expand the representative's fixed point through the
                // group: the plain search would have found every image.
                UnitOutcome::Stable(bv) => {
                    for img in scheme.vector_orbit(&bv) {
                        if !p.stable_vectors.contains(&img) {
                            p.stable_vectors.push(img);
                        }
                    }
                }
                UnitOutcome::Expanded { fresh, ample, .. } => {
                    if ample {
                        p.por_ample += 1;
                    } else {
                        p.por_full += 1;
                    }
                    for (key, snap, orbit) in fresh {
                        match owned(visited).insert(key) {
                            Inserted::Seen => {}
                            Inserted::New { bytes, collision } => {
                                p.states += 1;
                                p.orbit_states += orbit;
                                if collision {
                                    p.collisions += 1;
                                }
                                p.bytes += bytes;
                                p.peak_bytes = p.peak_bytes.max(p.bytes);
                                if p.states > max_states {
                                    p.stop = StopReason::StateCap(max_states);
                                    break 'levels;
                                }
                                if let Some(budget) = max_bytes {
                                    if p.bytes > budget && p.compactions == 0 {
                                        p.bytes = owned(visited).compact();
                                        p.compactions = 1;
                                        p.peak_bytes = p.peak_bytes.max(p.bytes);
                                    }
                                    if p.bytes > budget {
                                        p.stop = StopReason::MemoryBudget(budget);
                                        break 'levels;
                                    }
                                }
                                next.push(snap);
                            }
                        }
                    }
                }
            }
        }
        if !next.is_empty() {
            depth += 1;
            p.frontier_depth = depth;
            p.peak_queue = p.peak_queue.max(next.len() as u64);
        }
        frontier = next;
    }
    p
}

/// Run one scheme's search to completion. Returns `None` when symmetry
/// must be abandoned (the initial state or a successor tripped the
/// tie-soundness guard), in which case the caller restarts plain.
fn run_search<S: Scheme>(
    scheme: &S,
    topo: &Topology,
    config: ProtocolConfig,
    exits: &[ExitPathRef],
    options: &ExploreOptions,
    jobs: usize,
    branches: &[Vec<RouterId>],
) -> Option<(Progress, Metrics, u64)> {
    let mut visited = Arc::new(Visited::<S::Key>::new());
    let mut engine = SyncEngine::new(topo, config, exits.to_vec());
    engine.set_memoized(options.memoized);
    engine.set_loop_prevention(options.loop_prevention);
    scheme.prepare_engine(&mut engine);
    let (init_key, init_orbit) = scheme.initial(&mut engine)?;
    let init_bytes = match Arc::get_mut(&mut visited)
        .expect("freshly created")
        .insert(init_key)
    {
        Inserted::New { bytes, .. } => bytes,
        Inserted::Seen => 0,
    };
    let frontier = vec![engine.snapshot()];

    let (progress, engine_metrics) = if jobs <= 1 {
        let p = drive(
            scheme,
            frontier,
            &mut visited,
            DriveStart {
                max_states: options.max_states,
                max_bytes: options.max_bytes,
                deadline: options.deadline,
                initial_bytes: init_bytes,
                initial_orbit: init_orbit,
            },
            |units, visited| {
                units
                    .iter()
                    .map(|snap| scheme.expand_unit(&mut engine, snap, branches, visited))
                    .collect()
            },
        );
        (p, engine.metrics())
    } else {
        std::thread::scope(|scope| {
            let (work_tx, work_rx) = mpsc::channel::<Batch<S::Key>>();
            let work_rx = Arc::new(Mutex::new(work_rx));
            let (res_tx, res_rx) = mpsc::channel::<WorkerMsg<S::Key>>();
            for _ in 0..jobs {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let exits = exits.to_vec();
                scope.spawn(move || {
                    let mut engine = SyncEngine::new(topo, config, exits);
                    engine.set_memoized(options.memoized);
                    engine.set_loop_prevention(options.loop_prevention);
                    scheme.prepare_engine(&mut engine);
                    loop {
                        // Hold the receiver lock only for the handoff.
                        let batch = work_rx.lock().expect("work queue poisoned").recv();
                        let Ok(Batch {
                            base,
                            units,
                            visited,
                        }) = batch
                        else {
                            break; // work channel closed: shut down
                        };
                        let outcomes = units
                            .iter()
                            .map(|snap| scheme.expand_unit(&mut engine, snap, branches, &visited))
                            .collect();
                        // Ship the visited handle back with the results:
                        // once the coordinator has drained the level, it
                        // holds the only reference again.
                        if res_tx
                            .send(WorkerMsg::Batch {
                                base,
                                outcomes,
                                visited,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    let _ = res_tx.send(WorkerMsg::Done(engine.metrics()));
                });
            }
            drop(res_tx);

            let p = drive(
                scheme,
                frontier,
                &mut visited,
                DriveStart {
                    max_states: options.max_states,
                    max_bytes: options.max_bytes,
                    deadline: options.deadline,
                    initial_bytes: init_bytes,
                    initial_orbit: init_orbit,
                },
                |units, visited| {
                    let len = units.len();
                    // Batches amortize the channel and queue-lock traffic;
                    // several batches per worker keep the level balanced
                    // when unit costs vary.
                    let batch_size = len.div_ceil(jobs * 4).clamp(1, MAX_BATCH);
                    let mut units = units.into_iter();
                    let mut base = 0usize;
                    while base < len {
                        let chunk: Vec<SyncSnapshot> = units.by_ref().take(batch_size).collect();
                        let sent = chunk.len();
                        work_tx
                            .send(Batch {
                                base,
                                units: chunk,
                                visited: Arc::clone(visited),
                            })
                            .expect("worker pool died");
                        base += sent;
                    }
                    let mut outcomes: Vec<Option<UnitOutcome<S::Key>>> =
                        std::iter::repeat_with(|| None).take(len).collect();
                    let mut received = 0usize;
                    while received < len {
                        match res_rx.recv().expect("worker pool died") {
                            WorkerMsg::Batch {
                                base,
                                outcomes: batch,
                                visited,
                            } => {
                                // Drop the returned handle immediately so
                                // the post-level `Arc::get_mut` succeeds.
                                drop(visited);
                                received += batch.len();
                                for (i, out) in batch.into_iter().enumerate() {
                                    outcomes[base + i] = Some(out);
                                }
                            }
                            WorkerMsg::Done(_) => {
                                unreachable!("workers outlive the work channel")
                            }
                        }
                    }
                    outcomes
                        .into_iter()
                        .map(|o| o.expect("every unit reports exactly once"))
                        .collect()
                },
            );

            // Closing the work channel tells each worker to report its
            // counters and exit; the merge is a commutative sum, so the
            // arrival order does not matter.
            drop(work_tx);
            let mut merged = engine.metrics();
            for msg in res_rx {
                if let WorkerMsg::Done(m) = msg {
                    merged.absorb_engine(&m);
                }
            }
            (p, merged)
        })
    };

    if progress.unsound {
        return None;
    }
    let peak_shard = visited.peak_shard();
    Some((progress, engine_metrics, peak_shard))
}

/// The search driver behind [`crate::reachability::explore`].
pub(crate) fn search(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: &ExploreOptions,
) -> Reachability {
    let started = Instant::now();
    if options.loop_prevention {
        // The reflection-attribute words live only in the legacy state
        // keys: the flat codec has no slots for them, the automorphism
        // action does not relabel them, and the ample-set proof ignores
        // them. Force the one scheme that carries them.
        let mut legacy = options.clone();
        legacy.flat = false;
        legacy.symmetry = false;
        legacy.por = false;
        return search_inner(topo, config, exits, &legacy, started);
    }
    search_inner(topo, config, exits, options, started)
}

/// Rerun with symmetry off after the tie-soundness guard fired (or the
/// initial state already trips it). The rerun's metrics report the
/// *effective* group — trivial — so the reduction factor is an honest
/// 1.0, and the wall clock covers both attempts.
fn fallback_without_symmetry(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: &ExploreOptions,
    started: Instant,
) -> Reachability {
    let mut plain = options.clone();
    plain.symmetry = false;
    let mut r = search_inner(topo, config, exits, &plain, started);
    r.metrics.group_order = 1;
    r.metrics.orbit_states = r.metrics.states_visited;
    r
}

fn search_inner(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: &ExploreOptions,
    started: Instant,
) -> Reachability {
    let jobs = options.effective_jobs();
    let n = topo.len();

    // The automorphism group is computed once per search; a trivial group
    // disables the canonicalization machinery but still reports its
    // order.
    let group_storage = options
        .symmetry
        .then(|| SymmetryGroup::compute(topo, config, &exits));
    let group_order = group_storage.as_ref().map(SymmetryGroup::order);
    let group = group_storage.as_ref().filter(|g| !g.is_trivial());

    // Branch choices: each singleton, plus the full activation set.
    let mut branches: Vec<Vec<RouterId>> = (0..n as u32).map(|i| vec![RouterId::new(i)]).collect();
    branches.push((0..n as u32).map(RouterId::new).collect());

    let outcome = if options.flat {
        let codec = Arc::new(StateCodec::new(n, &exits));
        let action = group.map(|g| FlatAction::new(g, &codec));
        let scheme = FlatScheme {
            codec,
            group,
            action,
            por: options.por,
        };
        run_search(&scheme, topo, config, &exits, options, jobs, &branches)
    } else {
        let scheme = LegacyScheme {
            group,
            por: options.por,
        };
        run_search(&scheme, topo, config, &exits, options, jobs, &branches)
    };

    let Some((progress, engine_metrics, peak_shard)) = outcome else {
        return fallback_without_symmetry(topo, config, exits, options, started);
    };

    let mut metrics = engine_metrics;
    metrics.states_visited = progress.states as u64;
    metrics.elapsed_nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    metrics.frontier_depth = progress.frontier_depth;
    metrics.peak_queue = progress.peak_queue;
    metrics.workers = jobs as u64;
    metrics.handoffs = if jobs <= 1 { 0 } else { progress.units };
    metrics.peak_shard = peak_shard;
    metrics.group_order = group_order.unwrap_or(0);
    metrics.orbit_states = if group.is_some() {
        progress.orbit_states
    } else if options.symmetry {
        // Symmetry was requested but the group is trivial: every state is
        // its own orbit, for an honest reduction factor of 1.0.
        progress.states as u64
    } else {
        0
    };
    metrics.digest_collisions = progress.collisions;
    metrics.compactions = progress.compactions;
    metrics.visited_bytes = progress.peak_bytes as u64;
    if options.por {
        metrics.por_ample = progress.por_ample;
        metrics.por_full = progress.por_full;
    }

    // Canonical order: discovery order is already deterministic, but a
    // sorted vector makes equality checks independent of search history.
    let mut stable_vectors = progress.stable_vectors;
    stable_vectors.sort();

    Reachability {
        states: progress.states,
        complete: progress.stop.is_complete(),
        stable_vectors,
        stop: progress.stop,
        metrics,
        origin: ibgp_types::VerdictOrigin::Search,
    }
}
