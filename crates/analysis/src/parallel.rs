//! Level-synchronous parallel driver for the reachability search.
//!
//! The exploration of [`crate::reachability`] is a BFS over configurations
//! whose per-state work — restore a snapshot, test stability, take `n + 1`
//! branch steps, canonicalize each successor — is embarrassingly parallel,
//! while its *bookkeeping* (dedup, the state cap, stable-vector
//! collection) is order-sensitive. This module splits the two:
//!
//! * **Workers** expand whole BFS levels in parallel. Each work unit is
//!   one frontier [`SyncSnapshot`] (Arc-interned rows, so sending it
//!   across a channel is pointer-cheap); each worker owns a private
//!   [`SyncEngine`] (the engine is `Send` but not `Sync` — its memo is a
//!   `RefCell`) and restores it per unit. A worker reports either the
//!   state's stable best-exit vector or its successor list, pre-filtered
//!   against the *frozen* visited set of earlier levels — a read-only,
//!   order-independent test.
//! * **The coordinator** merges each level's unit outcomes *sequentially
//!   in canonical order* (frontier index, then branch index): within-level
//!   dedup, state counting, the cap and byte-budget checks, and
//!   stable-vector collection all happen here, in exactly the order the
//!   single-threaded explorer would perform them.
//!
//! Determinism: a state's outcome is a pure function of its snapshot (the
//! pre-filter can only drop successors the merge would reject anyway), so
//! the merged per-level view — and therefore `states`, `complete`,
//! `stable_vectors`, and the cap point — is bit-identical for every
//! `jobs` value, including the in-thread `jobs = 1` path. Only the
//! per-worker memo split (cache hit/miss counts) varies with scheduling.
//!
//! **Symmetry reduction** ([`ExploreOptions::symmetry`]): each successor
//! key is canonicalized under the instance's automorphism group (see
//! [`crate::symmetry`]) *before* the visited-set probe, so orbit-mates
//! collapse to one representative — and, because the shard is chosen by
//! the canonical digest, they land on one shard. Stable vectors found at
//! representatives are expanded back through the group, which restores
//! exactly the plain search's stable-vector set. If any generated state
//! could have put an identifier-order tie-break in charge (the guard in
//! `crate::symmetry`), the whole search deterministically restarts with
//! symmetry off.
//!
//! **Memory bounding** ([`ExploreOptions::max_bytes`]): the coordinator
//! accounts an estimated byte footprint for every inserted key. On the
//! first budget breach it compacts every shard from full keys to
//! digest-only hashes (64-bit, collision-counted while exact keys are
//! still around); if the digests alone breach the budget, the search
//! stops and reports "ran out of memory budget" instead of OOMing.
//! Compaction happens between worker reads (workers are idle at the work
//! channel while the coordinator merges), so the lock discipline below is
//! unchanged.
//!
//! The visited set is striped across [`SHARD_COUNT`] shards keyed by the
//! `StateKey` digest. Shards use `RwLock` rather than `Mutex`: during a
//! level workers only *read* (shared locks, no contention), and the
//! coordinator only *writes* between levels while every worker is idle at
//! the work channel — so neither phase ever blocks the other.

use crate::reachability::{ExploreOptions, Reachability};
use crate::symmetry::SymmetryGroup;
use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::signature::StateKey;
use ibgp_sim::{Metrics, SyncEngine, SyncSnapshot};
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef, RouterId};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of visited-set stripes. A fixed power of two well above any
/// realistic worker count keeps digest-sharded occupancy balanced.
const SHARD_COUNT: usize = 64;

/// Accounted bytes per hash-map entry beyond the key payload (digest,
/// bucket bookkeeping). An estimate, like `StateKey::approx_bytes`.
const ENTRY_OVERHEAD: usize = 48;

/// Accounted bytes per digest-only entry after compaction.
const DIGEST_ENTRY_BYTES: usize = 16;

/// One shard of the visited set: exact keys until a memory budget forces
/// digest-only compaction.
enum ShardStore {
    /// Digest → colliding keys. Exact membership, collision-free.
    Exact(HashMap<u64, Vec<StateKey>>),
    /// Digests only. A collision conflates two states (counted while the
    /// exact keys were still around; unobservable afterwards).
    Digest(HashSet<u64>),
}

/// What an insert did.
enum Inserted {
    /// The key was new; `bytes` is its accounted footprint and
    /// `collision` whether it shares a digest with a distinct key
    /// (observable in exact mode only).
    New { bytes: usize, collision: bool },
    /// Already present (or digest-conflated).
    Seen,
}

/// The visited set, striped by `StateKey` digest.
struct ShardedVisited {
    shards: Vec<RwLock<ShardStore>>,
}

impl ShardedVisited {
    fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(ShardStore::Exact(HashMap::new())))
                .collect(),
        }
    }

    fn shard(&self, digest: u64) -> &RwLock<ShardStore> {
        &self.shards[(digest % SHARD_COUNT as u64) as usize]
    }

    /// Read-only membership test (the workers' pre-filter).
    fn contains(&self, key: &StateKey) -> bool {
        let digest = key.digest();
        let shard = self.shard(digest).read().expect("visited shard poisoned");
        match &*shard {
            ShardStore::Exact(map) => map.get(&digest).is_some_and(|bucket| bucket.contains(key)),
            ShardStore::Digest(set) => set.contains(&digest),
        }
    }

    /// Insert if new (the coordinator's authoritative dedup).
    fn insert(&self, key: StateKey) -> Inserted {
        let digest = key.digest();
        let mut shard = self.shard(digest).write().expect("visited shard poisoned");
        match &mut *shard {
            ShardStore::Exact(map) => {
                let bucket = map.entry(digest).or_default();
                if bucket.contains(&key) {
                    Inserted::Seen
                } else {
                    let collision = !bucket.is_empty();
                    let bytes = key.approx_bytes() + if collision { 0 } else { ENTRY_OVERHEAD };
                    bucket.push(key);
                    Inserted::New { bytes, collision }
                }
            }
            ShardStore::Digest(set) => {
                if set.insert(digest) {
                    Inserted::New {
                        bytes: DIGEST_ENTRY_BYTES,
                        collision: false,
                    }
                } else {
                    Inserted::Seen
                }
            }
        }
    }

    /// Drop every exact key, keeping digests only. Returns the accounted
    /// footprint of the compacted set. Callers must ensure no worker is
    /// reading (the coordinator compacts mid-merge, while workers idle at
    /// the work channel).
    fn compact(&self) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            let mut shard = shard.write().expect("visited shard poisoned");
            let digests: HashSet<u64> = match &*shard {
                ShardStore::Exact(map) => map.keys().copied().collect(),
                ShardStore::Digest(set) => set.clone(),
            };
            total += digests.len() * DIGEST_ENTRY_BYTES;
            *shard = ShardStore::Digest(digests);
        }
        total
    }

    /// Most keys (or digests) held by any one shard (balance gauge).
    fn peak_shard(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match &*s.read().expect("visited shard poisoned") {
                ShardStore::Exact(map) => map.values().map(Vec::len).sum::<usize>(),
                ShardStore::Digest(set) => set.len(),
            })
            .max()
            .unwrap_or(0) as u64
    }
}

/// What one frontier state turned out to be.
enum UnitOutcome {
    /// A fixed point, with its best-exit vector.
    Stable(Vec<Option<ExitPathId>>),
    /// Not stable: per branch successor not already visited in an earlier
    /// level, in branch order: its (canonical) key, raw snapshot, and
    /// orbit size (1 without symmetry).
    Expanded {
        fresh: Vec<(StateKey, SyncSnapshot, u64)>,
        /// A successor tripped the tie-soundness guard: the whole search
        /// must restart without symmetry.
        unsound: bool,
    },
}

/// Messages from workers to the coordinator.
enum WorkerMsg {
    /// Outcome of the unit at the given frontier index.
    Unit(usize, UnitOutcome),
    /// Final engine counters, sent once when the worker shuts down.
    Done(Metrics),
}

/// Expand one frontier state on the given (restored) engine.
fn process_unit(
    engine: &mut SyncEngine,
    snap: &SyncSnapshot,
    branches: &[Vec<RouterId>],
    visited: &ShardedVisited,
    group: Option<&SymmetryGroup>,
) -> UnitOutcome {
    engine.restore(snap);
    if engine.is_stable() {
        return UnitOutcome::Stable(engine.best_vector());
    }
    let mut fresh = Vec::new();
    for branch in branches {
        engine.restore(snap);
        engine.step(branch);
        let raw = engine.state_key(0);
        let (key, orbit) = match group {
            Some(g) => {
                if g.guard_trips(&raw) {
                    // The level is abandoned wholesale; no point
                    // finishing this unit.
                    return UnitOutcome::Expanded {
                        fresh: Vec::new(),
                        unsound: true,
                    };
                }
                g.canonical(&raw)
            }
            None => (raw, 1),
        };
        // Pre-filter against earlier levels only: the set is frozen while
        // the level runs, so this test is order-independent. Within-level
        // duplicates are the coordinator's job.
        if !visited.contains(&key) {
            fresh.push((key, engine.snapshot(), orbit));
        }
    }
    UnitOutcome::Expanded {
        fresh,
        unsound: false,
    }
}

/// Order-sensitive search bookkeeping, owned by the coordinator.
struct Progress {
    stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    states: usize,
    cap: Option<usize>,
    memory: Option<usize>,
    /// The tie-soundness guard fired: discard everything and rerun
    /// without symmetry.
    unsound: bool,
    frontier_depth: u64,
    peak_queue: u64,
    /// Work units expanded (= handoffs when a pool is in use).
    units: u64,
    /// Sum of orbit sizes over visited representatives (= reachable
    /// states the representatives stand for).
    orbit_states: u64,
    /// Current and peak accounted visited-set footprint.
    bytes: usize,
    peak_bytes: usize,
    collisions: u64,
    compactions: u64,
}

/// Run the level loop: expand each frontier via `expand`, then merge the
/// outcomes in canonical (frontier index, branch index) order. This merge
/// is the single place dedup, the state cap, the byte budget, and
/// stable-vector discovery happen, which is what makes the result
/// independent of how `expand` schedules the per-unit work.
#[allow(clippy::too_many_arguments)]
fn drive(
    mut frontier: Vec<SyncSnapshot>,
    visited: &ShardedVisited,
    max_states: usize,
    max_bytes: Option<usize>,
    initial_bytes: usize,
    initial_orbit: u64,
    group: Option<&SymmetryGroup>,
    mut expand: impl FnMut(Vec<SyncSnapshot>) -> Vec<UnitOutcome>,
) -> Progress {
    let mut p = Progress {
        stable_vectors: Vec::new(),
        states: 1,
        cap: None,
        memory: None,
        unsound: false,
        frontier_depth: 0,
        peak_queue: 1,
        units: 0,
        orbit_states: initial_orbit,
        bytes: initial_bytes,
        peak_bytes: initial_bytes,
        collisions: 0,
        compactions: 0,
    };
    // A budget smaller than the initial state compacts (and possibly
    // stops) immediately — deterministic, like every later breach.
    if let Some(budget) = max_bytes {
        if p.bytes > budget {
            p.bytes = visited.compact();
            p.compactions += 1;
            if p.bytes > budget {
                p.memory = Some(budget);
                return p;
            }
        }
    }
    let mut depth = 0u64;
    'levels: while !frontier.is_empty() {
        p.units += frontier.len() as u64;
        let outcomes = expand(std::mem::take(&mut frontier));
        // Soundness scan first: whether any unit flagged is a pure
        // function of the (deterministic) level contents, so the restart
        // decision is schedule-independent.
        if outcomes
            .iter()
            .any(|o| matches!(o, UnitOutcome::Expanded { unsound: true, .. }))
        {
            p.unsound = true;
            break 'levels;
        }
        let mut next = Vec::new();
        for outcome in outcomes {
            match outcome {
                UnitOutcome::Stable(bv) => match group {
                    // Expand the representative's fixed point through the
                    // group: the plain search would have found every
                    // image.
                    Some(g) => {
                        for img in g.vector_orbit(&bv) {
                            if !p.stable_vectors.contains(&img) {
                                p.stable_vectors.push(img);
                            }
                        }
                    }
                    None => {
                        if !p.stable_vectors.contains(&bv) {
                            p.stable_vectors.push(bv);
                        }
                    }
                },
                UnitOutcome::Expanded { fresh, .. } => {
                    for (key, snap, orbit) in fresh {
                        match visited.insert(key) {
                            Inserted::Seen => {}
                            Inserted::New { bytes, collision } => {
                                p.states += 1;
                                p.orbit_states += orbit;
                                if collision {
                                    p.collisions += 1;
                                }
                                p.bytes += bytes;
                                p.peak_bytes = p.peak_bytes.max(p.bytes);
                                if p.states > max_states {
                                    p.cap = Some(max_states);
                                    break 'levels;
                                }
                                if let Some(budget) = max_bytes {
                                    if p.bytes > budget && p.compactions == 0 {
                                        p.bytes = visited.compact();
                                        p.compactions = 1;
                                        p.peak_bytes = p.peak_bytes.max(p.bytes);
                                    }
                                    if p.bytes > budget {
                                        p.memory = Some(budget);
                                        break 'levels;
                                    }
                                }
                                next.push(snap);
                            }
                        }
                    }
                }
            }
        }
        if !next.is_empty() {
            depth += 1;
            p.frontier_depth = depth;
            p.peak_queue = p.peak_queue.max(next.len() as u64);
        }
        frontier = next;
    }
    p
}

/// The search driver behind [`crate::reachability::explore`].
pub(crate) fn search(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: &ExploreOptions,
) -> Reachability {
    let started = Instant::now();
    search_inner(topo, config, exits, options, started)
}

/// Rerun with symmetry off after the tie-soundness guard fired (or the
/// initial state already trips it). The rerun's metrics report the
/// *effective* group — trivial — so the reduction factor is an honest
/// 1.0, and the wall clock covers both attempts.
fn fallback_without_symmetry(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: &ExploreOptions,
    started: Instant,
) -> Reachability {
    let mut plain = options.clone();
    plain.symmetry = false;
    let mut r = search_inner(topo, config, exits, &plain, started);
    r.metrics.group_order = 1;
    r.metrics.orbit_states = r.metrics.states_visited;
    r
}

fn search_inner(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: &ExploreOptions,
    started: Instant,
) -> Reachability {
    let jobs = options.effective_jobs();
    let n = topo.len();

    // The automorphism group is computed once per search; a trivial group
    // disables the canonicalization machinery but still reports its
    // order.
    let group_storage = options
        .symmetry
        .then(|| SymmetryGroup::compute(topo, config, &exits));
    let group_order = group_storage.as_ref().map(SymmetryGroup::order);
    let group = group_storage.as_ref().filter(|g| !g.is_trivial());

    // Branch choices: each singleton, plus the full activation set.
    let mut branches: Vec<Vec<RouterId>> = (0..n as u32).map(|i| vec![RouterId::new(i)]).collect();
    branches.push((0..n as u32).map(RouterId::new).collect());

    let visited = ShardedVisited::new();
    let mut engine = SyncEngine::new(topo, config, exits.clone());
    engine.set_memoized(options.memoized);
    let init_raw = engine.state_key(0);
    let (init_key, init_orbit) = match group {
        Some(g) => {
            if g.guard_trips(&init_raw) {
                return fallback_without_symmetry(topo, config, exits, options, started);
            }
            g.canonical(&init_raw)
        }
        None => (init_raw, 1),
    };
    let init_bytes = match visited.insert(init_key) {
        Inserted::New { bytes, .. } => bytes,
        Inserted::Seen => 0,
    };
    let frontier = vec![engine.snapshot()];

    let (progress, engine_metrics) = if jobs <= 1 {
        let p = drive(
            frontier,
            &visited,
            options.max_states,
            options.max_bytes,
            init_bytes,
            init_orbit,
            group,
            |units| {
                units
                    .iter()
                    .map(|snap| process_unit(&mut engine, snap, &branches, &visited, group))
                    .collect()
            },
        );
        (p, engine.metrics())
    } else {
        std::thread::scope(|scope| {
            let (work_tx, work_rx) = mpsc::channel::<(usize, SyncSnapshot)>();
            let work_rx = Arc::new(Mutex::new(work_rx));
            let (res_tx, res_rx) = mpsc::channel::<WorkerMsg>();
            for _ in 0..jobs {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let exits = exits.clone();
                let branches = &branches;
                let visited = &visited;
                scope.spawn(move || {
                    let mut engine = SyncEngine::new(topo, config, exits);
                    engine.set_memoized(options.memoized);
                    loop {
                        // Hold the receiver lock only for the handoff.
                        let unit = work_rx.lock().expect("work queue poisoned").recv();
                        match unit {
                            Ok((idx, snap)) => {
                                let out =
                                    process_unit(&mut engine, &snap, branches, visited, group);
                                if res_tx.send(WorkerMsg::Unit(idx, out)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break, // work channel closed: shut down
                        }
                    }
                    let _ = res_tx.send(WorkerMsg::Done(engine.metrics()));
                });
            }
            drop(res_tx);

            let p = drive(
                frontier,
                &visited,
                options.max_states,
                options.max_bytes,
                init_bytes,
                init_orbit,
                group,
                |units| {
                    let len = units.len();
                    for (idx, snap) in units.into_iter().enumerate() {
                        work_tx.send((idx, snap)).expect("worker pool died");
                    }
                    let mut outcomes: Vec<Option<UnitOutcome>> =
                        std::iter::repeat_with(|| None).take(len).collect();
                    for _ in 0..len {
                        match res_rx.recv().expect("worker pool died") {
                            WorkerMsg::Unit(idx, out) => outcomes[idx] = Some(out),
                            WorkerMsg::Done(_) => unreachable!("workers outlive the work channel"),
                        }
                    }
                    outcomes
                        .into_iter()
                        .map(|o| o.expect("every unit reports exactly once"))
                        .collect()
                },
            );

            // Closing the work channel tells each worker to report its
            // counters and exit; the merge is a commutative sum, so the
            // arrival order does not matter.
            drop(work_tx);
            let mut merged = engine.metrics();
            for msg in res_rx {
                if let WorkerMsg::Done(m) = msg {
                    merged.absorb_engine(&m);
                }
            }
            (p, merged)
        })
    };

    if progress.unsound {
        return fallback_without_symmetry(topo, config, exits, options, started);
    }

    let mut metrics = engine_metrics;
    metrics.states_visited = progress.states as u64;
    metrics.elapsed_nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    metrics.frontier_depth = progress.frontier_depth;
    metrics.peak_queue = progress.peak_queue;
    metrics.workers = jobs as u64;
    metrics.handoffs = if jobs <= 1 { 0 } else { progress.units };
    metrics.peak_shard = visited.peak_shard();
    metrics.group_order = group_order.unwrap_or(0);
    metrics.orbit_states = if group.is_some() {
        progress.orbit_states
    } else if options.symmetry {
        // Symmetry was requested but the group is trivial: every state is
        // its own orbit, for an honest reduction factor of 1.0.
        progress.states as u64
    } else {
        0
    };
    metrics.digest_collisions = progress.collisions;
    metrics.compactions = progress.compactions;
    metrics.visited_bytes = progress.peak_bytes as u64;

    // Canonical order: discovery order is already deterministic, but a
    // sorted vector makes equality checks independent of search history.
    let mut stable_vectors = progress.stable_vectors;
    stable_vectors.sort();

    Reachability {
        states: progress.states,
        complete: progress.cap.is_none() && progress.memory.is_none(),
        stable_vectors,
        cap: progress.cap,
        memory: progress.memory,
        metrics,
    }
}
