//! Level-synchronous parallel driver for the reachability search.
//!
//! The exploration of [`crate::reachability`] is a BFS over configurations
//! whose per-state work — restore a snapshot, test stability, take `n + 1`
//! branch steps, canonicalize each successor — is embarrassingly parallel,
//! while its *bookkeeping* (dedup, the state cap, stable-vector
//! collection) is order-sensitive. This module splits the two:
//!
//! * **Workers** expand whole BFS levels in parallel. Each work unit is
//!   one frontier [`SyncSnapshot`] (Arc-interned rows, so sending it
//!   across a channel is pointer-cheap); each worker owns a private
//!   [`SyncEngine`] (the engine is `Send` but not `Sync` — its memo is a
//!   `RefCell`) and restores it per unit. A worker reports either the
//!   state's stable best-exit vector or its successor list, pre-filtered
//!   against the *frozen* visited set of earlier levels — a read-only,
//!   order-independent test.
//! * **The coordinator** merges each level's unit outcomes *sequentially
//!   in canonical order* (frontier index, then branch index): within-level
//!   dedup, state counting, the cap check, and stable-vector collection
//!   all happen here, in exactly the order the single-threaded explorer
//!   would perform them.
//!
//! Determinism: a state's outcome is a pure function of its snapshot (the
//! pre-filter can only drop successors the merge would reject anyway), so
//! the merged per-level view — and therefore `states`, `complete`,
//! `stable_vectors`, and the cap point — is bit-identical for every
//! `jobs` value, including the in-thread `jobs = 1` path. Only the
//! per-worker memo split (cache hit/miss counts) varies with scheduling.
//!
//! The visited set is striped across [`SHARD_COUNT`] shards keyed by the
//! `StateKey` digest. Shards use `RwLock` rather than `Mutex`: during a
//! level workers only *read* (shared locks, no contention), and the
//! coordinator only *writes* between levels while every worker is idle at
//! the work channel — so neither phase ever blocks the other.

use crate::reachability::{ExploreOptions, Reachability};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::signature::StateKey;
use ibgp_sim::{Metrics, SyncEngine, SyncSnapshot};
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef, RouterId};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of visited-set stripes. A fixed power of two well above any
/// realistic worker count keeps digest-sharded occupancy balanced.
const SHARD_COUNT: usize = 64;

/// The visited set, striped by `StateKey` digest.
struct ShardedVisited {
    shards: Vec<RwLock<HashMap<u64, Vec<StateKey>>>>,
}

impl ShardedVisited {
    fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, digest: u64) -> &RwLock<HashMap<u64, Vec<StateKey>>> {
        &self.shards[(digest % SHARD_COUNT as u64) as usize]
    }

    /// Read-only membership test (the workers' pre-filter).
    fn contains(&self, key: &StateKey) -> bool {
        let digest = key.digest();
        let shard = self.shard(digest).read().expect("visited shard poisoned");
        shard
            .get(&digest)
            .is_some_and(|bucket| bucket.contains(key))
    }

    /// Insert if new; returns whether the key was new (the coordinator's
    /// authoritative dedup).
    fn insert(&self, key: StateKey) -> bool {
        let digest = key.digest();
        let mut shard = self.shard(digest).write().expect("visited shard poisoned");
        let bucket = shard.entry(digest).or_default();
        if bucket.contains(&key) {
            false
        } else {
            bucket.push(key);
            true
        }
    }

    /// Most keys held by any one shard (balance gauge).
    fn peak_shard(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("visited shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0) as u64
    }
}

/// What one frontier state turned out to be.
enum UnitOutcome {
    /// A fixed point, with its best-exit vector.
    Stable(Vec<Option<ExitPathId>>),
    /// Not stable: the canonical key and snapshot of each branch
    /// successor not already visited in an earlier level, in branch
    /// order.
    Expanded(Vec<(StateKey, SyncSnapshot)>),
}

/// Messages from workers to the coordinator.
enum WorkerMsg {
    /// Outcome of the unit at the given frontier index.
    Unit(usize, UnitOutcome),
    /// Final engine counters, sent once when the worker shuts down.
    Done(Metrics),
}

/// Expand one frontier state on the given (restored) engine.
fn process_unit(
    engine: &mut SyncEngine,
    snap: &SyncSnapshot,
    branches: &[Vec<RouterId>],
    visited: &ShardedVisited,
) -> UnitOutcome {
    engine.restore(snap);
    if engine.is_stable() {
        return UnitOutcome::Stable(engine.best_vector());
    }
    let mut fresh = Vec::new();
    for branch in branches {
        engine.restore(snap);
        engine.step(branch);
        let key = engine.state_key(0);
        // Pre-filter against earlier levels only: the set is frozen while
        // the level runs, so this test is order-independent. Within-level
        // duplicates are the coordinator's job.
        if !visited.contains(&key) {
            fresh.push((key, engine.snapshot()));
        }
    }
    UnitOutcome::Expanded(fresh)
}

/// Order-sensitive search bookkeeping, owned by the coordinator.
struct Progress {
    stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    states: usize,
    cap: Option<usize>,
    frontier_depth: u64,
    peak_queue: u64,
    /// Work units expanded (= handoffs when a pool is in use).
    units: u64,
}

/// Run the level loop: expand each frontier via `expand`, then merge the
/// outcomes in canonical (frontier index, branch index) order. This merge
/// is the single place dedup, the state cap, and stable-vector discovery
/// happen, which is what makes the result independent of how `expand`
/// schedules the per-unit work.
fn drive(
    mut frontier: Vec<SyncSnapshot>,
    visited: &ShardedVisited,
    max_states: usize,
    mut expand: impl FnMut(Vec<SyncSnapshot>) -> Vec<UnitOutcome>,
) -> Progress {
    let mut p = Progress {
        stable_vectors: Vec::new(),
        states: 1,
        cap: None,
        frontier_depth: 0,
        peak_queue: 1,
        units: 0,
    };
    let mut depth = 0u64;
    'levels: while !frontier.is_empty() {
        p.units += frontier.len() as u64;
        let outcomes = expand(std::mem::take(&mut frontier));
        let mut next = Vec::new();
        for outcome in outcomes {
            match outcome {
                UnitOutcome::Stable(bv) => {
                    if !p.stable_vectors.contains(&bv) {
                        p.stable_vectors.push(bv);
                    }
                }
                UnitOutcome::Expanded(fresh) => {
                    for (key, snap) in fresh {
                        if visited.insert(key) {
                            p.states += 1;
                            if p.states > max_states {
                                p.cap = Some(max_states);
                                break 'levels;
                            }
                            next.push(snap);
                        }
                    }
                }
            }
        }
        if !next.is_empty() {
            depth += 1;
            p.frontier_depth = depth;
            p.peak_queue = p.peak_queue.max(next.len() as u64);
        }
        frontier = next;
    }
    p
}

/// The search driver behind [`crate::reachability::explore`].
pub(crate) fn search(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: &ExploreOptions,
) -> Reachability {
    let started = Instant::now();
    let jobs = options.effective_jobs();
    let n = topo.len();

    // Branch choices: each singleton, plus the full activation set.
    let mut branches: Vec<Vec<RouterId>> = (0..n as u32).map(|i| vec![RouterId::new(i)]).collect();
    branches.push((0..n as u32).map(RouterId::new).collect());

    let visited = ShardedVisited::new();
    let mut engine = SyncEngine::new(topo, config, exits.clone());
    engine.set_memoized(options.memoized);
    visited.insert(engine.state_key(0));
    let frontier = vec![engine.snapshot()];

    let (progress, engine_metrics) = if jobs <= 1 {
        let p = drive(frontier, &visited, options.max_states, |units| {
            units
                .iter()
                .map(|snap| process_unit(&mut engine, snap, &branches, &visited))
                .collect()
        });
        (p, engine.metrics())
    } else {
        std::thread::scope(|scope| {
            let (work_tx, work_rx) = mpsc::channel::<(usize, SyncSnapshot)>();
            let work_rx = Arc::new(Mutex::new(work_rx));
            let (res_tx, res_rx) = mpsc::channel::<WorkerMsg>();
            for _ in 0..jobs {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let exits = exits.clone();
                let branches = &branches;
                let visited = &visited;
                scope.spawn(move || {
                    let mut engine = SyncEngine::new(topo, config, exits);
                    engine.set_memoized(options.memoized);
                    loop {
                        // Hold the receiver lock only for the handoff.
                        let unit = work_rx.lock().expect("work queue poisoned").recv();
                        match unit {
                            Ok((idx, snap)) => {
                                let out = process_unit(&mut engine, &snap, branches, visited);
                                if res_tx.send(WorkerMsg::Unit(idx, out)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break, // work channel closed: shut down
                        }
                    }
                    let _ = res_tx.send(WorkerMsg::Done(engine.metrics()));
                });
            }
            drop(res_tx);

            let p = drive(frontier, &visited, options.max_states, |units| {
                let len = units.len();
                for (idx, snap) in units.into_iter().enumerate() {
                    work_tx.send((idx, snap)).expect("worker pool died");
                }
                let mut outcomes: Vec<Option<UnitOutcome>> =
                    std::iter::repeat_with(|| None).take(len).collect();
                for _ in 0..len {
                    match res_rx.recv().expect("worker pool died") {
                        WorkerMsg::Unit(idx, out) => outcomes[idx] = Some(out),
                        WorkerMsg::Done(_) => unreachable!("workers outlive the work channel"),
                    }
                }
                outcomes
                    .into_iter()
                    .map(|o| o.expect("every unit reports exactly once"))
                    .collect()
            });

            // Closing the work channel tells each worker to report its
            // counters and exit; the merge is a commutative sum, so the
            // arrival order does not matter.
            drop(work_tx);
            let mut merged = engine.metrics();
            for msg in res_rx {
                if let WorkerMsg::Done(m) = msg {
                    merged.absorb_engine(&m);
                }
            }
            (p, merged)
        })
    };

    let mut metrics = engine_metrics;
    metrics.states_visited = progress.states as u64;
    metrics.elapsed_nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    metrics.frontier_depth = progress.frontier_depth;
    metrics.peak_queue = progress.peak_queue;
    metrics.workers = jobs as u64;
    metrics.handoffs = if jobs <= 1 { 0 } else { progress.units };
    metrics.peak_shard = visited.peak_shard();

    // Canonical order: discovery order is already deterministic, but a
    // sorted vector makes equality checks independent of search history.
    let mut stable_vectors = progress.stable_vectors;
    stable_vectors.sort();

    Reachability {
        states: progress.states,
        complete: progress.cap.is_none(),
        stable_vectors,
        cap: progress.cap,
        metrics,
    }
}
