//! Real-route forwarding and loop detection (§7, Fig 12/Fig 14).
//!
//! A router `u` whose best route exits at `v` forwards packets along
//! `SP(u, v)` — but every *intermediate* router forwards according to its
//! **own** best route, which may exit elsewhere. §7 shows the modified
//! protocol keeps this consistent (Lemmas 7.6/7.7); Fig 14 shows standard
//! I-BGP with route reflection can produce a genuine forwarding loop.
//! This module walks packets hop by hop and reports what actually happens.

use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, Route, RouterId};
use std::fmt;

/// The fate of a packet injected at some router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardingResult {
    /// The packet left the AS at `exit` (carrying the exit path used).
    Exits {
        /// The border router where the packet left `AS0`.
        exit: RouterId,
        /// The exit path of the border router's best route.
        via: ExitPathId,
        /// Every router traversed, source first, exit last.
        path: Vec<RouterId>,
    },
    /// The packet revisited a router: a forwarding loop.
    Loop {
        /// The routers on the loop, starting and ending at the revisited
        /// router (first element repeated conceptually, not literally).
        cycle: Vec<RouterId>,
    },
    /// A router on the path had no route to the destination.
    Blackhole {
        /// Where the packet died.
        at: RouterId,
    },
}

impl ForwardingResult {
    /// True when the packet successfully left the AS.
    pub fn delivered(&self) -> bool {
        matches!(self, ForwardingResult::Exits { .. })
    }

    /// True for a forwarding loop.
    pub fn looped(&self) -> bool {
        matches!(self, ForwardingResult::Loop { .. })
    }
}

impl fmt::Display for ForwardingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardingResult::Exits { exit, via, path } => {
                write!(f, "exits at {exit} via {via} after {} hops", path.len() - 1)
            }
            ForwardingResult::Loop { cycle } => {
                write!(f, "forwarding loop: ")?;
                for (i, r) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            ForwardingResult::Blackhole { at } => write!(f, "blackholed at {at}"),
        }
    }
}

/// Walk a packet from `src` toward the destination, consulting each
/// traversed router's own best route (`best(u)`).
pub fn forward_from(
    topo: &Topology,
    best: &dyn Fn(RouterId) -> Option<Route>,
    src: RouterId,
) -> ForwardingResult {
    let mut path = vec![src];
    let mut cur = src;
    let mut visited = vec![false; topo.len()];
    visited[src.index()] = true;
    loop {
        let Some(route) = best(cur) else {
            return ForwardingResult::Blackhole { at: cur };
        };
        let exit_point = route.exit_point();
        if exit_point == cur {
            return ForwardingResult::Exits {
                exit: cur,
                via: route.exit_id(),
                path,
            };
        }
        let Some(next) = topo.spf().next_hop(cur, exit_point) else {
            return ForwardingResult::Blackhole { at: cur };
        };
        if visited[next.index()] {
            // Extract the cycle from the revisited router onward.
            let start = path.iter().position(|&r| r == next).expect("revisited");
            let mut cycle = path[start..].to_vec();
            cycle.push(next);
            return ForwardingResult::Loop { cycle };
        }
        visited[next.index()] = true;
        path.push(next);
        cur = next;
    }
}

/// Check every router as a packet source; return the sources whose packets
/// enter a forwarding loop (empty = the configuration is loop-free).
pub fn forwarding_loops(
    topo: &Topology,
    best: &dyn Fn(RouterId) -> Option<Route>,
) -> Vec<(RouterId, Vec<RouterId>)> {
    topo.routers()
        .filter_map(|src| match forward_from(topo, best, src) {
            ForwardingResult::Loop { cycle } => Some((src, cycle)),
            _ => None,
        })
        .collect()
}

/// Verify Lemma 7.6 on a converged state: for every router `u` with best
/// exit `v`, every intermediate router `w` on `SP(u, v)` either uses the
/// same exit path or is itself the exit point of its own best route.
/// Returns violations.
pub fn lemma_7_6_violations(
    topo: &Topology,
    best: &dyn Fn(RouterId) -> Option<Route>,
) -> Vec<(RouterId, RouterId)> {
    let mut violations = Vec::new();
    for u in topo.routers() {
        let Some(ru) = best(u) else { continue };
        let v = ru.exit_point();
        let Some(sp) = topo.spf().path(u, v) else {
            continue;
        };
        if sp.len() < 3 {
            continue; // no intermediate routers
        }
        for &w in &sp[1..sp.len() - 1] {
            match best(w) {
                Some(rw) => {
                    let same_exit_path = rw.exit_id() == ru.exit_id();
                    let exits_at_self = rw.exit_point() == w;
                    if !same_exit_path && !exits_at_self {
                        violations.push((u, w));
                    }
                }
                None => violations.push((u, w)),
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, BgpId, ExitPath, ExitPathRef};
    use std::sync::Arc;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn exit_at(id: u32, node: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(1))
                .exit_point(r(node))
                .build_unchecked(),
        )
    }

    fn line_topo() -> Topology {
        TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap()
    }

    fn mk_best(
        topo: &Topology,
        assignment: Vec<(u32, ExitPathRef)>,
    ) -> impl Fn(RouterId) -> Option<Route> + '_ {
        move |u: RouterId| {
            assignment
                .iter()
                .find(|(n, _)| *n == u.raw())
                .map(|(_, p)| {
                    Route::new(
                        p.clone(),
                        u,
                        topo.igp_cost(u, p.exit_point()),
                        BgpId::new(0),
                    )
                })
        }
    }

    #[test]
    fn consistent_bests_deliver() {
        let topo = line_topo();
        let p = exit_at(1, 2);
        let best = mk_best(&topo, vec![(0, p.clone()), (1, p.clone()), (2, p.clone())]);
        let res = forward_from(&topo, &best, r(0));
        match res {
            ForwardingResult::Exits { exit, via, path } => {
                assert_eq!(exit, r(2));
                assert_eq!(via, ExitPathId::new(1));
                assert_eq!(path, vec![r(0), r(1), r(2)]);
            }
            other => panic!("unexpected {other}"),
        }
        assert!(forwarding_loops(&topo, &best).is_empty());
        assert!(lemma_7_6_violations(&topo, &best).is_empty());
    }

    #[test]
    fn intermediate_exit_owner_is_fine() {
        // Node 0's best exits at node 2, but intermediate node 1 uses its
        // own exit: the packet leaves at node 1 — allowed by Lemma 7.6.
        let topo = line_topo();
        let far = exit_at(1, 2);
        let own = exit_at(2, 1);
        let best = mk_best(&topo, vec![(0, far.clone()), (1, own), (2, far)]);
        let res = forward_from(&topo, &best, r(0));
        match res {
            ForwardingResult::Exits { exit, via, .. } => {
                assert_eq!(exit, r(1));
                assert_eq!(via, ExitPathId::new(2));
            }
            other => panic!("unexpected {other}"),
        }
        assert!(lemma_7_6_violations(&topo, &best).is_empty());
    }

    #[test]
    fn divergent_intermediate_is_a_violation_and_can_loop() {
        // Square: 0-1-2-3-0. Node 1 sends to exit at 3 via 0; node 0 sends
        // to exit at 2 via 1 (by SPF tie-breaks). Construct a two-node
        // ping-pong: 0's best exits at 2 with SP(0,2) = 0-1-2, 1's best
        // exits at 3 with SP(1,3) = 1-0-3.
        let topo = TopologyBuilder::new(4)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 0, 1)
            .full_mesh()
            .build()
            .unwrap();
        let p2 = exit_at(1, 2);
        let p3 = exit_at(2, 3);
        let best = mk_best(
            &topo,
            vec![(0, p2.clone()), (1, p3.clone()), (2, p2), (3, p3)],
        );
        let res = forward_from(&topo, &best, r(0));
        assert!(res.looped(), "expected loop, got {res}");
        let loops = forwarding_loops(&topo, &best);
        assert!(!loops.is_empty());
        assert!(!lemma_7_6_violations(&topo, &best).is_empty());
    }

    #[test]
    fn missing_route_blackholes() {
        let topo = line_topo();
        let p = exit_at(1, 2);
        let best = mk_best(&topo, vec![(0, p.clone()), (2, p)]); // node 1 has none
        let res = forward_from(&topo, &best, r(0));
        assert_eq!(res, ForwardingResult::Blackhole { at: r(1) });
        assert!(!res.delivered());
    }

    #[test]
    fn display_formats() {
        let res = ForwardingResult::Loop {
            cycle: vec![r(0), r(1), r(0)],
        };
        assert_eq!(res.to_string(), "forwarding loop: r0 -> r1 -> r0");
        let res = ForwardingResult::Blackhole { at: r(2) };
        assert_eq!(res.to_string(), "blackholed at r2");
    }
}
