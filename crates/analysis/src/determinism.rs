//! The §7 uniqueness theorem as an experiment.
//!
//! The paper proves that the modified protocol converges to the *same*
//! routing configuration for **every** fair activation sequence from the
//! same initial valid configuration — the property that makes routing
//! debuggable ("the routing tables before and after the crash are
//! identical"). This module runs a scenario under many distinct seeded
//! fair schedules and reports whether all runs converge, and whether they
//! all reach the same best-exit vector.

use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::{Activation, AllAtOnce, Engine, RandomFair, RandomSubsets, RoundRobin, SyncEngine};
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef};
use serde::{Deserialize, Serialize};

/// Outcome of a determinism sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterminismReport {
    /// Schedules that converged.
    pub converged_runs: usize,
    /// Schedules that did not converge within the step budget.
    pub unconverged_runs: usize,
    /// The distinct fixed points reached (as best-exit vectors).
    pub distinct_outcomes: Vec<Vec<Option<ExitPathId>>>,
}

impl DeterminismReport {
    /// True when every run converged, to one single configuration.
    pub fn deterministic(&self) -> bool {
        self.unconverged_runs == 0 && self.distinct_outcomes.len() <= 1
    }
}

/// Run the scenario under round-robin, all-at-once, `seeds` random-singleton
/// and `seeds` random-subset schedules; collect the outcomes.
pub fn determinism_report(
    topo: &Topology,
    config: ProtocolConfig,
    exits: &[ExitPathRef],
    seeds: u64,
    max_steps: u64,
) -> DeterminismReport {
    let mut schedules: Vec<Box<dyn Activation>> =
        vec![Box::new(RoundRobin::new()), Box::new(AllAtOnce)];
    for s in 0..seeds {
        schedules.push(Box::new(RandomFair::new(s)));
        schedules.push(Box::new(RandomSubsets::new(s.wrapping_add(0x5EED))));
    }

    let mut report = DeterminismReport {
        converged_runs: 0,
        unconverged_runs: 0,
        distinct_outcomes: Vec::new(),
    };
    for mut schedule in schedules {
        let mut engine = SyncEngine::new(topo, config, exits.to_vec());
        let outcome = engine.run(schedule.as_mut(), max_steps);
        if outcome.converged() {
            report.converged_runs += 1;
            let bv = engine.best_vector();
            if !report.distinct_outcomes.contains(&bv) {
                report.distinct_outcomes.push(bv);
            }
        } else {
            report.unconverged_runs += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med, RouterId};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    fn disagree() -> (Topology, Vec<ExitPathRef>) {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        (topo, exits)
    }

    #[test]
    fn modified_protocol_is_deterministic_on_disagree() {
        let (topo, exits) = disagree();
        let report = determinism_report(&topo, ProtocolConfig::MODIFIED, &exits, 8, 10_000);
        assert!(report.deterministic(), "{report:?}");
        assert_eq!(report.distinct_outcomes.len(), 1);
    }

    #[test]
    fn standard_protocol_is_not_deterministic_on_disagree() {
        let (topo, exits) = disagree();
        let report = determinism_report(&topo, ProtocolConfig::STANDARD, &exits, 8, 10_000);
        // Either some schedule oscillates (all-at-once does) or different
        // schedules reach different stable solutions — both falsify
        // determinism.
        assert!(!report.deterministic(), "{report:?}");
    }

    #[test]
    fn trivial_scenario_is_deterministic_under_all_variants() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        for config in [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ] {
            let report = determinism_report(&topo, config, &exits, 4, 1_000);
            assert!(report.deterministic(), "{config}: {report:?}");
        }
    }
}
