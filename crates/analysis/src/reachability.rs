//! Exhaustive exploration of reachable configurations.
//!
//! §5 of the paper proves that deciding whether an I-BGP configuration
//! *can* stabilize is NP-complete. On the instance sizes of the paper's
//! figures the question is nevertheless decidable by brute force: from
//! `config(0)`, explore every configuration reachable under the
//! nondeterministic choice of activation set, and look for fixed points.
//!
//! Branching: all singleton activations plus the full-set activation.
//! Singletons generate every interleaving of individual router steps; the
//! full set additionally captures the simultaneous-exchange states that
//! drive oscillations like Fig 2. (Intermediate subset sizes add no new
//! behaviours on the paper's examples and are omitted to keep the
//! branching factor at `n + 1`; the limitation is inherent to bounded
//! search of an NP-complete question and is documented in DESIGN.md.)
//!
//! The search itself is a level-synchronous BFS that can fan each level
//! out across a pool of worker threads (see [`crate::parallel`]); the
//! result is bit-identical for every [`ExploreOptions::jobs`] setting.

use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::Metrics;
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef, SolverMode, StopReason, VerdictOrigin};
use std::time::Instant;

/// Options for [`explore`], builder-style.
///
/// ```
/// use ibgp_analysis::ExploreOptions;
/// let opts = ExploreOptions::new().max_states(100_000).jobs(4);
/// ```
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    pub(crate) max_states: usize,
    pub(crate) memoized: bool,
    pub(crate) jobs: usize,
    pub(crate) symmetry: bool,
    pub(crate) max_bytes: Option<usize>,
    pub(crate) flat: bool,
    pub(crate) por: bool,
    pub(crate) deadline: Option<Instant>,
    pub(crate) solver: SolverMode,
    pub(crate) loop_prevention: bool,
}

/// Ceiling on auto-selected workers (`jobs = 0`). Search levels on the
/// paper's instances rarely feed more threads than this, and an
/// unbounded default would oversubscribe big machines for no speedup.
pub(crate) const MAX_AUTO_JOBS: usize = 8;

impl Default for ExploreOptions {
    /// 500 000-state cap, memoized updates, flat state encoding,
    /// auto-sized worker pool, no symmetry reduction, unbounded memory.
    fn default() -> Self {
        Self {
            max_states: 500_000,
            memoized: true,
            jobs: 0,
            symmetry: false,
            max_bytes: None,
            flat: true,
            por: false,
            deadline: None,
            solver: SolverMode::Search,
            loop_prevention: false,
        }
    }
}

impl ExploreOptions {
    /// The defaults: 500 000-state cap, memoized updates, auto-sized
    /// worker pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the search at this many distinct configurations.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Use the engine's memoized update path (default) or the naive
    /// reference path that recomputes every node update from scratch.
    pub fn memoized(mut self, memoized: bool) -> Self {
        self.memoized = memoized;
        self
    }

    /// Worker threads for the search. `1` explores in-thread; `0` (the
    /// default) means one worker per available hardware thread, capped
    /// at 8. The result is bit-identical for every value.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Use the flat fixed-width state encoding (the default) or the
    /// legacy `StateKey` path. The two visit identical state spaces and
    /// report identical verdicts, counts, and stable vectors (the
    /// equivalence suite in `tests/flat_state_equivalence.rs` enforces
    /// this); the legacy path survives as the executable specification
    /// and for A/B throughput measurement. Note that
    /// [`Self::max_bytes`] budgets are accounted per-encoding — flat
    /// keys are smaller, so a given budget caps the two paths at
    /// different points.
    pub fn flat_encoding(mut self, flat: bool) -> Self {
        self.flat = flat;
        self
    }

    /// Collapse symmetric interleavings: canonicalize every visited state
    /// under the topology's automorphism group before the visited-set
    /// probe. Verdicts (stable / bistable / oscillating) are invariant
    /// under relabeling, so the classification is unchanged while the
    /// distinct-state count shrinks by up to the group order; the
    /// measured reduction lands in [`Metrics::reduction_factor`]. When
    /// an identifier-order tie-break could have discriminated between
    /// symmetric exits (see `symmetry` module docs), the search detects
    /// it and transparently restarts without the reduction, so the
    /// option is always safe to enable.
    pub fn symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Prune activation interleavings with exact partial-order reduction
    /// (ample/stubborn sets over the session-graph dependency structure).
    /// At each state the explorer asks the engine for an ample set — the
    /// enabled routers whose activation leaves every transfer-filtered
    /// outgoing advertisement unchanged, and which therefore commute
    /// with every other transition (see `SyncEngine::ample_set`) — and
    /// expands only that one compound branch instead of all `n + 1`.
    /// When no activation's commutation precondition can be proven the
    /// state falls back to full expansion, and the cycle proviso is
    /// discharged structurally (an ample step never chains into another),
    /// so the reduction is *exact*: verdict class, stable-vector set, and
    /// completeness match the unpruned search — only the distinct-state
    /// count shrinks (measured by [`Metrics::por_ample`] /
    /// [`Metrics::por_full`]). Composes with [`Self::symmetry`] (the
    /// ample set is automorphism-equivariant, and the dangerous-tie
    /// guard still restarts symmetry-free with POR intact),
    /// [`Self::max_bytes`], and every [`Self::jobs`] setting
    /// (bit-identical verdicts — the ample choice is a pure function of
    /// the state).
    pub fn por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }

    /// Bound the visited set's estimated heap footprint. Above the
    /// budget the search compacts full state keys to digest-only hashes
    /// (collision counts land in [`Metrics::digest_collisions`]); if the
    /// digests alone exceed the budget, the search stops and reports
    /// "ran out of memory budget" via [`Reachability::memory`] instead
    /// of growing without bound.
    pub fn max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Stop the search once this wall-clock instant passes, reporting
    /// [`StopReason::Deadline`]. The deadline is checked between BFS
    /// levels, so an already-expired deadline stops deterministically
    /// after visiting only the initial state. `None` (the default) means
    /// no deadline.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Choose the classification backend: [`SolverMode::Search`] (the
    /// default) explores reachable configurations; [`SolverMode::Sat`]
    /// encodes the `Choose_best` fixed-point condition as CNF and
    /// enumerates **all** stable routings with the constraint solver —
    /// exact stability/bistability verdicts and exact counts with no
    /// state enumeration. Only the standard protocol has the required
    /// fixed-point structure; other variants fall back to search (and
    /// [`crate::classify`] resolves the fallback transparently).
    pub fn solver(mut self, solver: SolverMode) -> Self {
        self.solver = solver;
        self
    }

    /// Run the message-level reflection mechanics: stamp ORIGINATOR_ID
    /// and CLUSTER_LIST on reflected routes, drop cluster loops on
    /// receipt, never reflect a route back to its originator (SSLD), and
    /// reflect per the standard matrix (client route → everyone,
    /// non-client route → clients only, own E-BGP route → everyone).
    /// Off (the default), propagation uses the paper's §4 `Transfer`
    /// predicate, so every existing verdict stays reproducible. On, the
    /// search runs the legacy state encoding and turns symmetry and
    /// partial-order reduction off (the attribute words are not encoded
    /// in the flat codec and are not automorphism-canonicalized), and
    /// the constraint solver declines — [`crate::classify`] falls back
    /// to search transparently.
    pub fn loop_prevention(mut self, loop_prevention: bool) -> Self {
        self.loop_prevention = loop_prevention;
        self
    }

    /// Resolve `jobs = 0` to the available hardware parallelism, capped
    /// at [`MAX_AUTO_JOBS`].
    pub(crate) fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get().min(MAX_AUTO_JOBS))
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Result of a bounded reachability exploration.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Number of distinct configurations visited.
    pub states: usize,
    /// Whether the whole reachable space was explored (false = the state
    /// cap was hit and absence results are inconclusive).
    pub complete: bool,
    /// Distinct stable routing configurations found, as best-exit
    /// vectors, in canonical (sorted) order.
    pub stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    /// Why the search ended. [`StopReason::Complete`] iff [`Self::complete`];
    /// every other reason (state cap, byte budget, deadline) means the
    /// exploration was truncated and absence results are inconclusive.
    /// The reason always comes from the search itself, never inferred
    /// from incompleteness.
    pub stop: StopReason,
    /// Search observability: engine counters (incl. update-cache hits and
    /// misses) plus states visited, wall-clock time, frontier depth, peak
    /// frontier size, and the parallel gauges (workers, handoffs, peak
    /// shard occupancy).
    pub metrics: Metrics,
    /// Which backend produced this result. For [`VerdictOrigin::Search`]
    /// the stable vectors are the *reachable* fixed points and `states`
    /// counts visited configurations; for [`VerdictOrigin::Solver`] the
    /// stable vectors are **all** fixed points of the standard protocol,
    /// `states` is 0, and `metrics` carries only wall-clock time.
    pub origin: VerdictOrigin,
}

impl Reachability {
    /// Whether some activation sequence stabilizes the system (the §5
    /// decision question, answered affirmatively by a witness).
    pub fn can_converge(&self) -> bool {
        !self.stable_vectors.is_empty()
    }

    /// Whether the system provably has **no** reachable stable
    /// configuration — a persistent oscillation. Requires a complete
    /// exploration.
    pub fn persistent_oscillation(&self) -> bool {
        self.complete && self.stable_vectors.is_empty()
    }

    /// Whether the search was stopped by its state cap.
    pub fn capped(&self) -> bool {
        matches!(self.stop, StopReason::StateCap(_))
    }

    /// Whether the search was stopped by its memory budget.
    pub fn memory_exhausted(&self) -> bool {
        matches!(self.stop, StopReason::MemoryBudget(_))
    }

    /// The state cap that stopped the search, when one did.
    #[deprecated(note = "read the `stop` field (`StopReason`) instead")]
    pub fn cap(&self) -> Option<usize> {
        self.stop.state_cap()
    }

    /// The byte budget that stopped the search, when one did.
    #[deprecated(note = "read the `stop` field (`StopReason`) instead")]
    pub fn memory(&self) -> Option<usize> {
        self.stop.memory_budget()
    }
}

/// Explore every configuration reachable from `config(0)`.
///
/// ```
/// use ibgp_analysis::{explore, ExploreOptions};
/// use ibgp_proto::variants::ProtocolConfig;
/// use ibgp_topology::TopologyBuilder;
/// use ibgp_types::*;
/// use std::sync::Arc;
///
/// let topo = TopologyBuilder::new(2).link(0, 1, 1).full_mesh().build()?;
/// let exit = Arc::new(ExitPath::builder(ExitPathId::new(1))
///     .via(AsId::new(1)).exit_point(RouterId::new(0)).build_unchecked());
/// let reach = explore(
///     &topo,
///     ProtocolConfig::STANDARD,
///     vec![exit],
///     ExploreOptions::new().max_states(10_000),
/// );
/// assert!(reach.complete && reach.can_converge());
/// # Ok::<(), ibgp_topology::TopologyError>(())
/// ```
pub fn explore(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    options: ExploreOptions,
) -> Reachability {
    crate::parallel::search(topo, config, exits, &options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med, RouterId};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    fn disagree() -> (Topology, Vec<ExitPathRef>) {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        (topo, exits)
    }

    #[test]
    fn trivial_system_converges() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let r = explore(
            &topo,
            ProtocolConfig::STANDARD,
            vec![exit(1, 1, 0, 0)],
            ExploreOptions::new().max_states(10_000),
        );
        assert!(r.complete);
        assert!(r.can_converge());
        assert!(!r.persistent_oscillation());
        assert!(!r.capped());
        assert_eq!(r.stable_vectors.len(), 1);
        assert_eq!(
            r.stable_vectors[0],
            vec![Some(ExitPathId::new(1)), Some(ExitPathId::new(1))]
        );
    }

    /// The DISAGREE gadget (see ibgp-sim tests) has exactly two stable
    /// solutions under the standard protocol, both reachable.
    #[test]
    fn disagree_has_two_reachable_stable_solutions() {
        let (topo, exits) = disagree();
        let opts = ExploreOptions::new().max_states(100_000);
        let r = explore(&topo, ProtocolConfig::STANDARD, exits.clone(), opts.clone());
        assert!(r.complete);
        assert_eq!(r.stable_vectors.len(), 2, "{:?}", r.stable_vectors);

        // The modified protocol has exactly one.
        let r = explore(&topo, ProtocolConfig::MODIFIED, exits, opts);
        assert!(r.complete);
        assert_eq!(r.stable_vectors.len(), 1, "{:?}", r.stable_vectors);
    }

    #[test]
    fn state_cap_reports_incomplete_and_carries_the_cap() {
        let (topo, exits) = disagree();
        let r = explore(
            &topo,
            ProtocolConfig::STANDARD,
            exits,
            ExploreOptions::new().max_states(3),
        );
        assert!(!r.complete);
        assert!(r.capped());
        assert_eq!(r.stop, StopReason::StateCap(3));
        assert!(
            !r.persistent_oscillation(),
            "incomplete search proves nothing"
        );
    }

    /// The exploration reports search observability and a warm cache, and
    /// the memoized and naive engines agree on every verdict.
    #[test]
    fn exploration_metrics_and_naive_agreement() {
        let (topo, exits) = disagree();
        let fast = explore(
            &topo,
            ProtocolConfig::STANDARD,
            exits.clone(),
            ExploreOptions::new().max_states(100_000).jobs(1),
        );
        let slow = explore(
            &topo,
            ProtocolConfig::STANDARD,
            exits,
            ExploreOptions::new()
                .max_states(100_000)
                .jobs(1)
                .memoized(false),
        );
        assert_eq!(fast.states, slow.states);
        assert_eq!(fast.complete, slow.complete);
        assert_eq!(fast.stable_vectors, slow.stable_vectors);

        let m = fast.metrics;
        assert_eq!(m.states_visited as usize, fast.states);
        assert!(m.cache_hits > 0, "replays must hit the memo");
        assert!(m.cache_hit_rate() > 0.5, "hit rate {}", m.cache_hit_rate());
        assert!(m.frontier_depth > 0);
        assert!(m.peak_queue > 0);
        assert!(m.elapsed_nanos > 0);
        assert!(m.states_per_sec() > 0.0);
        assert_eq!(m.workers, 1);
        assert_eq!(m.handoffs, 0, "in-thread path hands nothing off");
        assert!(m.peak_shard > 0);
        // The naive path never touches the cache.
        assert_eq!(slow.metrics.cache_hits, 0);
        assert_eq!(slow.metrics.cache_misses, 0);
    }

    #[test]
    fn empty_exit_set_is_immediately_stable() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let r = explore(
            &topo,
            ProtocolConfig::STANDARD,
            vec![],
            ExploreOptions::new().max_states(100),
        );
        assert!(r.complete);
        assert_eq!(r.states, 1);
        assert_eq!(r.stable_vectors, vec![vec![None, None]]);
    }

    /// The parallel pool reproduces the in-thread result exactly — the
    /// determinism contract the module doc promises. (The proptest in
    /// `tests/parallel_equivalence.rs` covers random instances; this is
    /// the cheap always-on check.)
    #[test]
    fn parallel_jobs_match_sequential_bit_for_bit() {
        let (topo, exits) = disagree();
        let base = explore(
            &topo,
            ProtocolConfig::STANDARD,
            exits.clone(),
            ExploreOptions::new().max_states(100_000).jobs(1),
        );
        for jobs in [2, 4] {
            let par = explore(
                &topo,
                ProtocolConfig::STANDARD,
                exits.clone(),
                ExploreOptions::new().max_states(100_000).jobs(jobs),
            );
            assert_eq!(par.states, base.states, "jobs={jobs}");
            assert_eq!(par.complete, base.complete, "jobs={jobs}");
            assert_eq!(par.stable_vectors, base.stable_vectors, "jobs={jobs}");
            assert_eq!(par.stop, base.stop, "jobs={jobs}");
            assert_eq!(par.metrics.workers, jobs as u64);
            assert!(par.metrics.handoffs > 0, "pool path must hand units off");
            // Engine-side counters are sums over the same deterministic
            // work set, so they match the sequential run too.
            assert_eq!(par.metrics.activations, base.metrics.activations);
            assert_eq!(par.metrics.messages, base.metrics.messages);
        }
    }

    /// `jobs = 0` resolves to the hardware thread count, sanely capped —
    /// never to a zero-worker (or thousand-worker) pool.
    #[test]
    fn auto_jobs_resolve_to_capped_hardware_parallelism() {
        let auto = ExploreOptions::new().effective_jobs();
        assert!(auto >= 1, "auto jobs must run at least one worker");
        assert!(auto <= MAX_AUTO_JOBS, "auto jobs capped at {MAX_AUTO_JOBS}");
        assert_eq!(ExploreOptions::new().jobs(3).effective_jobs(), 3);
        // The default is auto, and the two encodings share it.
        assert_eq!(ExploreOptions::default().jobs, 0);
        assert!(ExploreOptions::default().flat);
    }

    /// The two state encodings agree on everything observable, and the
    /// default (flat) one reports the legacy one's exact search shape.
    #[test]
    fn flat_and_legacy_encodings_agree() {
        let (topo, exits) = disagree();
        for config in [ProtocolConfig::STANDARD, ProtocolConfig::MODIFIED] {
            let flat = explore(
                &topo,
                config,
                exits.clone(),
                ExploreOptions::new().max_states(100_000).jobs(1),
            );
            let legacy = explore(
                &topo,
                config,
                exits.clone(),
                ExploreOptions::new()
                    .max_states(100_000)
                    .jobs(1)
                    .flat_encoding(false),
            );
            assert_eq!(flat.states, legacy.states);
            assert_eq!(flat.complete, legacy.complete);
            assert_eq!(flat.stable_vectors, legacy.stable_vectors);
            assert_eq!(flat.stop, legacy.stop);
            assert_eq!(flat.metrics.activations, legacy.metrics.activations);
            assert_eq!(flat.metrics.messages, legacy.metrics.messages);
            assert_eq!(
                flat.metrics.paths_advertised,
                legacy.metrics.paths_advertised
            );
            assert_eq!(flat.metrics.best_changes, legacy.metrics.best_changes);
            assert_eq!(flat.metrics.frontier_depth, legacy.metrics.frontier_depth);
            assert_eq!(flat.metrics.peak_queue, legacy.metrics.peak_queue);
        }
    }

    /// Cap determinism: the capped prefix is identical at every thread
    /// count, including which state trips the cap.
    #[test]
    fn capped_search_is_deterministic_across_jobs() {
        let (topo, exits) = disagree();
        for cap in [1, 3, 7, 20] {
            let base = explore(
                &topo,
                ProtocolConfig::STANDARD,
                exits.clone(),
                ExploreOptions::new().max_states(cap).jobs(1),
            );
            for jobs in [2, 8] {
                let par = explore(
                    &topo,
                    ProtocolConfig::STANDARD,
                    exits.clone(),
                    ExploreOptions::new().max_states(cap).jobs(jobs),
                );
                assert_eq!(par.states, base.states, "cap={cap} jobs={jobs}");
                assert_eq!(par.complete, base.complete, "cap={cap} jobs={jobs}");
                assert_eq!(par.stop, base.stop, "cap={cap} jobs={jobs}");
                assert_eq!(
                    par.stable_vectors, base.stable_vectors,
                    "cap={cap} jobs={jobs}"
                );
            }
        }
    }
}
