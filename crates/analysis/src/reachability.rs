//! Exhaustive exploration of reachable configurations.
//!
//! §5 of the paper proves that deciding whether an I-BGP configuration
//! *can* stabilize is NP-complete. On the instance sizes of the paper's
//! figures the question is nevertheless decidable by brute force: from
//! `config(0)`, explore every configuration reachable under the
//! nondeterministic choice of activation set, and look for fixed points.
//!
//! Branching: all singleton activations plus the full-set activation.
//! Singletons generate every interleaving of individual router steps; the
//! full set additionally captures the simultaneous-exchange states that
//! drive oscillations like Fig 2. (Intermediate subset sizes add no new
//! behaviours on the paper's examples and are omitted to keep the
//! branching factor at `n + 1`; the limitation is inherent to bounded
//! search of an NP-complete question and is documented in DESIGN.md.)

use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::signature::StateKey;
use ibgp_sim::{Metrics, SyncEngine, SyncSnapshot};
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef, RouterId};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Result of a bounded reachability exploration.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Number of distinct configurations visited.
    pub states: usize,
    /// Whether the whole reachable space was explored (false = the state
    /// cap was hit and absence results are inconclusive).
    pub complete: bool,
    /// Distinct stable routing configurations found, as best-exit vectors.
    pub stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    /// Search observability: engine counters (incl. update-cache hits and
    /// misses) plus states visited, wall-clock time, frontier depth, and
    /// peak queue length.
    pub metrics: Metrics,
}

impl Reachability {
    /// Whether some activation sequence stabilizes the system (the §5
    /// decision question, answered affirmatively by a witness).
    pub fn can_converge(&self) -> bool {
        !self.stable_vectors.is_empty()
    }

    /// Whether the system provably has **no** reachable stable
    /// configuration — a persistent oscillation. Requires a complete
    /// exploration.
    pub fn persistent_oscillation(&self) -> bool {
        self.complete && self.stable_vectors.is_empty()
    }
}

/// Explore every configuration reachable from `config(0)`; cap at
/// `max_states` distinct configurations.
///
/// ```
/// use ibgp_analysis::explore;
/// use ibgp_proto::variants::ProtocolConfig;
/// use ibgp_topology::TopologyBuilder;
/// use ibgp_types::*;
/// use std::sync::Arc;
///
/// let topo = TopologyBuilder::new(2).link(0, 1, 1).full_mesh().build()?;
/// let exit = Arc::new(ExitPath::builder(ExitPathId::new(1))
///     .via(AsId::new(1)).exit_point(RouterId::new(0)).build_unchecked());
/// let reach = explore(&topo, ProtocolConfig::STANDARD, vec![exit], 10_000);
/// assert!(reach.complete && reach.can_converge());
/// # Ok::<(), ibgp_topology::TopologyError>(())
/// ```
pub fn explore(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    max_states: usize,
) -> Reachability {
    explore_memoized(topo, config, exits, max_states, true)
}

/// [`explore`] with the engine's update memo explicitly on or off.
///
/// The memoized path is the default; the naive path recomputes every node
/// update from scratch and exists as the reference the incremental engine
/// is benchmarked and equivalence-tested against.
pub fn explore_memoized(
    topo: &Topology,
    config: ProtocolConfig,
    exits: Vec<ExitPathRef>,
    max_states: usize,
    memoize: bool,
) -> Reachability {
    let started = Instant::now();
    let mut engine = SyncEngine::new(topo, config, exits);
    engine.set_memoized(memoize);
    let n = topo.len();

    // Branch choices: each singleton, plus the full activation set.
    let mut branches: Vec<Vec<RouterId>> = (0..n as u32).map(|i| vec![RouterId::new(i)]).collect();
    branches.push((0..n as u32).map(RouterId::new).collect());

    let mut visited: HashMap<u64, Vec<StateKey>> = HashMap::new();
    // Snapshots are interned-row vectors (cheap), paired with their BFS
    // depth for the frontier metrics.
    let mut queue: VecDeque<(SyncSnapshot, u64)> = VecDeque::new();
    let mut stable_vectors: Vec<Vec<Option<ExitPathId>>> = Vec::new();
    let mut states = 0usize;
    let mut complete = true;
    let mut frontier_depth = 0u64;
    let mut peak_queue = 0u64;

    let try_visit = |engine: &SyncEngine, visited: &mut HashMap<u64, Vec<StateKey>>| -> bool {
        let key = engine.state_key(0);
        let bucket = visited.entry(key.digest()).or_default();
        if bucket.contains(&key) {
            false
        } else {
            bucket.push(key);
            true
        }
    };

    let finish = |engine: &SyncEngine,
                  states: usize,
                  complete: bool,
                  stable_vectors: Vec<Vec<Option<ExitPathId>>>,
                  frontier_depth: u64,
                  peak_queue: u64,
                  started: Instant| {
        let mut metrics = engine.metrics();
        metrics.states_visited = states as u64;
        metrics.elapsed_nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        metrics.frontier_depth = frontier_depth;
        metrics.peak_queue = peak_queue;
        Reachability {
            states,
            complete,
            stable_vectors,
            metrics,
        }
    };

    if try_visit(&engine, &mut visited) {
        states += 1;
        queue.push_back((engine.snapshot(), 0));
        peak_queue = 1;
    }

    while let Some((snap, depth)) = queue.pop_front() {
        engine.restore(&snap);
        if engine.is_stable() {
            let bv = engine.best_vector();
            if !stable_vectors.contains(&bv) {
                stable_vectors.push(bv);
            }
            continue; // fixed point: every branch self-loops
        }
        for branch in &branches {
            engine.restore(&snap);
            engine.step(branch);
            if try_visit(&engine, &mut visited) {
                states += 1;
                if states > max_states {
                    complete = false;
                    return finish(
                        &engine,
                        states,
                        complete,
                        stable_vectors,
                        frontier_depth,
                        peak_queue,
                        started,
                    );
                }
                queue.push_back((engine.snapshot(), depth + 1));
                frontier_depth = frontier_depth.max(depth + 1);
                peak_queue = peak_queue.max(queue.len() as u64);
            }
        }
    }

    finish(
        &engine,
        states,
        complete,
        stable_vectors,
        frontier_depth,
        peak_queue,
        started,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med, RouterId};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    #[test]
    fn trivial_system_converges() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let r = explore(
            &topo,
            ProtocolConfig::STANDARD,
            vec![exit(1, 1, 0, 0)],
            10_000,
        );
        assert!(r.complete);
        assert!(r.can_converge());
        assert!(!r.persistent_oscillation());
        assert_eq!(r.stable_vectors.len(), 1);
        assert_eq!(
            r.stable_vectors[0],
            vec![Some(ExitPathId::new(1)), Some(ExitPathId::new(1))]
        );
    }

    /// The DISAGREE gadget (see ibgp-sim tests) has exactly two stable
    /// solutions under the standard protocol, both reachable.
    #[test]
    fn disagree_has_two_reachable_stable_solutions() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let r = explore(&topo, ProtocolConfig::STANDARD, exits.clone(), 100_000);
        assert!(r.complete);
        assert_eq!(r.stable_vectors.len(), 2, "{:?}", r.stable_vectors);

        // The modified protocol has exactly one.
        let r = explore(&topo, ProtocolConfig::MODIFIED, exits, 100_000);
        assert!(r.complete);
        assert_eq!(r.stable_vectors.len(), 1, "{:?}", r.stable_vectors);
    }

    #[test]
    fn state_cap_reports_incomplete() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let r = explore(&topo, ProtocolConfig::STANDARD, exits, 3);
        assert!(!r.complete);
        assert!(
            !r.persistent_oscillation(),
            "incomplete search proves nothing"
        );
    }

    /// The exploration reports search observability and a warm cache, and
    /// the memoized and naive engines agree on every verdict.
    #[test]
    fn exploration_metrics_and_naive_agreement() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let fast = explore_memoized(
            &topo,
            ProtocolConfig::STANDARD,
            exits.clone(),
            100_000,
            true,
        );
        let slow = explore_memoized(&topo, ProtocolConfig::STANDARD, exits, 100_000, false);
        assert_eq!(fast.states, slow.states);
        assert_eq!(fast.complete, slow.complete);
        assert_eq!(fast.stable_vectors, slow.stable_vectors);

        let m = fast.metrics;
        assert_eq!(m.states_visited as usize, fast.states);
        assert!(m.cache_hits > 0, "replays must hit the memo");
        assert!(m.cache_hit_rate() > 0.5, "hit rate {}", m.cache_hit_rate());
        assert!(m.frontier_depth > 0);
        assert!(m.peak_queue > 0);
        assert!(m.elapsed_nanos > 0);
        assert!(m.states_per_sec() > 0.0);
        // The naive path never touches the cache.
        assert_eq!(slow.metrics.cache_hits, 0);
        assert_eq!(slow.metrics.cache_misses, 0);
    }

    #[test]
    fn empty_exit_set_is_immediately_stable() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let r = explore(&topo, ProtocolConfig::STANDARD, vec![], 100);
        assert!(r.complete);
        assert_eq!(r.states, 1);
        assert_eq!(r.stable_vectors, vec![vec![None, None]]);
    }
}
