//! Per-rule narrowing traces for `Choose_best`.
//!
//! A trace records, after each applied rule, how many candidates remained.
//! Tests use it to pin down *which* rule decided a selection (e.g. "Fig 1(a)
//! reflector A picks r1 over r3 on the IGP metric, not on MED"), and it is
//! invaluable when debugging scenario constructions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a narrowing rule, in the vocabulary of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// Rule 1: highest LOCAL-PREF.
    LocalPref,
    /// Rule 2: minimum AS-PATH length.
    AsPathLen,
    /// Rule 3 (standard): per-neighbor-AS MED elimination.
    MedPerAs,
    /// Rule 3 (`always-compare-med`): global MED elimination.
    MedAlways,
    /// Rule 4: restriction to E-BGP routes.
    PreferEbgp,
    /// Rules 4/5: minimum IGP metric.
    MinMetric,
    /// Rule 6: minimum `learnedFrom` BGP identifier.
    TieBreakBgpId,
    /// Implementation fallback: minimum exit-path id.
    TieBreakExitId,
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::LocalPref => "local-pref",
            RuleId::AsPathLen => "as-path-length",
            RuleId::MedPerAs => "med-per-as",
            RuleId::MedAlways => "med-always",
            RuleId::PreferEbgp => "prefer-ebgp",
            RuleId::MinMetric => "min-metric",
            RuleId::TieBreakBgpId => "bgp-id",
            RuleId::TieBreakExitId => "exit-id",
        };
        f.write_str(s)
    }
}

/// The narrowing history of one `Choose_best` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionTrace {
    initial: usize,
    steps: Vec<(RuleId, usize)>,
}

impl SelectionTrace {
    pub(crate) fn new(initial: usize) -> Self {
        Self {
            initial,
            steps: Vec::new(),
        }
    }

    pub(crate) fn record(&mut self, rule: RuleId, remaining: usize) {
        self.steps.push((rule, remaining));
    }

    /// Number of candidates before any rule ran.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The `(rule, remaining-candidates)` steps in application order.
    pub fn steps(&self) -> &[(RuleId, usize)] {
        &self.steps
    }

    /// The first rule that reduced the candidate set to a single route —
    /// the rule that "decided" — if any rule did.
    pub fn deciding_rule(&self) -> Option<RuleId> {
        let mut prev = self.initial;
        for &(rule, remaining) in &self.steps {
            if remaining == 1 && prev > 1 {
                return Some(rule);
            }
            prev = remaining;
        }
        None
    }
}

impl fmt::Display for SelectionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.initial)?;
        for (rule, remaining) in &self.steps {
            write!(f, " -[{rule}]-> {remaining}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deciding_rule_finds_first_singleton() {
        let mut t = SelectionTrace::new(4);
        t.record(RuleId::LocalPref, 3);
        t.record(RuleId::AsPathLen, 3);
        t.record(RuleId::MedPerAs, 1);
        t.record(RuleId::MinMetric, 1);
        assert_eq!(t.deciding_rule(), Some(RuleId::MedPerAs));
    }

    #[test]
    fn deciding_rule_none_when_started_singleton() {
        let mut t = SelectionTrace::new(1);
        t.record(RuleId::LocalPref, 1);
        assert_eq!(t.deciding_rule(), None);
    }

    #[test]
    fn display_shows_narrowing_chain() {
        let mut t = SelectionTrace::new(2);
        t.record(RuleId::LocalPref, 2);
        t.record(RuleId::MinMetric, 1);
        assert_eq!(t.to_string(), "2 -[local-pref]-> 2 -[min-metric]-> 1");
    }
}
