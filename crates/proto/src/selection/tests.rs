use super::*;
use ibgp_types::{
    AsId, BgpId, ExitPath, ExitPathId, ExitPathRef, IgpCost, LocalPref, Med, Route, RouterId,
};
use std::sync::Arc;

/// Handy exit-path factory: id, neighbor AS, MED, exit point.
fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
    Arc::new(
        ExitPath::builder(ExitPathId::new(id))
            .via(AsId::new(next_as))
            .med(Med::new(med))
            .exit_point(RouterId::new(exit_point))
            .build_unchecked(),
    )
}

/// Route at `node` with the given IGP cost and learnedFrom id.
fn route(p: &ExitPathRef, node: u32, igp: u64, from: u32) -> Route {
    Route::new(
        p.clone(),
        RouterId::new(node),
        IgpCost::new(igp),
        BgpId::new(from),
    )
}

#[test]
fn empty_set_selects_nothing() {
    let (best, trace) = choose_best_traced(SelectionPolicy::PAPER, &[]);
    assert!(best.is_none());
    assert_eq!(trace.initial(), 0);
}

#[test]
fn singleton_is_selected() {
    let p = exit(1, 1, 0, 5);
    let r = route(&p, 0, 3, 9);
    assert_eq!(
        choose_best(SelectionPolicy::PAPER, std::slice::from_ref(&r)),
        Some(r)
    );
}

#[test]
fn rule1_highest_local_pref_wins() {
    let hi = Arc::new(
        ExitPath::builder(ExitPathId::new(1))
            .via(AsId::new(1))
            .local_pref(LocalPref::new(200))
            .exit_point(RouterId::new(1))
            .build_unchecked(),
    );
    let lo = exit(2, 2, 0, 2); // default LOCAL-PREF 100, otherwise better
    let candidates = [route(&hi, 0, 100, 2), route(&lo, 0, 1, 1)];
    let (best, trace) = choose_best_traced(SelectionPolicy::PAPER, &candidates);
    assert_eq!(best.unwrap().exit_id(), ExitPathId::new(1));
    assert_eq!(trace.deciding_rule(), Some(RuleId::LocalPref));
}

#[test]
fn rule2_shorter_as_path_wins() {
    let short = exit(1, 1, 0, 1);
    let long = Arc::new(
        ExitPath::builder(ExitPathId::new(2))
            .via_with_length(AsId::new(2), 3)
            .exit_point(RouterId::new(2))
            .build_unchecked(),
    );
    let candidates = [route(&long, 0, 1, 1), route(&short, 0, 100, 2)];
    let (best, trace) = choose_best_traced(SelectionPolicy::PAPER, &candidates);
    assert_eq!(best.unwrap().exit_id(), ExitPathId::new(1));
    assert_eq!(trace.deciding_rule(), Some(RuleId::AsPathLen));
}

#[test]
fn rule3_med_compared_within_same_neighbor_only() {
    // Same neighbor AS1: med 5 eliminates med 10. Different neighbor AS2
    // with med 99 survives rule 3 untouched.
    let a = exit(1, 1, 5, 1);
    let b = exit(2, 1, 10, 2);
    let c = exit(3, 2, 99, 3);
    let survivors = choose_set(
        &[route(&a, 0, 1, 1), route(&b, 0, 1, 2), route(&c, 0, 1, 3)],
        MedMode::PerNeighborAs,
    );
    let ids: Vec<_> = survivors.iter().map(Route::exit_id).collect();
    assert_eq!(ids, vec![ExitPathId::new(1), ExitPathId::new(3)]);
}

#[test]
fn rule3_always_compare_med_crosses_neighbors() {
    let a = exit(1, 1, 5, 1);
    let c = exit(3, 2, 99, 3);
    let survivors = choose_set(
        &[route(&a, 0, 1, 1), route(&c, 0, 1, 3)],
        MedMode::AlwaysCompare,
    );
    let ids: Vec<_> = survivors.iter().map(Route::exit_id).collect();
    assert_eq!(ids, vec![ExitPathId::new(1)]);
}

#[test]
fn med_ignore_keeps_everything() {
    let a = exit(1, 1, 5, 1);
    let b = exit(2, 1, 10, 2);
    let survivors = choose_set(&[route(&a, 0, 1, 1), route(&b, 0, 1, 2)], MedMode::Ignore);
    assert_eq!(survivors.len(), 2);
}

#[test]
fn rule4_paper_order_prefers_ebgp_even_when_farther() {
    // Node 0 holds its own exit (E-BGP, metric 0 + exit cost 0) and a
    // much closer... wait, an I-BGP route can't be closer than 0; use a
    // nonzero exit cost to make the E-BGP route *more expensive*.
    let own = Arc::new(
        ExitPath::builder(ExitPathId::new(1))
            .via(AsId::new(1))
            .exit_point(RouterId::new(0))
            .exit_cost(IgpCost::new(50))
            .build_unchecked(),
    );
    let remote = exit(2, 2, 0, 7);
    let candidates = [route(&own, 0, 0, 1), route(&remote, 0, 3, 2)];
    let (best, trace) = choose_best_traced(SelectionPolicy::PAPER, &candidates);
    // Paper order: E-BGP (metric 50) beats I-BGP (metric 3).
    assert_eq!(best.unwrap().exit_id(), ExitPathId::new(1));
    assert_eq!(trace.deciding_rule(), Some(RuleId::PreferEbgp));

    // RFC 1771 order: metric first, so the I-BGP route wins.
    let best = choose_best(SelectionPolicy::RFC1771, &candidates).unwrap();
    assert_eq!(best.exit_id(), ExitPathId::new(2));
}

#[test]
fn rule5_min_metric_among_ibgp() {
    let far = exit(1, 1, 0, 5);
    let near = exit(2, 2, 0, 6);
    let candidates = [route(&far, 0, 10, 1), route(&near, 0, 2, 2)];
    let (best, trace) = choose_best_traced(SelectionPolicy::PAPER, &candidates);
    assert_eq!(best.unwrap().exit_id(), ExitPathId::new(2));
    assert_eq!(trace.deciding_rule(), Some(RuleId::MinMetric));
}

#[test]
fn rfc_order_prefers_ebgp_among_metric_ties() {
    let own = Arc::new(
        ExitPath::builder(ExitPathId::new(1))
            .via(AsId::new(1))
            .exit_point(RouterId::new(0))
            .exit_cost(IgpCost::new(4))
            .build_unchecked(),
    );
    let remote = exit(2, 2, 0, 7);
    // Both metric 4.
    let candidates = [route(&remote, 0, 4, 1), route(&own, 0, 0, 2)];
    let best = choose_best(SelectionPolicy::RFC1771, &candidates).unwrap();
    assert_eq!(best.exit_id(), ExitPathId::new(1));
}

#[test]
fn rule6_min_learned_from_breaks_ties() {
    let a = exit(1, 1, 0, 5);
    let b = exit(2, 2, 0, 6);
    let candidates = [route(&a, 0, 3, 9), route(&b, 0, 3, 4)];
    let (best, trace) = choose_best_traced(SelectionPolicy::PAPER, &candidates);
    assert_eq!(best.unwrap().exit_id(), ExitPathId::new(2));
    assert_eq!(trace.deciding_rule(), Some(RuleId::TieBreakBgpId));
}

#[test]
fn fallback_breaks_total_ties_on_exit_id() {
    let a = exit(7, 1, 0, 5);
    let b = exit(3, 2, 0, 6);
    // Identical attrs, metric, learnedFrom.
    let candidates = [route(&a, 0, 3, 4), route(&b, 0, 3, 4)];
    let best = choose_best(SelectionPolicy::PAPER, &candidates).unwrap();
    assert_eq!(best.exit_id(), ExitPathId::new(3));
}

#[test]
fn selection_is_deterministic_under_permutation() {
    let a = exit(1, 1, 3, 5);
    let b = exit(2, 1, 3, 6);
    let c = exit(3, 2, 0, 7);
    let rs = [route(&a, 0, 5, 1), route(&b, 0, 2, 2), route(&c, 0, 9, 3)];
    let forward = choose_best(SelectionPolicy::PAPER, &rs);
    let mut rev = rs.to_vec();
    rev.reverse();
    assert_eq!(forward, choose_best(SelectionPolicy::PAPER, &rev));
}

#[test]
fn chosen_route_is_a_member_of_the_input() {
    let a = exit(1, 1, 3, 5);
    let b = exit(2, 2, 1, 6);
    let rs = [route(&a, 0, 5, 1), route(&b, 0, 2, 2)];
    let best = choose_best(SelectionPolicy::PAPER, &rs).unwrap();
    assert!(rs.contains(&best));
}

#[test]
fn choose_set_works_on_bare_exit_paths() {
    let a = exit(1, 1, 5, 1);
    let b = exit(2, 1, 9, 2);
    let c = exit(3, 2, 7, 3);
    let survivors = choose_set(&[a, b, c], MedMode::PerNeighborAs);
    let ids: Vec<_> = survivors.iter().map(|p| p.id()).collect();
    assert_eq!(ids, vec![ExitPathId::new(1), ExitPathId::new(3)]);
}

#[test]
fn choose_set_is_idempotent() {
    let paths = vec![exit(1, 1, 5, 1), exit(2, 1, 9, 2), exit(3, 2, 7, 3)];
    let once = choose_set(&paths, MedMode::PerNeighborAs);
    let twice = choose_set(&once, MedMode::PerNeighborAs);
    assert_eq!(once, twice);
}

#[test]
fn choose_set_monotone_under_superset_containing_survivors() {
    // Lemma 7.4 in miniature: if S' ⊆ P ⊆ S then Choose_set(P) = S'.
    let s: Vec<_> = vec![
        exit(1, 1, 5, 1),
        exit(2, 1, 9, 2),
        exit(3, 2, 7, 3),
        exit(4, 2, 8, 4),
    ];
    let s_prime = choose_set(&s, MedMode::PerNeighborAs);
    // P = S' plus one eliminated path.
    let mut p = s_prime.clone();
    p.push(s[1].clone());
    let again = choose_set(&p, MedMode::PerNeighborAs);
    let mut lhs: Vec<_> = again.iter().map(|x| x.id()).collect();
    let mut rhs: Vec<_> = s_prime.iter().map(|x| x.id()).collect();
    lhs.sort();
    rhs.sort();
    assert_eq!(lhs, rhs);
}

#[test]
fn trace_display_is_readable() {
    let a = exit(1, 1, 0, 5);
    let b = exit(2, 2, 0, 6);
    let (_, trace) = choose_best_traced(
        SelectionPolicy::PAPER,
        &[route(&a, 0, 3, 9), route(&b, 0, 1, 4)],
    );
    let s = trace.to_string();
    assert!(s.starts_with("2 -[local-pref]-> 2"), "{s}");
    assert!(s.contains("min-metric"), "{s}");
}
