//! The BGP decision process: `Choose_best` (Fig 6) and `Choose_set`
//! (Fig 10).
//!
//! §2 of the paper lists six selection rules:
//!
//! 1. highest LOCAL-PREF (degree of preference);
//! 2. minimum AS-PATH length;
//! 3. per-neighboring-AS MED elimination: within each group of routes
//!    sharing a `nextAS`, only those with that group's minimum MED
//!    survive — routes through *different* neighbors are never
//!    MED-compared (the root cause of the oscillations studied);
//! 4. if E-BGP routes remain, the E-BGP route with minimum IGP metric to
//!    the NEXT-HOP wins (E-BGP is preferred over I-BGP outright — the
//!    Cisco/Juniper/Halabi ordering the paper adopts);
//! 5. otherwise the I-BGP route with minimum metric wins;
//! 6. remaining ties break on the minimum `learnedFrom` BGP identifier.
//!
//! [`RuleOrder::MinCostFirst`] swaps the sense of rules 4/5 to the
//! RFC 1771 / Stewart ordering (minimum metric first, E-BGP preference
//! only among metric ties); Fig 1(b) of the paper shows this ordering can
//! diverge even in fully meshed I-BGP.
//!
//! [`choose_set`] is the paper's modification (Fig 10): run rules 1–3
//! only and return the whole survivor set `S^B`; that set is what modified
//! routers advertise, and what Lemma 7.4 proves is a fixed point.
//!
//! Beyond the paper, selection ends with a deterministic fallback on the
//! exit-path identity, so that `choose_best` is a total deterministic
//! function even in configurations where two routes share a `learnedFrom`
//! (the paper assumes identifiers are unique per route).

mod rules;
mod trace;

pub use rules::PathAttrs;
pub use trace::{RuleId, SelectionTrace};

use ibgp_types::Route;
use serde::{Deserialize, Serialize};

/// How MED values are compared (selection rule 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MedMode {
    /// The standard semantics: MEDs are compared only among routes with the
    /// same `nextAS`.
    #[default]
    PerNeighborAs,
    /// Cisco's `bgp always-compare-med`: MEDs are compared across all
    /// routes regardless of neighbor — one of the §1 workarounds.
    AlwaysCompare,
    /// MEDs are ignored entirely (the "disallow MEDs" guideline).
    Ignore,
}

/// The relative order of the E-BGP-preference and IGP-metric rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RuleOrder {
    /// The paper's ordering (§2, footnote 4): E-BGP routes beat I-BGP
    /// routes outright; the IGP metric only compares within the preferred
    /// class. Matches Cisco/Juniper and Halabi.
    #[default]
    PreferEbgp,
    /// The RFC 1771 / Stewart ordering: minimum IGP metric first over all
    /// routes, E-BGP preferred only among metric ties. §3 shows this
    /// ordering diverges on Fig 1(b) even without route reflection.
    MinCostFirst,
}

/// A complete route-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SelectionPolicy {
    /// MED comparison semantics.
    pub med_mode: MedMode,
    /// Rule 4/5 ordering.
    pub rule_order: RuleOrder,
}

impl SelectionPolicy {
    /// The paper's default policy: per-neighbor MED, E-BGP preferred.
    pub const PAPER: SelectionPolicy = SelectionPolicy {
        med_mode: MedMode::PerNeighborAs,
        rule_order: RuleOrder::PreferEbgp,
    };

    /// The RFC 1771-style ordering used in Fig 1(b)'s divergence argument.
    pub const RFC1771: SelectionPolicy = SelectionPolicy {
        med_mode: MedMode::PerNeighborAs,
        rule_order: RuleOrder::MinCostFirst,
    };

    /// `always-compare-med` with the paper's rule ordering.
    pub const ALWAYS_COMPARE_MED: SelectionPolicy = SelectionPolicy {
        med_mode: MedMode::AlwaysCompare,
        rule_order: RuleOrder::PreferEbgp,
    };
}

/// Rules 1–3 of the decision process over any attribute-bearing path type:
/// the `Choose_set` procedure of Fig 10. Returns the survivors in input
/// order. This is what a modified-protocol router advertises.
pub fn choose_set<T: PathAttrs + Clone>(paths: &[T], med_mode: MedMode) -> Vec<T> {
    let mut set: Vec<T> = paths.to_vec();
    rules::keep_max_local_pref(&mut set);
    rules::keep_min_as_path_len(&mut set);
    match med_mode {
        MedMode::PerNeighborAs => rules::keep_min_med_per_as(&mut set),
        MedMode::AlwaysCompare => rules::keep_min_med_global(&mut set),
        MedMode::Ignore => {}
    }
    set
}

/// The full decision process `best_v(S) = Choose_best(v, S)` (Fig 6).
///
/// Returns `None` for an empty candidate set. The node context is already
/// baked into each [`Route`] (its metric and E-BGP/I-BGP kind).
///
/// ```
/// use ibgp_proto::{choose_best, SelectionPolicy};
/// use ibgp_types::*;
/// use std::sync::Arc;
///
/// // Two routes through the same neighbor AS: the lower MED wins (rule 3)
/// // even though it is farther away.
/// let near = Arc::new(ExitPath::builder(ExitPathId::new(1))
///     .via(AsId::new(7)).med(Med::new(10))
///     .exit_point(RouterId::new(1)).build_unchecked());
/// let far = Arc::new(ExitPath::builder(ExitPathId::new(2))
///     .via(AsId::new(7)).med(Med::new(0))
///     .exit_point(RouterId::new(2)).build_unchecked());
/// let at = RouterId::new(0);
/// let candidates = [
///     Route::new(near, at, IgpCost::new(1), BgpId::new(1)),
///     Route::new(far, at, IgpCost::new(9), BgpId::new(2)),
/// ];
/// let best = choose_best(SelectionPolicy::PAPER, &candidates).unwrap();
/// assert_eq!(best.exit_id(), ExitPathId::new(2));
/// ```
pub fn choose_best(policy: SelectionPolicy, routes: &[Route]) -> Option<Route> {
    choose_best_traced(policy, routes).0
}

/// [`choose_best`] with a per-rule narrowing trace, for debugging and for
/// tests that pin down *which* rule decided.
pub fn choose_best_traced(
    policy: SelectionPolicy,
    routes: &[Route],
) -> (Option<Route>, SelectionTrace) {
    let mut trace = SelectionTrace::new(routes.len());
    let mut set: Vec<Route> = routes.to_vec();
    if set.is_empty() {
        return (None, trace);
    }

    rules::keep_max_local_pref(&mut set);
    trace.record(RuleId::LocalPref, set.len());

    rules::keep_min_as_path_len(&mut set);
    trace.record(RuleId::AsPathLen, set.len());

    match policy.med_mode {
        MedMode::PerNeighborAs => {
            rules::keep_min_med_per_as(&mut set);
            trace.record(RuleId::MedPerAs, set.len());
        }
        MedMode::AlwaysCompare => {
            rules::keep_min_med_global(&mut set);
            trace.record(RuleId::MedAlways, set.len());
        }
        MedMode::Ignore => {}
    }

    match policy.rule_order {
        RuleOrder::PreferEbgp => {
            if set.iter().any(Route::is_ebgp) {
                set.retain(Route::is_ebgp);
                trace.record(RuleId::PreferEbgp, set.len());
            }
            rules::keep_min_metric(&mut set);
            trace.record(RuleId::MinMetric, set.len());
        }
        RuleOrder::MinCostFirst => {
            rules::keep_min_metric(&mut set);
            trace.record(RuleId::MinMetric, set.len());
            if set.iter().any(Route::is_ebgp) {
                set.retain(Route::is_ebgp);
                trace.record(RuleId::PreferEbgp, set.len());
            }
        }
    }

    rules::keep_min_learned_from(&mut set);
    trace.record(RuleId::TieBreakBgpId, set.len());

    // Deterministic fallback beyond the paper: break any residual tie on
    // exit-path identity.
    let winner = set
        .into_iter()
        .min_by_key(|r| r.exit_id())
        .expect("non-empty by construction");
    trace.record(RuleId::TieBreakExitId, 1);
    (Some(winner), trace)
}

#[cfg(test)]
mod tests;
