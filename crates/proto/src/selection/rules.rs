//! The individual narrowing rules of the decision process.
//!
//! Each rule filters a candidate vector in place, preserving input order.
//! Rules 1–3 are generic over [`PathAttrs`] so they apply both to
//! [`Route`]s (full `Choose_best`) and to bare exit paths (`Choose_set`,
//! which runs before any node-specific metric exists).

use ibgp_types::{AsId, ExitPath, ExitPathRef, LocalPref, Med, Route};
use std::collections::HashMap;

/// The exit-path attributes consulted by rules 1–3.
pub trait PathAttrs {
    /// `localPref(p)` — rule 1.
    fn local_pref(&self) -> LocalPref;
    /// `AS-path-length(p)` — rule 2.
    fn as_path_length(&self) -> usize;
    /// `nextAS(p)` — the MED comparison group of rule 3.
    fn next_as(&self) -> AsId;
    /// `MED(p)` — rule 3.
    fn med(&self) -> Med;
}

impl PathAttrs for ExitPath {
    fn local_pref(&self) -> LocalPref {
        ExitPath::local_pref(self)
    }
    fn as_path_length(&self) -> usize {
        ExitPath::as_path_length(self)
    }
    fn next_as(&self) -> AsId {
        ExitPath::next_as(self)
    }
    fn med(&self) -> Med {
        ExitPath::med(self)
    }
}

impl PathAttrs for ExitPathRef {
    fn local_pref(&self) -> LocalPref {
        ExitPath::local_pref(self)
    }
    fn as_path_length(&self) -> usize {
        ExitPath::as_path_length(self)
    }
    fn next_as(&self) -> AsId {
        ExitPath::next_as(self)
    }
    fn med(&self) -> Med {
        ExitPath::med(self)
    }
}

impl PathAttrs for Route {
    fn local_pref(&self) -> LocalPref {
        Route::local_pref(self)
    }
    fn as_path_length(&self) -> usize {
        Route::as_path_length(self)
    }
    fn next_as(&self) -> AsId {
        Route::next_as(self)
    }
    fn med(&self) -> Med {
        Route::med(self)
    }
}

/// Rule 1: keep only the routes with the highest degree of preference.
pub(crate) fn keep_max_local_pref<T: PathAttrs>(set: &mut Vec<T>) {
    if let Some(best) = set.iter().map(PathAttrs::local_pref).max() {
        set.retain(|p| p.local_pref() == best);
    }
}

/// Rule 2: keep only the routes with the minimum AS-PATH length.
pub(crate) fn keep_min_as_path_len<T: PathAttrs>(set: &mut Vec<T>) {
    if let Some(best) = set.iter().map(PathAttrs::as_path_length).min() {
        set.retain(|p| p.as_path_length() == best);
    }
}

/// Rule 3, standard semantics: within each `nextAS` group, keep only the
/// routes with that group's minimum MED. Routes through different
/// neighboring ASes are not compared — several groups survive side by
/// side, which is exactly how a route's presence can "hide" another.
pub(crate) fn keep_min_med_per_as<T: PathAttrs>(set: &mut Vec<T>) {
    let mut group_min: HashMap<AsId, Med> = HashMap::new();
    for p in set.iter() {
        group_min
            .entry(p.next_as())
            .and_modify(|m| *m = (*m).min(p.med()))
            .or_insert_with(|| p.med());
    }
    set.retain(|p| p.med() == group_min[&p.next_as()]);
}

/// Rule 3, `always-compare-med`: keep the global minimum MED regardless of
/// neighbor.
pub(crate) fn keep_min_med_global<T: PathAttrs>(set: &mut Vec<T>) {
    if let Some(best) = set.iter().map(PathAttrs::med).min() {
        set.retain(|p| p.med() == best);
    }
}

/// Rules 4/5 metric comparison: keep only the minimum-metric routes
/// (IGP cost to the exit point plus exit cost).
pub(crate) fn keep_min_metric(set: &mut Vec<Route>) {
    if let Some(best) = set.iter().map(Route::metric).min() {
        set.retain(|r| r.metric() == best);
    }
}

/// Rule 6: keep only the routes learned from the minimum BGP identifier.
pub(crate) fn keep_min_learned_from(set: &mut Vec<Route>) {
    if let Some(best) = set.iter().map(Route::learned_from).min() {
        set.retain(|r| r.learned_from() == best);
    }
}
