//! Message-level reflection mechanics: ORIGINATOR_ID, CLUSTER_LIST,
//! SSLD, and the reflect-to-whom matrix (RFC 4456).
//!
//! The paper's `Transfer_{v→u}` relation ([`crate::transfer`]) is a
//! *global* predicate on `(v, u, exitPoint(p))`: it decides
//! admissibility from the cluster partition alone and idealizes away the
//! per-message loop-prevention state real reflectors carry. This module
//! supplies that state:
//!
//! * **ORIGINATOR_ID** — on the exit-path abstraction the originator of
//!   `p` *is* `exitPoint(p)` (the router that learned `p` over E-BGP),
//!   so the attribute needs no storage; it is derivable everywhere.
//! * **SSLD** (sender-side loop detection) — never send a route back to
//!   its originator: `exitPoint(p) ≠ u`.
//! * **CLUSTER_LIST** — each reflector prepends its cluster id when it
//!   reflects a learned route; a receiver drops any route whose wire
//!   cluster list already contains its own cluster id. Per cbgp's
//!   default, a router's cluster id is its router id, so the list is a
//!   `Vec<RouterId>`.
//! * **The reflect-to-whom matrix** — a route learned from a *client*
//!   (or over E-BGP) is reflected to everyone; a route learned from a
//!   *non-client* goes to clients only. Unlike `Transfer`, the matrix
//!   keys on *whom the copy was learned from*, not on where it exits,
//!   which is exactly what makes the two relations diverge on
//!   multi-reflector clusters and non-tree session graphs.
//!
//! [`reflect_allowed`] is the send-side gate, [`stamp_cluster_list`] the
//! send-side stamping, and [`cluster_loop`] the receive-side drop test.
//! `ibgp-sim`'s synchronous engine wires them together behind its
//! `loop_prevention` switch; with the switch off the engine runs the
//! paper's `Transfer` relation unchanged.

use ibgp_topology::Topology;
use ibgp_types::RouterId;

/// The per-route reflection attributes a router stores alongside a
/// learned exit path.
///
/// `from` is the I-BGP peer the stored copy was learned from (`None`
/// when the route is the router's own E-BGP route); `cluster_list` is
/// the CLUSTER_LIST as received on the wire. ORIGINATOR_ID is not
/// stored: it is always `exitPoint(p)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RrAttrs {
    /// The announcing I-BGP peer (`None` = learned over E-BGP).
    pub from: Option<RouterId>,
    /// CLUSTER_LIST as received (nearest reflector first).
    pub cluster_list: Vec<RouterId>,
}

impl RrAttrs {
    /// Attributes of a router's own E-BGP route: no announcing peer, an
    /// empty cluster list.
    pub fn own() -> RrAttrs {
        RrAttrs::default()
    }

    /// Attributes as learned from I-BGP peer `from` with wire cluster
    /// list `cluster_list`.
    pub fn learned(from: RouterId, cluster_list: Vec<RouterId>) -> RrAttrs {
        RrAttrs {
            from: Some(from),
            cluster_list,
        }
    }
}

/// Whether `v` may send exit path `p` to `u` under message-level
/// reflection, given `exitPoint(p)` and the peer `v` learned its copy
/// from (`None` = `v`'s own E-BGP route).
///
/// The conjunction of:
/// 1. `vu` is an I-BGP session (and `v ≠ u`);
/// 2. SSLD: `exitPoint(p) ≠ u` — never send a route back to its
///    originator;
/// 3. the reflect-to-whom matrix:
///    * `v`'s own E-BGP route (`exitPoint(p) = v`) → everyone;
///    * learned route, `v` has clients (is a reflector):
///      * learned from one of `v`'s clients → everyone;
///      * learned from a non-client → `v`'s clients only;
///    * learned route, `v` has no clients → no one (the classic I-BGP
///      no-re-advertise rule).
pub fn reflect_allowed(
    topo: &Topology,
    v: RouterId,
    u: RouterId,
    exit_point: RouterId,
    learned_from: Option<RouterId>,
) -> bool {
    if v == u || !topo.ibgp().is_session(v, u) {
        return false;
    }
    // SSLD: the originator of p is exitPoint(p).
    if exit_point == u {
        return false;
    }
    // v's own E-BGP route goes to every peer.
    if exit_point == v {
        return true;
    }
    let ibgp = topo.ibgp();
    if !ibgp.reflects(v) {
        return false;
    }
    match learned_from {
        // Learned from a client: reflect to everyone.
        Some(w) if ibgp.client_edge(v, w) => true,
        // Learned from a non-client: reflect to clients only.
        _ => ibgp.client_edge(v, u),
    }
}

/// The CLUSTER_LIST `v` puts on the wire when sending a route whose
/// stored copy carries `stored` and exits at `exit_point`.
///
/// `v`'s own E-BGP routes carry an empty list; when reflecting a learned
/// route, `v` prepends its own cluster id (= its router id).
pub fn stamp_cluster_list(v: RouterId, exit_point: RouterId, stored: &[RouterId]) -> Vec<RouterId> {
    if exit_point == v {
        return Vec::new();
    }
    let mut wire = Vec::with_capacity(stored.len() + 1);
    wire.push(v);
    wire.extend_from_slice(stored);
    wire
}

/// Receive-side cluster-loop detection at `u`: drop the route if `u`'s
/// cluster id (= its router id) already appears in the wire CLUSTER_LIST.
pub fn cluster_loop(u: RouterId, wire: &[RouterId]) -> bool {
    wire.contains(&u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    /// Two clusters: {RR0; clients 1,2} and {RR3; client 4}.
    fn topo() -> Topology {
        TopologyBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 4, 1)
            .cluster([0], [1, 2])
            .cluster([3], [4])
            .build()
            .unwrap()
    }

    #[test]
    fn own_ebgp_route_goes_to_everyone() {
        let t = topo();
        assert!(reflect_allowed(&t, r(0), r(1), r(0), None));
        assert!(reflect_allowed(&t, r(0), r(3), r(0), None));
        assert!(reflect_allowed(&t, r(1), r(0), r(1), None));
    }

    #[test]
    fn ssld_blocks_the_originator() {
        let t = topo();
        // RR0 must not send client 1's route back to client 1, no matter
        // where it was learned from.
        assert!(!reflect_allowed(&t, r(0), r(1), r(1), Some(r(1))));
        assert!(!reflect_allowed(&t, r(0), r(1), r(1), Some(r(3))));
    }

    #[test]
    fn client_route_is_reflected_everywhere() {
        let t = topo();
        // RR0 learned client 1's route from client 1: to RR3 and client 2.
        assert!(reflect_allowed(&t, r(0), r(3), r(1), Some(r(1))));
        assert!(reflect_allowed(&t, r(0), r(2), r(1), Some(r(1))));
    }

    #[test]
    fn non_client_route_goes_to_clients_only() {
        let t = topo();
        // RR0 learned RR3's route from RR3: clients yes, peers no.
        assert!(reflect_allowed(&t, r(0), r(1), r(3), Some(r(3))));
        assert!(!reflect_allowed(&t, r(0), r(3), r(3), Some(r(3))));
    }

    #[test]
    fn the_from_peer_decides_not_the_exit_point() {
        let t = topo();
        // Same exit point (client 1), but the copy was learned from RR3:
        // a non-client route, so clients only. Transfer_{v→u} would have
        // said yes here (case 2 keys on the exit point).
        assert!(!reflect_allowed(&t, r(0), r(3), r(1), Some(r(3))));
        assert!(reflect_allowed(&t, r(0), r(2), r(1), Some(r(3))));
    }

    #[test]
    fn clients_never_forward_learned_routes() {
        let t = topo();
        assert!(!reflect_allowed(&t, r(1), r(0), r(0), Some(r(0))));
        assert!(!reflect_allowed(&t, r(1), r(0), r(4), Some(r(0))));
    }

    #[test]
    fn no_session_no_send() {
        let t = topo();
        assert!(!reflect_allowed(&t, r(1), r(4), r(1), None));
        assert!(!reflect_allowed(&t, r(0), r(0), r(0), None));
    }

    #[test]
    fn full_mesh_sends_only_own_routes() {
        let t = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        assert!(reflect_allowed(&t, r(0), r(1), r(0), None));
        assert!(!reflect_allowed(&t, r(0), r(1), r(2), Some(r(2))));
    }

    #[test]
    fn stamping_prepends_the_reflector() {
        assert_eq!(stamp_cluster_list(r(0), r(0), &[]), Vec::<RouterId>::new());
        assert_eq!(stamp_cluster_list(r(0), r(1), &[]), vec![r(0)]);
        assert_eq!(
            stamp_cluster_list(r(3), r(1), &[r(0)]),
            vec![r(3), r(0)],
        );
    }

    #[test]
    fn cluster_loop_detects_own_id() {
        assert!(cluster_loop(r(0), &[r(3), r(0)]));
        assert!(!cluster_loop(r(1), &[r(3), r(0)]));
        assert!(!cluster_loop(r(1), &[]));
    }
}
