//! The Walton et al. advertisement vector (§8).
//!
//! Under this proposal, a route reflector computes — for each neighboring
//! AS it has a route through — its best route through that AS, and
//! advertises it alongside (or instead of) the single overall best,
//! provided it has the same LOCAL-PREF and AS-PATH length as the overall
//! best route. With `m` neighboring ASes a reflector announces at most `m`
//! routes.
//!
//! §8 of the paper exhibits a configuration (Fig 13) where this still
//! oscillates persistently, and a routing-loop configuration (Fig 14) it
//! does not repair, motivating the stronger `Choose_set` advertisement.

use crate::selection::{choose_best, SelectionPolicy};
use ibgp_types::{AsId, ExitPathRef, Route};
use std::collections::BTreeMap;

/// Compute the set of exit paths a Walton-modified reflector advertises,
/// given the routes it currently considers (its `PossibleExits`
/// contextualized at the node).
///
/// Returns the union over neighboring ASes of the best route through that
/// AS, filtered to those matching the overall best route's LOCAL-PREF and
/// AS-PATH length; sorted by exit-path id for determinism. Empty input
/// yields an empty advertisement.
pub fn walton_advertised_set(policy: SelectionPolicy, routes: &[Route]) -> Vec<ExitPathRef> {
    let Some(overall) = choose_best(policy, routes) else {
        return Vec::new();
    };
    let mut groups: BTreeMap<AsId, Vec<Route>> = BTreeMap::new();
    for r in routes {
        groups.entry(r.next_as()).or_default().push(r.clone());
    }
    let mut out: Vec<ExitPathRef> = Vec::new();
    for (_as_id, group) in groups {
        let Some(best) = choose_best(policy, &group) else {
            continue;
        };
        if best.local_pref() == overall.local_pref()
            && best.as_path_length() == overall.as_path_length()
        {
            out.push(best.exit().clone());
        }
    }
    out.sort_by_key(|p| p.id());
    out.dedup_by_key(|p| p.id());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_types::{BgpId, ExitPath, ExitPathId, IgpCost, LocalPref, Med, RouterId};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, lp: u32, len: usize) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via_with_length(AsId::new(next_as), len)
                .med(Med::new(med))
                .local_pref(LocalPref::new(lp))
                .exit_point(RouterId::new(id))
                .build_unchecked(),
        )
    }

    fn route(p: &ExitPathRef, igp: u64) -> Route {
        Route::new(
            p.clone(),
            RouterId::new(99),
            IgpCost::new(igp),
            BgpId::new(p.id().raw()),
        )
    }

    #[test]
    fn one_route_per_neighbor_as() {
        // AS1: two routes, meds 5 and 10 -> best is med 5.
        // AS2: one route.
        let a = exit(1, 1, 5, 100, 1);
        let b = exit(2, 1, 10, 100, 1);
        let c = exit(3, 2, 0, 100, 1);
        let routes = [route(&a, 10), route(&b, 1), route(&c, 5)];
        let adv = walton_advertised_set(SelectionPolicy::PAPER, &routes);
        let ids: Vec<_> = adv.iter().map(|p| p.id().raw()).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn per_as_bests_with_worse_local_pref_are_suppressed() {
        let a = exit(1, 1, 0, 200, 1); // overall best (higher LOCAL-PREF)
        let b = exit(2, 2, 0, 100, 1); // AS2's best, but lower LOCAL-PREF
        let routes = [route(&a, 10), route(&b, 1)];
        let adv = walton_advertised_set(SelectionPolicy::PAPER, &routes);
        let ids: Vec<_> = adv.iter().map(|p| p.id().raw()).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn per_as_bests_with_longer_paths_are_suppressed() {
        let a = exit(1, 1, 0, 100, 1);
        let b = exit(2, 2, 0, 100, 2); // longer AS-PATH
        let routes = [route(&a, 10), route(&b, 1)];
        let adv = walton_advertised_set(SelectionPolicy::PAPER, &routes);
        let ids: Vec<_> = adv.iter().map(|p| p.id().raw()).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn single_neighbor_as_degenerates_to_classical_behaviour() {
        // With one neighboring AS the vector is exactly {overall best} —
        // the reason Walton cannot help on Fig 2 (§3).
        let a = exit(1, 1, 0, 100, 1);
        let b = exit(2, 1, 0, 100, 1);
        let routes = [route(&a, 5), route(&b, 1)];
        let adv = walton_advertised_set(SelectionPolicy::PAPER, &routes);
        assert_eq!(adv.len(), 1);
        assert_eq!(adv[0].id().raw(), 2); // min metric
    }

    #[test]
    fn empty_input_advertises_nothing() {
        assert!(walton_advertised_set(SelectionPolicy::PAPER, &[]).is_empty());
    }

    #[test]
    fn output_is_sorted_and_deduped() {
        let a = exit(5, 1, 0, 100, 1);
        let b = exit(3, 2, 0, 100, 1);
        let routes = [route(&a, 1), route(&b, 1)];
        let adv = walton_advertised_set(SelectionPolicy::PAPER, &routes);
        let ids: Vec<_> = adv.iter().map(|p| p.id().raw()).collect();
        assert_eq!(ids, vec![3, 5]);
    }
}
