//! The `level_p(u)` stratification of §7 (Fig 11).
//!
//! For an exit path `p` with `exitPoint(p) = v ∈ C_i`, every node `u` gets
//! a level describing how far `p` must propagate to reach it:
//!
//! * `0` — `u = v` (the exit point itself);
//! * `1` — `u ∈ R_i`, `u ≠ v` (reflectors of the exit's own cluster);
//! * `2` — `u ∈ N_i`, `u ≠ v` (other clients of the cluster), or
//!   `u ∈ R_j`, `j ≠ i` (reflectors of other clusters);
//! * `3` — `u ∈ N_j`, `j ≠ i` (clients of other clusters).
//!
//! Lemma 7.1 states that `Transfer_{w→u}` never moves `p` from a
//! higher-or-equal level to a lower-or-equal one — announcements flow
//! strictly *down* the level order — which drives both the flush lemma
//! (7.2) and the propagation lemma (7.3). Our property tests check these
//! against the implementation in [`crate::transfer`].

use ibgp_topology::Topology;
use ibgp_types::RouterId;

/// `level_p(u)` where `exit_point = exitPoint(p)`.
pub fn level(topo: &Topology, exit_point: RouterId, u: RouterId) -> u8 {
    if u == exit_point {
        return 0;
    }
    let ibgp = topo.ibgp();
    let same_cluster = ibgp.same_cluster(u, exit_point);
    match (ibgp.is_reflector(u), same_cluster) {
        (true, true) => 1,
        (false, true) => 2,
        (true, false) => 2,
        (false, false) => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::transfer_allowed;
    use ibgp_topology::TopologyBuilder;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    /// Two clusters: {RR0; clients 1,2} and {RR3, RR4; client 5}.
    fn topo() -> Topology {
        TopologyBuilder::new(6)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 4, 1)
            .link(4, 5, 1)
            .cluster([0], [1, 2])
            .cluster([3, 4], [5])
            .build()
            .unwrap()
    }

    #[test]
    fn levels_match_figure_11() {
        let t = topo();
        // Exit at client 1 of cluster 0.
        let v = r(1);
        assert_eq!(level(&t, v, r(1)), 0);
        assert_eq!(level(&t, v, r(0)), 1); // reflector, same cluster
        assert_eq!(level(&t, v, r(2)), 2); // other client, same cluster
        assert_eq!(level(&t, v, r(3)), 2); // reflector, other cluster
        assert_eq!(level(&t, v, r(4)), 2);
        assert_eq!(level(&t, v, r(5)), 3); // client, other cluster
    }

    #[test]
    fn exit_at_reflector_levels() {
        let t = topo();
        let v = r(0);
        assert_eq!(level(&t, v, r(0)), 0);
        assert_eq!(level(&t, v, r(1)), 2); // client of same cluster
        assert_eq!(level(&t, v, r(3)), 2); // reflector elsewhere
        assert_eq!(level(&t, v, r(5)), 3);
    }

    #[test]
    fn lemma_7_1_transfers_strictly_decrease_receiving_level() {
        // If level_p(w) >= level_p(u) ... wait, Lemma 7.1: if
        // level_p(u) >= level_p(w) then p ∉ Transfer_{u→w}: announcements
        // only flow from lower-level nodes to higher-level ones.
        let t = topo();
        let n = t.len() as u32;
        for exit in 0..n {
            for u in 0..n {
                for w in 0..n {
                    if u == w {
                        continue;
                    }
                    let (lu, lw) = (level(&t, r(exit), r(u)), level(&t, r(exit), r(w)));
                    if lu >= lw {
                        assert!(
                            !transfer_allowed(&t, r(u), r(w), r(exit)),
                            "exit {exit}: transfer {u}(lvl {lu}) -> {w}(lvl {lw}) must be blocked"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_nonzero_level_has_a_lower_level_announcer() {
        // Lemma 7.3: for every node u with level h > 0 there is some w with
        // level < h allowed to transfer p to u.
        let t = topo();
        let n = t.len() as u32;
        for exit in 0..n {
            for u in 0..n {
                let lu = level(&t, r(exit), r(u));
                if lu == 0 {
                    continue;
                }
                let found = (0..n).any(|w| {
                    w != u
                        && level(&t, r(exit), r(w)) < lu
                        && transfer_allowed(&t, r(w), r(u), r(exit))
                });
                assert!(found, "exit {exit}: node {u} (level {lu}) has no announcer");
            }
        }
    }
}
