//! Contextualizing exit paths at nodes: the `route(p, u)` function of §4.
//!
//! A route's `learnedFrom` attribute depends on *how* the node heard about
//! the exit path: for E-BGP routes it is the external peer's BGP
//! identifier; for I-BGP routes it is the announcing I-BGP neighbor's. In
//! the paper's synchronous model a node may hear the same exit path from
//! several neighbors in one activation; [`derive_learned_from`] resolves
//! that deterministically to the minimum announcing identifier (the most
//! preferred under rule 6, so the choice can never *worsen* a route's
//! standing and keeps the model deterministic).

use ibgp_topology::Topology;
use ibgp_types::{BgpId, ExitPathRef, Route, RouterId};

/// Build `route(p, u)`: the exit path `p` as seen from node `u`, with its
/// IGP metric from the topology's SPF table and the given `learnedFrom`.
pub fn route_at(topo: &Topology, u: RouterId, p: &ExitPathRef, learned_from: BgpId) -> Route {
    let igp = topo.igp_cost(u, p.exit_point());
    Route::new(p.clone(), u, igp, learned_from)
}

/// Resolve the `learnedFrom` identifier for exit path `p` at node `u`.
///
/// * If `u` is the exit point, the route is E-BGP-learned: the external
///   peer's BGP identifier (from the NEXT-HOP) is used.
/// * Otherwise the minimum BGP identifier among the I-BGP neighbors that
///   announced it (`senders`) is used; `None` if nobody announced it.
pub fn derive_learned_from(
    topo: &Topology,
    u: RouterId,
    p: &ExitPathRef,
    senders: impl IntoIterator<Item = RouterId>,
) -> Option<BgpId> {
    if p.exit_point() == u {
        return Some(p.next_hop().bgp_id());
    }
    senders.into_iter().map(|v| topo.bgp_id(v)).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, ExitPathId, IgpCost, NextHop};
    use std::sync::Arc;

    fn topo() -> Topology {
        TopologyBuilder::new(3)
            .link(0, 1, 2)
            .link(1, 2, 3)
            .full_mesh()
            .build()
            .unwrap()
    }

    fn path_at(exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(1))
                .via(AsId::new(1))
                .exit_point(RouterId::new(exit_point))
                .exit_cost(IgpCost::new(1))
                .next_hop(NextHop::new(99, BgpId::new(77)))
                .build_unchecked(),
        )
    }

    #[test]
    fn route_at_uses_spf_metric() {
        let t = topo();
        let p = path_at(2);
        let r = route_at(&t, RouterId::new(0), &p, BgpId::new(1));
        // SPF 0->2 = 5, plus exit cost 1.
        assert_eq!(r.metric(), IgpCost::new(6));
        assert_eq!(r.node(), RouterId::new(0));
    }

    #[test]
    fn learned_from_at_exit_point_is_external_peer() {
        let t = topo();
        let p = path_at(0);
        let lf = derive_learned_from(&t, RouterId::new(0), &p, []).unwrap();
        assert_eq!(lf, BgpId::new(77));
    }

    #[test]
    fn learned_from_over_ibgp_is_min_sender() {
        let t = topo();
        let p = path_at(0);
        let lf = derive_learned_from(
            &t,
            RouterId::new(2),
            &p,
            [RouterId::new(1), RouterId::new(0)],
        )
        .unwrap();
        assert_eq!(lf, t.bgp_id(RouterId::new(0)));
    }

    #[test]
    fn no_senders_means_no_route() {
        let t = topo();
        let p = path_at(0);
        assert_eq!(derive_learned_from(&t, RouterId::new(2), &p, []), None);
    }
}
