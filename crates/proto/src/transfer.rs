//! The `Transfer_{v→u}` announcement relation (§4).
//!
//! For a set `P` of exit paths known at `v`, `Transfer_{v→u}(P)` is the
//! subset `v` is allowed to announce to `u`. `p ∈ Transfer_{v→u}(P)` iff
//! `vu ∈ E_I` and one of:
//!
//! 1. `exitPoint(p) = v` — `v` learned the route over E-BGP itself;
//! 2. `v ∈ R_i`, `u ∈ R_j`, `i ≠ j`, and `exitPoint(p) ∈ N_i` — reflectors
//!    pass routes originated by *their own clients* to other reflectors;
//! 3. `v ∈ R_i`, `u ∈ N_i`, and `exitPoint(p) ≠ u` — reflectors pass
//!    everything to their clients, except routes the client itself
//!    originated (loop prevention).
//!
//! These three cases encode standard route-reflector behaviour on the
//! paper's exit-path abstraction: a client announces only its own E-BGP
//! routes; a reflector reflects client routes everywhere and non-client
//! routes only downward.

use ibgp_topology::Topology;
use ibgp_types::{ExitPathRef, RouterId};

/// Whether `v` may announce exit path `p` to `u` (given `vu ∈ E_I`).
pub fn transfer_allowed(topo: &Topology, v: RouterId, u: RouterId, exit_point: RouterId) -> bool {
    if v == u || !topo.ibgp().is_session(v, u) {
        return false;
    }
    // Case 1: v's own E-BGP route.
    if exit_point == v {
        return true;
    }
    let ibgp = topo.ibgp();
    let v_is_reflector = ibgp.is_reflector(v);
    // Case 2: reflector -> reflector in a different cluster, route
    // originated by one of v's clients.
    if v_is_reflector
        && ibgp.is_reflector(u)
        && !ibgp.same_cluster(v, u)
        && ibgp.is_client(exit_point)
        && ibgp.same_cluster(exit_point, v)
    {
        return true;
    }
    // Case 3: reflector -> its own client, any route not originated by
    // that client.
    if v_is_reflector && ibgp.is_client(u) && ibgp.same_cluster(v, u) && exit_point != u {
        return true;
    }
    false
}

/// `Transfer_{v→u}(P)`: filter an advertised set down to what `u` may
/// receive from `v`. Preserves input order.
pub fn transfer_set(
    topo: &Topology,
    v: RouterId,
    u: RouterId,
    paths: &[ExitPathRef],
) -> Vec<ExitPathRef> {
    paths
        .iter()
        .filter(|p| transfer_allowed(topo, v, u, p.exit_point()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, ExitPathId};
    use std::sync::Arc;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    /// Two clusters: {RR0; clients 1,2} and {RR3; client 4}; ring topology
    /// for physical connectivity.
    fn topo() -> Topology {
        TopologyBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 4, 1)
            .cluster([0], [1, 2])
            .cluster([3], [4])
            .build()
            .unwrap()
    }

    fn path(id: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(1))
                .exit_point(r(exit_point))
                .build_unchecked(),
        )
    }

    #[test]
    fn case1_own_exit_goes_to_any_peer() {
        let t = topo();
        // Client 1 announces its own exit to its reflector 0.
        assert!(transfer_allowed(&t, r(1), r(0), r(1)));
        // Reflector 0 announces its own exit to reflector 3 and client 1.
        assert!(transfer_allowed(&t, r(0), r(3), r(0)));
        assert!(transfer_allowed(&t, r(0), r(1), r(0)));
    }

    #[test]
    fn no_transfer_without_session() {
        let t = topo();
        // Clients 1 and 4 are in different clusters: no session, no transfer.
        assert!(!transfer_allowed(&t, r(1), r(4), r(1)));
        // Client 1 to foreign reflector 3: no session.
        assert!(!transfer_allowed(&t, r(1), r(3), r(1)));
    }

    #[test]
    fn client_does_not_forward_foreign_exits() {
        let t = topo();
        // Client 1 knows an exit at reflector 0 but must not re-announce it.
        assert!(!transfer_allowed(&t, r(1), r(0), r(0)));
    }

    #[test]
    fn case2_reflector_passes_client_routes_to_other_reflectors() {
        let t = topo();
        // RR0 passes client 1's exit to RR3.
        assert!(transfer_allowed(&t, r(0), r(3), r(1)));
        // But not an exit originated at the *other* reflector (non-client).
        assert!(!transfer_allowed(&t, r(0), r(3), r(3)));
        // Nor a client of the destination's own cluster (4 is RR3's client).
        assert!(!transfer_allowed(&t, r(0), r(3), r(4)));
    }

    #[test]
    fn case3_reflector_passes_everything_to_clients_except_their_own() {
        let t = topo();
        // RR0 -> client 1: exits from RR3, client 4, client 2 all pass.
        assert!(transfer_allowed(&t, r(0), r(1), r(3)));
        assert!(transfer_allowed(&t, r(0), r(1), r(4)));
        assert!(transfer_allowed(&t, r(0), r(1), r(2)));
        // ...but not the client's own exit (loop prevention).
        assert!(!transfer_allowed(&t, r(0), r(1), r(1)));
    }

    #[test]
    fn reflector_does_not_pass_nonclient_routes_sideways() {
        let t = topo();
        // RR0 heard RR3's client-4 exit; it must not reflect it to RR3
        // (nor could it: case 2 requires the exit to be RR0's client).
        assert!(!transfer_allowed(&t, r(0), r(3), r(4)));
    }

    #[test]
    fn transfer_set_filters_and_preserves_order() {
        let t = topo();
        let paths = vec![path(1, 0), path(2, 1), path(3, 4)];
        // RR0 -> RR3: own exit (case 1) + client exit (case 2); p3 (exit at
        // RR3's client) is dropped.
        let out = transfer_set(&t, r(0), r(3), &paths);
        let ids: Vec<_> = out.iter().map(|p| p.id().raw()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn full_mesh_transfers_only_own_exits() {
        let t = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        assert!(transfer_allowed(&t, r(0), r(1), r(0)));
        // In a full mesh every node is a reflector with no clients: learned
        // routes are never forwarded (classic I-BGP no-re-advertise rule).
        assert!(!transfer_allowed(&t, r(0), r(1), r(2)));
    }

    #[test]
    fn intra_cluster_client_sessions_carry_only_own_exits() {
        let t = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .cluster([0], [1, 2])
            .client_session(1, 2)
            .build()
            .unwrap();
        assert!(transfer_allowed(&t, r(1), r(2), r(1)));
        assert!(!transfer_allowed(&t, r(1), r(2), r(0)));
    }

    #[test]
    fn multi_reflector_cluster_reflects_between_own_reflectors_nothing_special() {
        // Two reflectors in ONE cluster: case 2 requires different clusters,
        // so between them only case 1 applies.
        let t = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .cluster([0, 1], [2])
            .build()
            .unwrap();
        assert!(transfer_allowed(&t, r(0), r(1), r(0)));
        assert!(!transfer_allowed(&t, r(0), r(1), r(2)));
        // Both reflectors serve the client.
        assert!(transfer_allowed(&t, r(0), r(2), r(1)));
        assert!(transfer_allowed(&t, r(1), r(2), r(0)));
    }
}
