//! # ibgp-proto
//!
//! The protocol logic of *Route Oscillations in I-BGP with Route
//! Reflection* (SIGCOMM 2002):
//!
//! * [`selection`] — the six-rule BGP decision process (`Choose_best`,
//!   Fig 6) in the paper's rule ordering, the alternate RFC 1771 / Halabi
//!   ordering that Fig 1(b) shows to be divergent, the Cisco
//!   `always-compare-med` variant, and the paper's `Choose_set` (Fig 10):
//!   the prefix of the decision process that stops right after the MED
//!   rule and whose survivor set the modified protocol advertises.
//! * [`transfer`] — the `Transfer_{v→u}` announcement relation of §4
//!   (who may tell whom about which exit paths under route reflection).
//! * [`reflection`] — message-level ORIGINATOR_ID / CLUSTER_LIST / SSLD
//!   mechanics (RFC 4456), the realistic counterpart `Transfer`
//!   idealizes away; used by the engine's `loop_prevention` switch.
//! * [`walton`] — the per-neighbor-AS advertisement vector of Walton et
//!   al., the baseline §8 shows to be insufficient.
//! * [`variants`] — [`ProtocolVariant`]: which advertisement discipline a
//!   simulation runs.
//! * [`levels`] — the `level_p(u)` stratification (Fig 11) used by the
//!   convergence proof and by our property tests of Lemmas 7.1–7.5.
//!
//! Everything here is pure: functions from typed inputs to typed outputs,
//! no engine state. The simulators in `ibgp-sim` drive these functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod levels;
pub mod reflection;
pub mod routes;
pub mod selection;
pub mod transfer;
pub mod variants;
pub mod walton;

pub use levels::level;
pub use reflection::{cluster_loop, reflect_allowed, stamp_cluster_list, RrAttrs};
pub use routes::{derive_learned_from, route_at};
pub use selection::{
    choose_best, choose_best_traced, choose_set, MedMode, RuleId, RuleOrder, SelectionPolicy,
    SelectionTrace,
};
pub use transfer::{transfer_allowed, transfer_set};
pub use variants::ProtocolVariant;
pub use walton::walton_advertised_set;
