//! Protocol variants: which advertisement discipline a router follows.
//!
//! All variants share the same `Transfer` announcement constraints and the
//! same final best-route computation; they differ in **what set of exit
//! paths a router offers its peers**:
//!
//! * [`ProtocolVariant::Standard`] — classic I-BGP: the single best
//!   route's exit path.
//! * [`ProtocolVariant::Walton`] — the Walton et al. proposal (§8): a
//!   reflector advertises, for each neighboring AS, its best route through
//!   that AS, provided it matches the overall best route's LOCAL-PREF and
//!   AS-PATH length. Shown insufficient by the paper (Fig 13).
//! * [`ProtocolVariant::Modified`] — the paper's contribution (§6): the
//!   whole `Choose_set` survivor set (rules 1–3), which provably makes the
//!   protocol converge to a unique fixed point.
//!
//! The selection policy (MED mode, rule order) is carried alongside so a
//! variant can be combined with e.g. `always-compare-med`.

use crate::selection::SelectionPolicy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The advertisement discipline of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProtocolVariant {
    /// Classic I-BGP with route reflection: advertise only the best route.
    #[default]
    Standard,
    /// Walton et al.: reflectors advertise the per-neighbor-AS best-route
    /// vector (clients behave classically).
    Walton,
    /// The paper's modified protocol: advertise all `Choose_set` survivors.
    Modified,
}

impl ProtocolVariant {
    /// All variants, for sweep-style experiments.
    pub const ALL: [ProtocolVariant; 3] = [
        ProtocolVariant::Standard,
        ProtocolVariant::Walton,
        ProtocolVariant::Modified,
    ];
}

impl fmt::Display for ProtocolVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolVariant::Standard => "standard",
            ProtocolVariant::Walton => "walton",
            ProtocolVariant::Modified => "modified",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for ProtocolVariant {
    type Err = String;

    /// Inverse of [`fmt::Display`]; the CLI and the `.ibgp` scenario
    /// format both parse variants through here so the accepted spellings
    /// cannot drift apart.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "standard" => Ok(ProtocolVariant::Standard),
            "walton" => Ok(ProtocolVariant::Walton),
            "modified" => Ok(ProtocolVariant::Modified),
            other => Err(format!(
                "unknown variant `{other}` (expected standard|walton|modified)"
            )),
        }
    }
}

/// A full protocol configuration: variant plus selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// The advertisement discipline.
    pub variant: ProtocolVariant,
    /// The route-selection policy.
    pub policy: SelectionPolicy,
}

impl ProtocolConfig {
    /// Standard I-BGP under the paper's selection policy.
    pub const STANDARD: ProtocolConfig = ProtocolConfig {
        variant: ProtocolVariant::Standard,
        policy: SelectionPolicy::PAPER,
    };

    /// The Walton et al. baseline under the paper's selection policy.
    pub const WALTON: ProtocolConfig = ProtocolConfig {
        variant: ProtocolVariant::Walton,
        policy: SelectionPolicy::PAPER,
    };

    /// The paper's modified protocol under its selection policy.
    pub const MODIFIED: ProtocolConfig = ProtocolConfig {
        variant: ProtocolVariant::Modified,
        policy: SelectionPolicy::PAPER,
    };
}

impl fmt::Display for ProtocolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(ProtocolVariant::Standard.to_string(), "standard");
        assert_eq!(ProtocolVariant::Walton.to_string(), "walton");
        assert_eq!(ProtocolVariant::Modified.to_string(), "modified");
    }

    #[test]
    fn all_lists_each_variant_once() {
        assert_eq!(ProtocolVariant::ALL.len(), 3);
        let mut v = ProtocolVariant::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn presets_use_paper_policy() {
        assert_eq!(ProtocolConfig::STANDARD.policy, SelectionPolicy::PAPER);
        assert_eq!(ProtocolConfig::MODIFIED.variant, ProtocolVariant::Modified);
    }
}
