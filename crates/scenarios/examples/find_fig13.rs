//! Search for the Fig 13 reconstruction: a configuration that
//! persistently oscillates under the Walton et al. vector advertisement
//! (no reachable stable state — verified by exhaustive search) while the
//! paper's modified protocol converges.
//!
//! Usage: `cargo run --release -p ibgp-scenarios --example find_fig13 [seeds]`

use ibgp_analysis::{explore, ExploreOptions};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

struct Candidate {
    clusters: Vec<(u32, Vec<u32>)>, // (reflector, clients)
    links: Vec<(u32, u32, u64)>,
    exits: Vec<(u32, u32, u32, u32)>, // (id, exit_point, next_as, med)
}

fn build(c: &Candidate) -> Option<(ibgp_topology::Topology, Vec<ExitPathRef>)> {
    let n = c
        .clusters
        .iter()
        .flat_map(|(r, cs)| std::iter::once(*r).chain(cs.iter().copied()))
        .max()? as usize
        + 1;
    let mut b = TopologyBuilder::new(n);
    for &(u, v, w) in &c.links {
        b = b.link(u, v, w);
    }
    for (r, cs) in &c.clusters {
        b = b.cluster([*r], cs.iter().copied());
    }
    let topo = b.build().ok()?;
    let exits = c
        .exits
        .iter()
        .map(|&(id, at, nas, med)| {
            Arc::new(
                ExitPath::builder(ExitPathId::new(id))
                    .via(AsId::new(nas))
                    .med(Med::new(med))
                    .exit_point(RouterId::new(at))
                    .exit_cost(IgpCost::ZERO)
                    .build_unchecked(),
            ) as ExitPathRef
        })
        .collect();
    Some((topo, exits))
}

/// Random candidate in a 3-4 cluster family (1 client per cluster),
/// star-ish physical graph, 3-5 exits over 2-3 ASes.
fn random_candidate(rng: &mut StdRng) -> Candidate {
    let k = rng.gen_range(3..=4); // clusters
                                  // Node layout: RRs are 0..k, client of cluster i is k+i.
    let clusters: Vec<(u32, Vec<u32>)> = (0..k).map(|i| (i, vec![k + i])).collect();
    let mut links = Vec::new();
    // Reflector backbone: random tree + chords with random costs.
    for i in 1..k {
        let j = rng.gen_range(0..i);
        links.push((j, i, rng.gen_range(1..=10)));
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if !links.iter().any(|&(a, b, _)| (a, b) == (i, j)) && rng.gen_bool(0.4) {
                links.push((i, j, rng.gen_range(1..=10)));
            }
        }
    }
    // Client uplinks (occasionally to a foreign reflector too — the Fig 14
    // style cross-wiring).
    for i in 0..k {
        links.push((i, k + i, rng.gen_range(1..=10)));
        if rng.gen_bool(0.3) {
            let other = rng.gen_range(0..k);
            if other != i {
                links.push((other, k + i, rng.gen_range(1..=10)));
            }
        }
    }
    // Exits at clients (each client up to 2), 2-3 neighbor ASes.
    let ases = rng.gen_range(2..=3);
    let mut exits = Vec::new();
    let mut id = 1;
    for i in 0..k {
        let count = rng.gen_range(1..=2);
        for _ in 0..count {
            exits.push((
                id,
                k + i,
                rng.gen_range(1..=ases),
                *[0u32, 5, 10][..].get(rng.gen_range(0..3usize)).unwrap(),
            ));
            id += 1;
        }
    }
    Candidate {
        clusters,
        links,
        exits,
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let cap = ExploreOptions::new().max_states(60_000);
    let mut tried = 0u64;
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let cand = random_candidate(&mut rng);
        let Some((topo, exits)) = build(&cand) else {
            continue;
        };
        tried += 1;
        // Cheap prefilter: standard must fail to converge deterministically
        // (otherwise Walton surely converges too).
        let walton = explore(&topo, ProtocolConfig::WALTON, exits.clone(), cap.clone());
        if !walton.complete || !walton.stable_vectors.is_empty() {
            continue;
        }
        let modified = explore(&topo, ProtocolConfig::MODIFIED, exits.clone(), cap.clone());
        if !(modified.complete && modified.stable_vectors.len() == 1) {
            continue;
        }
        let standard = explore(&topo, ProtocolConfig::STANDARD, exits.clone(), cap.clone());
        println!("=== HIT seed={seed} (tried {tried}) ===");
        println!("clusters: {:?}", cand.clusters);
        println!("links: {:?}", cand.links);
        println!("exits (id, at, as, med): {:?}", cand.exits);
        println!(
            "walton: persistent ({} states); modified: {} stable; standard: {} stable ({} states, complete={})",
            walton.states,
            modified.stable_vectors.len(),
            standard.stable_vectors.len(),
            standard.states,
            standard.complete,
        );
    }
    eprintln!("done: {tried} candidates");
}
