//! Seeded random route-reflection configurations.
//!
//! Used by property tests (the §7 theorems must hold on *arbitrary*
//! configurations, not just the paper's figures) and by the scaling
//! benches (E10/E11). Everything is deterministic per seed.

use crate::Scenario;
use ibgp_topology::{Topology, TopologyBuilder};
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape parameters for a random configuration.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of route-reflection clusters (each with one reflector).
    pub clusters: usize,
    /// Clients per cluster.
    pub clients_per_cluster: usize,
    /// Number of injected exit paths (placed at random routers).
    pub exits: usize,
    /// Number of distinct neighboring ASes MEDs are grouped by.
    pub neighbor_ases: usize,
    /// Maximum MED value (inclusive).
    pub max_med: u32,
    /// Maximum IGP link cost (inclusive, ≥ 1).
    pub max_cost: u64,
    /// Extra random physical links beyond the connecting tree.
    pub extra_links: usize,
}

impl Default for RandomConfig {
    fn default() -> Self {
        Self {
            clusters: 3,
            clients_per_cluster: 2,
            exits: 4,
            neighbor_ases: 2,
            max_med: 10,
            max_cost: 10,
            extra_links: 3,
        }
    }
}

/// Generate a random scenario. The physical graph is a random spanning
/// tree plus `extra_links` chords, so it is always connected; clusters
/// partition the routers; exit paths land on uniformly random routers
/// with uniform neighbor-AS and MED draws.
pub fn random_scenario(cfg: RandomConfig, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.clusters * (1 + cfg.clients_per_cluster);
    assert!(n >= 1, "need at least one router");

    let mut builder = TopologyBuilder::new(n);
    // Random spanning tree over a random permutation.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut present: Vec<(u32, u32)> = Vec::new();
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let child = order[i];
        let cost = rng.gen_range(1..=cfg.max_cost);
        builder = builder.link(parent, child, cost);
        present.push((parent.min(child), parent.max(child)));
    }
    // Extra chords (skip duplicates).
    for _ in 0..cfg.extra_links {
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let key = (u.min(v), u.max(v));
        if u == v || present.contains(&key) {
            continue;
        }
        present.push(key);
        builder = builder.link(u, v, rng.gen_range(1..=cfg.max_cost));
    }
    // Clusters: router `c * (1 + k)` is the reflector of cluster `c`.
    let stride = 1 + cfg.clients_per_cluster;
    for c in 0..cfg.clusters {
        let base = (c * stride) as u32;
        let clients: Vec<u32> = (1..=cfg.clients_per_cluster as u32)
            .map(|i| base + i)
            .collect();
        builder = builder.cluster([base], clients);
    }
    let topology = builder.build().expect("random topology is valid");

    let exits = random_exits(&topology, &cfg, &mut rng);
    Scenario {
        name: "random",
        description: "seeded random route-reflection configuration",
        topology,
        exits,
    }
}

fn random_exits(topo: &Topology, cfg: &RandomConfig, rng: &mut StdRng) -> Vec<ExitPathRef> {
    let n = topo.len();
    (0..cfg.exits)
        .map(|i| {
            let at = RouterId::new(rng.gen_range(0..n as u32));
            let next_as = AsId::new(1 + rng.gen_range(0..cfg.neighbor_ases as u32));
            let med = Med::new(rng.gen_range(0..=cfg.max_med));
            Arc::new(
                ExitPath::builder(ExitPathId::new(i as u32 + 1))
                    .via(next_as)
                    .med(med)
                    .exit_point(at)
                    .exit_cost(IgpCost::ZERO)
                    .build_unchecked(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_sim::{Engine, RoundRobin, SyncEngine};

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_scenario(RandomConfig::default(), 42);
        let b = random_scenario(RandomConfig::default(), 42);
        assert_eq!(a.topology.len(), b.topology.len());
        assert_eq!(
            a.topology.physical().links().collect::<Vec<_>>(),
            b.topology.physical().links().collect::<Vec<_>>()
        );
        assert_eq!(a.exits, b.exits);
        let c = random_scenario(RandomConfig::default(), 43);
        // Different seed almost surely differs somewhere.
        assert!(
            a.exits != c.exits
                || a.topology.physical().links().collect::<Vec<_>>()
                    != c.topology.physical().links().collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_scenarios_are_structurally_sound() {
        for seed in 0..20 {
            let s = random_scenario(RandomConfig::default(), seed);
            assert!(s.topology.physical().is_connected());
            assert_eq!(s.topology.len(), 9);
            for p in &s.exits {
                assert!(p.exit_point().index() < s.topology.len());
            }
        }
    }

    #[test]
    fn modified_protocol_converges_on_random_scenarios() {
        // A smoke-test instance of the §7 theorem; the full property test
        // lives in the workspace-level proptest suite.
        for seed in 0..10 {
            let s = random_scenario(RandomConfig::default(), seed);
            let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::MODIFIED, s.exits());
            let outcome = eng.run(&mut RoundRobin::new(), 100_000);
            assert!(outcome.converged(), "seed {seed}: {outcome}");
        }
    }

    #[test]
    fn exit_count_and_bounds_are_respected() {
        let cfg = RandomConfig {
            exits: 7,
            max_med: 3,
            neighbor_ases: 2,
            ..RandomConfig::default()
        };
        let s = random_scenario(cfg, 7);
        assert_eq!(s.exits.len(), 7);
        for p in &s.exits {
            assert!(p.med().raw() <= 3);
            assert!(p.next_as().raw() >= 1 && p.next_as().raw() <= 2);
        }
    }
}
