//! Figure 1(a): the canonical persistent MED oscillation (McPherson et
//! al. / Cisco field notice example).
//!
//! Two clusters: reflector **A** with clients `ca1`, `ca2`; reflector
//! **B** with client `cb1`. Three routes to `d`:
//!
//! * `r1` at `ca1`, via `AS1` (its MED is never compared with the others);
//! * `r2` at `ca2`, via `AS2`, MED 10;
//! * `r3` at `cb1`, via `AS2`, MED 5 — so whenever `r3` is visible it
//!   *hides* `r2` (same neighbor AS, lower MED).
//!
//! IGP geometry (A-side distances `r2 < r1 < r3`; B-side `r1 < r3`)
//! reproduces the paper's cycle:
//!
//! 1. A selects `r2` (lower IGP metric than `r1`); B selects `r3`.
//! 2. A receives `r3`: `r3` kills `r2` (MED), and `r1` beats `r3`
//!    (metric) — A selects `r1`.
//! 3. B receives `r1` and selects it (lower metric), withdrawing `r3`
//!    from A (a reflector may not re-advertise a non-client route to
//!    another reflector).
//! 4. With `r3` gone, `r2` is visible again and A selects `r2` — back to
//!    step 1. **No stable configuration exists.**
//!
//! Both the Walton et al. vector (which always re-advertises B's best
//! AS2 route `r3`) and the paper's modified protocol break the cycle here.

use crate::Scenario;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathRef, Med};
use std::sync::Arc;

/// Router indices, for readable assertions in tests and benches.
pub mod nodes {
    use ibgp_types::RouterId;
    /// Route reflector A.
    pub const A: RouterId = RouterId(0);
    /// A's client holding `r1`.
    pub const CA1: RouterId = RouterId(1);
    /// A's client holding `r2`.
    pub const CA2: RouterId = RouterId(2);
    /// Route reflector B.
    pub const B: RouterId = RouterId(3);
    /// B's client holding `r3`.
    pub const CB1: RouterId = RouterId(4);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// Route through `AS1` at client `ca1`.
    pub const R1: ExitPathId = ExitPathId(1);
    /// Route through `AS2` (MED 10) at client `ca2`.
    pub const R2: ExitPathId = ExitPathId(2);
    /// Route through `AS2` (MED 5) at client `cb1`.
    pub const R3: ExitPathId = ExitPathId(3);
}

/// Build the Fig 1(a) scenario.
pub fn scenario() -> Scenario {
    let topology = TopologyBuilder::new(5)
        // A's cluster star plus the inter-reflector link; B's client is far.
        .link(nodes::A.raw(), nodes::CA1.raw(), 2)
        .link(nodes::A.raw(), nodes::CA2.raw(), 1)
        .link(nodes::A.raw(), nodes::B.raw(), 1)
        .link(nodes::B.raw(), nodes::CB1.raw(), 10)
        .cluster([nodes::A.raw()], [nodes::CA1.raw(), nodes::CA2.raw()])
        .cluster([nodes::B.raw()], [nodes::CB1.raw()])
        .build()
        .expect("fig1a topology is valid");

    let exits: Vec<ExitPathRef> = vec![
        Arc::new(
            ExitPath::builder(routes::R1)
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(nodes::CA1)
                .build_unchecked(),
        ),
        Arc::new(
            ExitPath::builder(routes::R2)
                .via(AsId::new(2))
                .med(Med::new(10))
                .exit_point(nodes::CA2)
                .build_unchecked(),
        ),
        Arc::new(
            ExitPath::builder(routes::R3)
                .via(AsId::new(2))
                .med(Med::new(5))
                .exit_point(nodes::CB1)
                .build_unchecked(),
        ),
    ];

    Scenario {
        name: "fig1a",
        description:
            "persistent MED-induced oscillation under standard I-BGP with route reflection",
        topology,
        exits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::{classify, ExploreOptions, OscillationClass};
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_sim::{Engine, RoundRobin, SyncEngine};

    const MAX_STATES: usize = 300_000;

    #[test]
    fn geometry_matches_the_narrative() {
        let s = scenario();
        let t = &s.topology;
        // A-side metrics: r2 < r1 < r3.
        let d = |u, v| t.igp_cost(u, v).raw();
        assert!(d(nodes::A, nodes::CA2) < d(nodes::A, nodes::CA1));
        assert!(d(nodes::A, nodes::CA1) < d(nodes::A, nodes::CB1));
        // B-side: r1 < r3.
        assert!(d(nodes::B, nodes::CA1) < d(nodes::B, nodes::CB1));
    }

    #[test]
    fn standard_protocol_oscillates_persistently() {
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::STANDARD,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Persistent, "reach: {reach:?}");
        assert!(reach.complete);
        assert!(reach.stable_vectors.is_empty());
    }

    #[test]
    fn standard_round_robin_run_detects_a_cycle() {
        let s = scenario();
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::STANDARD, s.exits());
        let outcome = eng.run(&mut RoundRobin::new(), 10_000);
        assert!(outcome.cycled(), "{outcome}");
    }

    #[test]
    fn walton_converges_here() {
        // The paper: "Walton et al. propose a modification ... which
        // thwarts the oscillation problem in this example."
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::WALTON,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable, "reach: {reach:?}");
    }

    #[test]
    fn modified_protocol_converges_and_a_selects_r1() {
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::MODIFIED,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable, "reach: {reach:?}");
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::MODIFIED, s.exits());
        let outcome = eng.run(&mut RoundRobin::new(), 10_000);
        assert!(outcome.converged(), "{outcome}");
        // S' = Choose_set(all) = {r1, r3}; A picks r1 (metric 2 vs 11).
        assert_eq!(eng.best_exit(nodes::A), Some(routes::R1));
        // B picks r1 too (metric 3 vs 10).
        assert_eq!(eng.best_exit(nodes::B), Some(routes::R1));
        // Clients keep their own E-BGP routes if those survive Choose_set;
        // ca2's r2 is MED-hidden, so ca2 also uses r1.
        assert_eq!(eng.best_exit(nodes::CA1), Some(routes::R1));
        assert_eq!(eng.best_exit(nodes::CA2), Some(routes::R1));
        assert_eq!(eng.best_exit(nodes::CB1), Some(routes::R3));
    }

    #[test]
    fn always_compare_med_also_stabilizes_this_example() {
        // One of the §1 workarounds: comparing MEDs across neighbor ASes
        // removes the hiding effect in this instance.
        use ibgp_proto::selection::SelectionPolicy;
        use ibgp_proto::ProtocolVariant;
        let s = scenario();
        let config = ibgp_proto::variants::ProtocolConfig {
            variant: ProtocolVariant::Standard,
            policy: SelectionPolicy::ALWAYS_COMPARE_MED,
        };
        let (class, _) = classify(
            &s.topology,
            config,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable);
    }
}
