//! Figure 12: the real route differs from the believed route.
//!
//! A line `u – w – x` of fully-meshed routers. `x` injects `p1` (via AS1,
//! exit cost 0); `w` injects `p2` (via AS2, exit cost 10). At `u` both
//! survive rules 1–3 (different neighbor ASes, equal LOCAL-PREF and
//! AS-PATH length) and the metric picks `p1` (cost 2 to `x` beats cost
//! 1 + 10 to `w`'s expensive exit) — so `u` *believes* its packets take
//! `u → w → x → AS1`. But `w` prefers its own E-BGP route outright
//! (rule 4) and hands packets to AS2 directly.
//!
//! No loop results — this is precisely the benign case Lemma 7.6 allows
//! (`w = exitPoint(BestRoute(w))`); the scenario exists to test the
//! forwarding walk and to contrast with Fig 14, where the divergence
//! *does* loop.

use crate::Scenario;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathRef, IgpCost, Med};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// The source router whose belief is wrong.
    pub const U: RouterId = RouterId(0);
    /// The intermediate router with its own (expensive) exit.
    pub const W: RouterId = RouterId(1);
    /// The far exit point.
    pub const X: RouterId = RouterId(2);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// The cheap far route at `x` via AS1.
    pub const P1: ExitPathId = ExitPathId(1);
    /// The expensive local route at `w` via AS2.
    pub const P2: ExitPathId = ExitPathId(2);
}

/// Build the Fig 12 scenario.
pub fn scenario() -> Scenario {
    let topology = TopologyBuilder::new(3)
        .link(nodes::U.raw(), nodes::W.raw(), 1)
        .link(nodes::W.raw(), nodes::X.raw(), 1)
        .full_mesh()
        .build()
        .expect("fig12 topology is valid");
    let exits: Vec<ExitPathRef> = vec![
        Arc::new(
            ExitPath::builder(routes::P1)
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(nodes::X)
                .build_unchecked(),
        ),
        Arc::new(
            ExitPath::builder(routes::P2)
                .via(AsId::new(2))
                .med(Med::new(0))
                .exit_point(nodes::W)
                .exit_cost(IgpCost::new(10))
                .build_unchecked(),
        ),
    ];
    Scenario {
        name: "fig12",
        description:
            "believed route u->w->x->AS1 vs real route that exits at w (benign divergence)",
        topology,
        exits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::{forward_from, forwarding_loops, lemma_7_6_violations, ForwardingResult};
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_sim::{Engine, RoundRobin, SyncEngine};
    use ibgp_types::{ExitPathId, RouterId};

    fn converged_engine(config: ProtocolConfig) -> (Scenario, Vec<Option<ExitPathId>>) {
        let s = scenario();
        let mut eng = SyncEngine::new(&s.topology, config, s.exits());
        assert!(eng.run(&mut RoundRobin::new(), 1_000).converged());
        let bests = eng.best_vector();
        (s, bests)
    }

    fn best_fn<'a>(
        s: &'a Scenario,
        bests: &'a [Option<ExitPathId>],
    ) -> impl Fn(RouterId) -> Option<ibgp_types::Route> + 'a {
        move |u: RouterId| {
            let id = bests[u.index()]?;
            let p = s.exits.iter().find(|p| p.id() == id)?.clone();
            Some(ibgp_types::Route::new(
                p.clone(),
                u,
                s.topology.igp_cost(u, p.exit_point()),
                ibgp_types::BgpId::new(0),
            ))
        }
    }

    #[test]
    fn u_believes_the_far_route_but_w_diverts() {
        let (s, bests) = converged_engine(ProtocolConfig::STANDARD);
        assert_eq!(bests[nodes::U.index()], Some(routes::P1), "u picks p1");
        assert_eq!(bests[nodes::W.index()], Some(routes::P2), "w picks its own");
        assert_eq!(bests[nodes::X.index()], Some(routes::P1));

        let best = best_fn(&s, &bests);
        match forward_from(&s.topology, &best, nodes::U) {
            ForwardingResult::Exits { exit, via, path } => {
                assert_eq!(exit, nodes::W, "the packet really leaves at w");
                assert_eq!(via, routes::P2);
                assert_eq!(path, vec![nodes::U, nodes::W]);
            }
            other => panic!("unexpected {other}"),
        }
        // Benign: no loop, no Lemma 7.6 violation.
        assert!(forwarding_loops(&s.topology, &best).is_empty());
        assert!(lemma_7_6_violations(&s.topology, &best).is_empty());
    }

    #[test]
    fn modified_protocol_behaves_identically_here() {
        // The divergence is inherent to rule 4 (E-BGP preference), not to
        // the advertisement discipline; the modified protocol reproduces
        // it, and it stays loop-free (Lemma 7.6's allowed case).
        let (s, bests) = converged_engine(ProtocolConfig::MODIFIED);
        assert_eq!(bests[nodes::U.index()], Some(routes::P1));
        assert_eq!(bests[nodes::W.index()], Some(routes::P2));
        let best = best_fn(&s, &bests);
        assert!(forwarding_loops(&s.topology, &best).is_empty());
        assert!(lemma_7_6_violations(&s.topology, &best).is_empty());
    }
}
