//! Figure 13: persistent oscillation that the Walton et al. vector does
//! **not** eliminate (behavioural reconstruction).
//!
//! The paper's figure (4 clusters, "a modification of an example from
//! [9]") is not recoverable from the source text — the description
//! breaks off mid-sentence. This module reconstructs the figure's
//! *defining property* with a three-cluster **metric preference ring**:
//!
//! Reflectors `RR1..RR3`, each with one client (`c1..c3`) injecting one
//! route (`r1..r3`) — all through the **same** neighboring AS, equal
//! LOCAL-PREF, AS-PATH length, and MED. The IGP geometry is rotationally
//! asymmetric (complete bipartite reflector–client links):
//!
//! ```text
//!          c1   c2   c3
//!   RR1  [  2    1    3 ]     each reflector prefers the *next*
//!   RR2  [  3    2    1 ]     cluster's exit over its own, and its
//!   RR3  [  1    3    2 ]     own over the previous one's
//! ```
//!
//! Whoever's route reflector `RRi` *sees* the next route `r(i+1)`, it
//! adopts it — a foreign client route it cannot re-advertise to other
//! reflectors — thereby **hiding its own client's `ri`** from the mesh;
//! without `r(i+1)` it advertises `ri`. The visibility relations form an
//! odd cycle of negations (`adv(ri) = ¬adv(r(i+1))`), so **no stable
//! configuration exists**: exhaustive search proves both standard I-BGP
//! *and* the Walton et al. variant oscillate persistently (with a single
//! neighboring AS the per-AS vector cannot carry more information than
//! the classical best). The paper's modified protocol advertises all
//! three `Choose_set` survivors and converges to its unique fixed point.
//!
//! **Reconstruction divergence, documented:** the paper calls its Fig 13
//! oscillation *MED-induced*. Under our (faithful-to-§8) reading of the
//! Walton rule, a randomized search over thousands of MED-varied
//! route-reflection configurations found no MED-induced Walton-persistent
//! instance, and there is a structural reason: per-AS MED elimination
//! induces visibility constraints that are *monotone* after absorbing
//! victim negations into killer disjunctions, so the MED-hiding algebra
//! alone always admits a fixed point; only equal-MED metric rings (as
//! here) break Walton. See DESIGN.md §Fig 13 and EXPERIMENTS.md E6.

use crate::Scenario;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, Med, RouterId};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// First reflector.
    pub const RR1: RouterId = RouterId(0);
    /// Second reflector.
    pub const RR2: RouterId = RouterId(1);
    /// Third reflector.
    pub const RR3: RouterId = RouterId(2);
    /// RR1's client (exit r1).
    pub const C1: RouterId = RouterId(3);
    /// RR2's client (exit r2).
    pub const C2: RouterId = RouterId(4);
    /// RR3's client (exit r3).
    pub const C3: RouterId = RouterId(5);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// Route injected at c1.
    pub const R1: ExitPathId = ExitPathId(1);
    /// Route injected at c2.
    pub const R2: ExitPathId = ExitPathId(2);
    /// Route injected at c3.
    pub const R3: ExitPathId = ExitPathId(3);
}

/// Build the Fig 13 scenario.
pub fn scenario() -> Scenario {
    let topology = TopologyBuilder::new(6)
        // Rotationally asymmetric bipartite costs; see module docs.
        .link(nodes::RR1.raw(), nodes::C1.raw(), 2)
        .link(nodes::RR1.raw(), nodes::C2.raw(), 1)
        .link(nodes::RR1.raw(), nodes::C3.raw(), 3)
        .link(nodes::RR2.raw(), nodes::C1.raw(), 3)
        .link(nodes::RR2.raw(), nodes::C2.raw(), 2)
        .link(nodes::RR2.raw(), nodes::C3.raw(), 1)
        .link(nodes::RR3.raw(), nodes::C1.raw(), 1)
        .link(nodes::RR3.raw(), nodes::C2.raw(), 3)
        .link(nodes::RR3.raw(), nodes::C3.raw(), 2)
        .cluster([nodes::RR1.raw()], [nodes::C1.raw()])
        .cluster([nodes::RR2.raw()], [nodes::C2.raw()])
        .cluster([nodes::RR3.raw()], [nodes::C3.raw()])
        .build()
        .expect("fig13 topology is valid");
    let mk = |id: ExitPathId, at: RouterId| -> ExitPathRef {
        Arc::new(
            ExitPath::builder(id)
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(at)
                .build_unchecked(),
        )
    };
    Scenario {
        name: "fig13",
        description: "persistent oscillation surviving the Walton et al. fix; the modified protocol converges (metric-ring reconstruction)",
        topology,
        exits: vec![
            mk(routes::R1, nodes::C1),
            mk(routes::R2, nodes::C2),
            mk(routes::R3, nodes::C3),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::{classify, ExploreOptions, OscillationClass};
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_sim::{Engine, RoundRobin, SyncEngine};

    const MAX_STATES: usize = 500_000;

    #[test]
    fn the_preference_ring_geometry_holds() {
        let s = scenario();
        let d = |u, v| s.topology.igp_cost(u, v).raw();
        // Each reflector: next cluster's client < own client < previous.
        assert!(d(nodes::RR1, nodes::C2) < d(nodes::RR1, nodes::C1));
        assert!(d(nodes::RR1, nodes::C1) < d(nodes::RR1, nodes::C3));
        assert!(d(nodes::RR2, nodes::C3) < d(nodes::RR2, nodes::C2));
        assert!(d(nodes::RR2, nodes::C2) < d(nodes::RR2, nodes::C1));
        assert!(d(nodes::RR3, nodes::C1) < d(nodes::RR3, nodes::C3));
        assert!(d(nodes::RR3, nodes::C3) < d(nodes::RR3, nodes::C2));
    }

    #[test]
    fn walton_oscillates_persistently() {
        // The headline Fig 13 claim: the Walton et al. fix is not enough.
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::WALTON,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Persistent, "{reach:?}");
        assert!(reach.complete);
    }

    #[test]
    fn standard_oscillates_persistently_too() {
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::STANDARD,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Persistent, "{reach:?}");
    }

    #[test]
    fn walton_round_robin_run_provably_cycles() {
        let s = scenario();
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::WALTON, s.exits());
        let outcome = eng.run(&mut RoundRobin::new(), 100_000);
        assert!(outcome.cycled(), "{outcome}");
    }

    #[test]
    fn modified_protocol_converges_to_the_unique_fixed_point() {
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::MODIFIED,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable, "{reach:?}");
        assert_eq!(reach.stable_vectors.len(), 1);
        // With all three routes visible everywhere, each reflector takes
        // the nearest (its "next" cluster's) exit.
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::MODIFIED, s.exits());
        assert!(eng.run(&mut RoundRobin::new(), 10_000).converged());
        assert_eq!(eng.best_exit(nodes::RR1), Some(routes::R2));
        assert_eq!(eng.best_exit(nodes::RR2), Some(routes::R3));
        assert_eq!(eng.best_exit(nodes::RR3), Some(routes::R1));
    }

    #[test]
    fn single_neighbor_as_makes_walton_equal_standard() {
        // Cross-check of the §3 remark that with one neighboring AS the
        // Walton vector is the classical best: both protocols visit the
        // same reachable state count here.
        let s = scenario();
        let (_, rw) = classify(
            &s.topology,
            ProtocolConfig::WALTON,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        let (_, rs) = classify(
            &s.topology,
            ProtocolConfig::STANDARD,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(rw.states, rs.states);
    }
}
