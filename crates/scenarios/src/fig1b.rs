//! Figure 1(b): the rule-ordering experiment.
//!
//! The same MED-hiding mechanics as Fig 1(a), but folded onto **two
//! fully-meshed routers** (no route reflection at all): router A holds
//! `r1` (via AS1, exit cost 4) and `r2` (via AS2, MED 10, exit cost 1);
//! router B holds `r3` (via AS2, MED 5, exit cost 10). The A–B link costs
//! 2, so B is *closer* to both of A's exits than to its own.
//!
//! * Under the **paper's rule ordering** (rule 4: E-BGP beats I-BGP
//!   before any metric comparison) the system converges: "B always
//!   prefers its E-BGP route to either of the (shorter) routes through
//!   A", so `r3` is permanently visible, permanently hides `r2`, and A
//!   settles on `r1`.
//! * Under the **RFC 1771 / [11] ordering** (minimum IGP metric first) B
//!   abandons `r3` whenever a route through A is visible, which resurrects
//!   `r2` at A, which re-hides... — a persistent oscillation in plain
//!   fully-meshed I-BGP, exactly the paper's point that the adopted rule
//!   order matters.

use crate::Scenario;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathRef, IgpCost, Med};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// Router A (two exits).
    pub const A: RouterId = RouterId(0);
    /// Router B (one exit).
    pub const B: RouterId = RouterId(1);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// A's route via AS1, exit cost 4.
    pub const R1: ExitPathId = ExitPathId(1);
    /// A's route via AS2, MED 10, exit cost 1.
    pub const R2: ExitPathId = ExitPathId(2);
    /// B's route via AS2, MED 5, exit cost 10.
    pub const R3: ExitPathId = ExitPathId(3);
}

/// Build the Fig 1(b) scenario.
pub fn scenario() -> Scenario {
    let topology = TopologyBuilder::new(2)
        .link(nodes::A.raw(), nodes::B.raw(), 2)
        .full_mesh()
        .build()
        .expect("fig1b topology is valid");

    let exits: Vec<ExitPathRef> = vec![
        Arc::new(
            ExitPath::builder(routes::R1)
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(nodes::A)
                .exit_cost(IgpCost::new(4))
                .build_unchecked(),
        ),
        Arc::new(
            ExitPath::builder(routes::R2)
                .via(AsId::new(2))
                .med(Med::new(10))
                .exit_point(nodes::A)
                .exit_cost(IgpCost::new(1))
                .build_unchecked(),
        ),
        Arc::new(
            ExitPath::builder(routes::R3)
                .via(AsId::new(2))
                .med(Med::new(5))
                .exit_point(nodes::B)
                .exit_cost(IgpCost::new(10))
                .build_unchecked(),
        ),
    ];

    Scenario {
        name: "fig1b",
        description: "fully-meshed configuration that diverges under the RFC 1771 rule ordering but converges under the paper's ordering",
        topology,
        exits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::{classify, ExploreOptions, OscillationClass};
    use ibgp_proto::selection::SelectionPolicy;
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_proto::ProtocolVariant;
    use ibgp_sim::{Engine, RoundRobin, SyncEngine};

    const MAX_STATES: usize = 100_000;

    fn config(policy: SelectionPolicy) -> ProtocolConfig {
        ProtocolConfig {
            variant: ProtocolVariant::Standard,
            policy,
        }
    }

    #[test]
    fn paper_ordering_converges() {
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            config(SelectionPolicy::PAPER),
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable, "{reach:?}");
        let mut eng = SyncEngine::new(&s.topology, config(SelectionPolicy::PAPER), s.exits());
        assert!(eng.run(&mut RoundRobin::new(), 1_000).converged());
        // B sticks to its own E-BGP route; A settles on r1 (r2 MED-hidden).
        assert_eq!(eng.best_exit(nodes::B), Some(routes::R3));
        assert_eq!(eng.best_exit(nodes::A), Some(routes::R1));
    }

    #[test]
    fn rfc1771_ordering_oscillates_persistently() {
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            config(SelectionPolicy::RFC1771),
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Persistent, "{reach:?}");
    }

    #[test]
    fn rfc1771_round_robin_run_cycles() {
        let s = scenario();
        let mut eng = SyncEngine::new(&s.topology, config(SelectionPolicy::RFC1771), s.exits());
        let outcome = eng.run(&mut RoundRobin::new(), 10_000);
        assert!(outcome.cycled(), "{outcome}");
    }

    #[test]
    fn modified_protocol_fixes_even_the_rfc_ordering() {
        // Not claimed by the paper (its §6/§7 analysis uses the paper
        // ordering), but a natural question: the Choose_set advertisement
        // also stabilizes this instance under the RFC 1771 ordering.
        let s = scenario();
        let cfg = ProtocolConfig {
            variant: ProtocolVariant::Modified,
            policy: SelectionPolicy::RFC1771,
        };
        let (class, reach) = classify(
            &s.topology,
            cfg,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable, "{reach:?}");
    }

    #[test]
    fn the_oscillation_is_med_induced() {
        // Disable MED comparison: the RFC ordering then converges, which
        // pins the divergence on MED hiding rather than on the metric rule
        // alone.
        let s = scenario();
        let cfg = config(SelectionPolicy {
            med_mode: ibgp_proto::MedMode::Ignore,
            rule_order: ibgp_proto::selection::RuleOrder::MinCostFirst,
        });
        let (class, reach) = classify(
            &s.topology,
            cfg,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable, "{reach:?}");
    }
}
