//! # ibgp-scenarios
//!
//! Every configuration the paper uses as evidence, rebuilt as a reusable
//! [`Scenario`]:
//!
//! | Module | Paper artifact | Claim |
//! |---|---|---|
//! | [`fig1a`] | Fig 1(a) | persistent MED oscillation under standard I-BGP+RR; Walton and the modified protocol converge |
//! | [`fig1b`] | Fig 1(b) | converges under the paper's rule order, diverges under the RFC 1771 order — even fully meshed |
//! | [`fig2`]  | Fig 2 | two stable solutions; ordering-dependent outcome; Walton no help (one neighbor AS); modified deterministic |
//! | [`fig3`]  | Fig 3 + Table 1 | message *delays* drive transient oscillation in a fully meshed system |
//! | [`fig12`] | Fig 12 | real route differs from the believed route (no loop — Lemma 7.6's allowed case) |
//! | [`fig13`] | Fig 13 | persistent oscillation that survives the Walton et al. fix; modified converges |
//! | [`fig14`] | Fig 14 | forwarding loop under standard & Walton; loop-free under modified |
//!
//! plus [`random`] — seeded generators of route-reflection topologies and
//! exit-path sets for property tests and benches.
//!
//! Where the source text does not fully specify a figure (Fig 3's artwork,
//! Fig 13's edge lists), the scenario is a documented reconstruction that
//! provably exhibits the figure's *defining behaviour*; the tests in each
//! module pin that behaviour down mechanically. See DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig1a;
pub mod fig1b;
pub mod fig2;
pub mod fig3;
pub mod random;

pub use catalog::{all_scenarios, by_name};

use ibgp_topology::Topology;
use ibgp_types::ExitPathRef;

/// A named, self-contained experiment configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short identifier (e.g. `"fig1a"`).
    pub name: &'static str,
    /// What the scenario demonstrates.
    pub description: &'static str,
    /// The AS topology.
    pub topology: Topology,
    /// The injected E-BGP exit paths.
    pub exits: Vec<ExitPathRef>,
}

impl Scenario {
    /// The exit paths as a fresh vector (engines consume owned vectors).
    pub fn exits(&self) -> Vec<ExitPathRef> {
        self.exits.clone()
    }
}
