//! Figure 3 + Table 1: delay-driven transient oscillation.
//!
//! Three fully-meshed border routers `A`, `B`, `C`, each with two E-BGP
//! routes, arranged in a MED "rock-paper-scissors" around three
//! neighboring ASes (the figure's artwork is not recoverable from the
//! source text; this reconstruction preserves the documented mechanics —
//! all LOCAL-PREFs and AS-PATH lengths equal, MEDs on the inter-AS links,
//! dashed routes having lower BGP identifiers, two stable solutions, and
//! oscillation produced purely by update timing):
//!
//! * `A` holds `r1` (AS1, MED 1) and `r2` (AS2, MED 0);
//! * `B` holds `r3` (AS2, MED 1) and `r4` (AS3, MED 0);
//! * `C` holds `r5` (AS3, MED 1) and `r6` (AS1, MED 0).
//!
//! Each router prefers its MED-1 route (lower NEXT-HOP identifier) unless
//! a foreign MED-0 route through the same AS **hides** it: `r2` hides
//! `r3`, `r4` hides `r5`, `r6` hides `r1`. The two stable solutions are
//! "everyone on MED-1" (`r1, r3, r5`) and "everyone on MED-0"
//! (`r2, r4, r6`).
//!
//! The Table 1 schedule: inject everything except `r1` at time 0 and let
//! `r1` arrive just after `A`'s first advertisement has left. `A` then
//! advertises `r2` (a *hide* wave: `B` flips to `r4`, `C` to `r6`, `A`
//! to `r2`…) immediately followed by a withdrawal (an *unhide* wave one
//! step behind). With symmetric delays the two waves chase each other
//! around the triangle forever — route oscillation from one delayed
//! E-BGP injection. Any asymmetry lets one wave catch the other and the
//! system lands in one of the two stable solutions; the modified protocol
//! converges to the same solution under every timing.

use crate::Scenario;
use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::{AsyncEvent, AsyncOutcome, AsyncSim, DelayModel, FixedDelay};
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, Med, RouterId};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// Border router A (routes r1, r2).
    pub const A: RouterId = RouterId(0);
    /// Border router B (routes r3, r4).
    pub const B: RouterId = RouterId(1);
    /// Border router C (routes r5, r6).
    pub const C: RouterId = RouterId(2);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// A's route via AS1, MED 1 (dashed: lowest NEXT-HOP id at A).
    pub const R1: ExitPathId = ExitPathId(1);
    /// A's route via AS2, MED 0.
    pub const R2: ExitPathId = ExitPathId(2);
    /// B's route via AS2, MED 1 (dashed).
    pub const R3: ExitPathId = ExitPathId(3);
    /// B's route via AS3, MED 0.
    pub const R4: ExitPathId = ExitPathId(4);
    /// C's route via AS3, MED 1 (dashed).
    pub const R5: ExitPathId = ExitPathId(5);
    /// C's route via AS1, MED 0.
    pub const R6: ExitPathId = ExitPathId(6);
}

fn mk(id: ExitPathId, next_as: u32, med: u32, at: RouterId) -> ExitPathRef {
    Arc::new(
        ExitPath::builder(id)
            .via(AsId::new(next_as))
            .med(Med::new(med))
            .exit_point(at)
            .build_unchecked(),
    )
}

/// Build the Fig 3 scenario (all six routes present).
pub fn scenario() -> Scenario {
    let topology = TopologyBuilder::new(3)
        .link(nodes::A.raw(), nodes::B.raw(), 1)
        .link(nodes::B.raw(), nodes::C.raw(), 1)
        .link(nodes::A.raw(), nodes::C.raw(), 1)
        .full_mesh()
        .build()
        .expect("fig3 topology is valid");
    Scenario {
        name: "fig3",
        description: "delay-driven transient oscillation in fully meshed I-BGP (Table 1 schedule)",
        topology,
        exits: vec![
            mk(routes::R1, 1, 1, nodes::A),
            mk(routes::R2, 2, 0, nodes::A),
            mk(routes::R3, 2, 1, nodes::B),
            mk(routes::R4, 3, 0, nodes::B),
            mk(routes::R5, 3, 1, nodes::C),
            mk(routes::R6, 1, 0, nodes::C),
        ],
    }
}

/// Run the Table 1 schedule: everything except `r1` is present at time 0;
/// `r1` is injected at `r1_at` (2 time units in, after A's first update
/// has departed). Returns the finished simulator and the outcome.
pub fn run_table1(
    config: ProtocolConfig,
    delay: Box<dyn DelayModel>,
    r1_at: u64,
    max_events: u64,
) -> (AsyncOutcome, u64) {
    let s = scenario();
    let exits_without_r1: Vec<ExitPathRef> = s
        .exits
        .iter()
        .filter(|p| p.id() != routes::R1)
        .cloned()
        .collect();
    let topology = s.topology;
    let mut sim = AsyncSim::new(&topology, config, exits_without_r1, delay);
    sim.start();
    sim.schedule(
        r1_at,
        AsyncEvent::Inject {
            path: mk(routes::R1, 1, 1, nodes::A),
        },
    );
    let outcome = sim.run(max_events);
    (outcome, sim.metrics().best_changes)
}

/// The symmetric delay used by the oscillating run.
pub fn symmetric_delay() -> Box<dyn DelayModel> {
    Box::new(FixedDelay(5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::{classify, enumerate_stable_standard, ExploreOptions, OscillationClass};
    use ibgp_proto::selection::SelectionPolicy;
    use ibgp_sim::{FnDelay, SeededJitter};

    #[test]
    fn two_stable_solutions_exist() {
        let s = scenario();
        let e =
            enumerate_stable_standard(&s.topology, SelectionPolicy::PAPER, &s.exits, 10_000_000)
                .unwrap();
        let mut fps = e.fixed_points.clone();
        fps.sort();
        assert_eq!(fps.len(), 2, "{fps:?}");
        let med1 = vec![Some(routes::R1), Some(routes::R3), Some(routes::R5)];
        let med0 = vec![Some(routes::R2), Some(routes::R4), Some(routes::R6)];
        assert!(fps.contains(&med1), "{fps:?}");
        assert!(fps.contains(&med0), "{fps:?}");
    }

    #[test]
    fn synchronous_model_is_stable_when_all_routes_are_present_upfront() {
        // With every route injected before time 0 the §4 model always
        // lands on the MED-1 solution — the oscillation genuinely needs
        // E-BGP *injection timing*, exactly as the paper notes for the
        // simplified variant ("it will rely on the timing of when the
        // routes through AS2 and AS3 are injected").
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::STANDARD,
            &s.exits,
            ExploreOptions::new().max_states(500_000),
        );
        assert_eq!(class, OscillationClass::Stable, "{reach:?}");
        assert_eq!(
            reach.stable_vectors,
            vec![vec![Some(routes::R1), Some(routes::R3), Some(routes::R5)]]
        );
    }

    #[test]
    fn late_r1_injection_reaches_the_other_fixed_point() {
        // Start without r1 (it is still propagating through E-BGP): the
        // system settles on the MED-0 solution; injecting r1 afterwards
        // does not dislodge it (r6 hides r1 at A). Standard I-BGP is
        // therefore injection-order dependent.
        use ibgp_sim::SyncEngine;
        use ibgp_sim::{Engine, RoundRobin};
        let s = scenario();
        let without_r1: Vec<ExitPathRef> = s
            .exits
            .iter()
            .filter(|p| p.id() != routes::R1)
            .cloned()
            .collect();
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::STANDARD, without_r1);
        assert!(eng.run(&mut RoundRobin::new(), 10_000).converged());
        eng.inject(s.exits[0].clone());
        assert!(eng.run(&mut RoundRobin::new(), 10_000).converged());
        assert_eq!(
            eng.best_vector(),
            vec![Some(routes::R2), Some(routes::R4), Some(routes::R6)],
            "late injection lands on the MED-0 fixed point"
        );
    }

    #[test]
    fn table1_schedule_oscillates_under_standard() {
        // Symmetric delays: the hide and unhide waves chase each other
        // around the triangle and the system never quiesces.
        let (outcome, flips) = run_table1(ProtocolConfig::STANDARD, symmetric_delay(), 2, 5_000);
        match outcome {
            AsyncOutcome::Exhausted { best_changes, .. } => {
                assert!(
                    best_changes > 200,
                    "sustained oscillation expected, saw {best_changes}"
                );
            }
            AsyncOutcome::Quiescent { .. } => {
                panic!("Table 1 schedule must oscillate under standard I-BGP (flips: {flips})")
            }
        }
    }

    #[test]
    fn delays_alone_never_break_the_wave_pair_without_batching() {
        // A structural finding of the reproduction: with change-triggered
        // updates over FIFO sessions, the hide/unhide wave pair circulates
        // under *any* delay assignment — every intermediate state is
        // faithfully forwarded. Skewing one session does not help.
        let delay = FnDelay::new(|from, to, _now| {
            if from == nodes::B && to == nodes::C {
                13
            } else {
                5
            }
        });
        let (outcome, _) = run_table1(ProtocolConfig::STANDARD, Box::new(delay), 2, 5_000);
        assert!(!outcome.quiescent(), "{outcome}");
    }

    #[test]
    fn jittered_mrai_batching_ends_the_transient_oscillation() {
        // Real routers coalesce updates within a *jittered* MRAI window
        // (RFC 4271 prescribes 75–100% jitter). A reproduction finding:
        // a deterministic MRAI merely re-spaces the circulating waves —
        // flip spacing adapts to exactly one window everywhere, and the
        // rotation survives. Heterogeneous (jittered) windows let one
        // router receive hide and unhide inside a single closed window,
        // advertise the (empty) net change, and kill the wave. That is
        // what makes the Table 1 behaviour *transient*: it lives only as
        // long as the timing coincidence (perfectly separated updates)
        // persists.
        let s = scenario();
        let exits_without_r1: Vec<ExitPathRef> = s
            .exits
            .iter()
            .filter(|p| p.id() != routes::R1)
            .cloned()
            .collect();
        let mut churn = Vec::new();
        let mut outcomes = std::collections::BTreeSet::new();
        for seed in 0..8u64 {
            let mut sim = AsyncSim::new(
                &s.topology,
                ProtocolConfig::STANDARD,
                exits_without_r1.clone(),
                Box::new(SeededJitter::new(seed, 1, 9)),
            );
            sim.set_mrai(16);
            sim.set_mrai_jitter(seed ^ 0xABCD);
            sim.start();
            sim.schedule(
                2,
                ibgp_sim::AsyncEvent::Inject {
                    path: mk(routes::R1, 1, 1, nodes::A),
                },
            );
            let outcome = sim.run(50_000);
            assert!(outcome.quiescent(), "seed {seed}: {outcome}");
            churn.push(sim.metrics().best_changes);
            outcomes.insert(sim.best_vector());
        }
        // The oscillation is real (some seeds churn for a long while
        // before the waves merge)…
        assert!(churn.iter().any(|&c| c > 50), "{churn:?}");
        // …and the landing point is timing-dependent: both stable
        // solutions occur across seeds.
        assert_eq!(outcomes.len(), 2, "{outcomes:?}");
    }

    #[test]
    fn different_timings_reach_different_stable_solutions() {
        // All routes present from the start: the MED-1 solution wins.
        let s = scenario();
        let mut sim = AsyncSim::new(
            &s.topology,
            ProtocolConfig::STANDARD,
            s.exits(),
            Box::new(FixedDelay(5)),
        );
        sim.start();
        assert!(sim.run(50_000).quiescent());
        assert_eq!(
            sim.best_vector(),
            vec![Some(routes::R1), Some(routes::R3), Some(routes::R5)],
            "with every route present from the start, the MED-1 solution wins"
        );

        // r1 delayed in E-BGP: the MED-0 solution wins instead.
        let s = scenario();
        let without_r1: Vec<ExitPathRef> = s
            .exits
            .iter()
            .filter(|p| p.id() != routes::R1)
            .cloned()
            .collect();
        let mut sim = AsyncSim::new(
            &s.topology,
            ProtocolConfig::STANDARD,
            without_r1,
            Box::new(FixedDelay(5)),
        );
        sim.set_mrai(12);
        sim.start();
        sim.schedule(
            100, // after the r1-less system has settled
            ibgp_sim::AsyncEvent::Inject {
                path: mk(routes::R1, 1, 1, nodes::A),
            },
        );
        assert!(sim.run(50_000).quiescent());
        assert_eq!(
            sim.best_vector(),
            vec![Some(routes::R2), Some(routes::R4), Some(routes::R6)],
            "delayed r1 injection lands on the MED-0 solution"
        );
    }

    #[test]
    fn modified_protocol_is_immune_to_the_table1_schedule() {
        let (outcome, _) = run_table1(ProtocolConfig::MODIFIED, symmetric_delay(), 2, 50_000);
        assert!(outcome.quiescent(), "{outcome}");
    }

    #[test]
    fn modified_reaches_the_same_solution_under_many_timings() {
        let mut reference: Option<Vec<Option<ExitPathId>>> = None;
        for seed in 0..8 {
            let s = scenario();
            let mut sim = AsyncSim::new(
                &s.topology,
                ProtocolConfig::MODIFIED,
                s.exits(),
                Box::new(SeededJitter::new(seed, 1, 23)),
            );
            sim.start();
            assert!(sim.run(100_000).quiescent(), "seed {seed}");
            let bv = sim.best_vector();
            match &reference {
                None => reference = Some(bv),
                Some(prev) => assert_eq!(*prev, bv, "seed {seed}"),
            }
        }
        // The unique fixed point is the MED-0 solution: S' = Choose_set of
        // all six routes = {r2, r4, r6}.
        assert_eq!(
            reference.unwrap(),
            vec![Some(routes::R2), Some(routes::R4), Some(routes::R6)]
        );
    }
}
