//! Figure 14: the Dube–Scudder forwarding-loop configuration.
//!
//! Two clusters — reflector `RR1` with client `c1`, reflector `RR2` with
//! client `c2` — on the physical path `RR1 – c2 – c1 – RR2` (every link
//! cost 5): each reflector's I-BGP session to its own client runs
//! *through the other cluster's client*. Equal-attribute routes `r1` (at
//! `RR1`) and `r2` (at `RR2`).
//!
//! Under standard I-BGP each reflector prefers its own E-BGP route and
//! advertises only it, so `c1` hears only `r1` (exit `RR1`, next hop
//! `c2`) and `c2` hears only `r2` (exit `RR2`, next hop `c1`): packets
//! from either client ping-pong `c1 ↔ c2` forever. The Walton et al.
//! vector changes nothing (one neighboring AS). The modified protocol
//! advertises both routes (`S′ = {r1, r2}`); each client then picks the
//! *nearer* exit and the loop disappears — the paper's example of the
//! modification repairing even a "badly configured" system.

use crate::Scenario;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, Med, RouterId};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// First reflector, exit point of `r1`.
    pub const RR1: RouterId = RouterId(0);
    /// Second reflector, exit point of `r2`.
    pub const RR2: RouterId = RouterId(1);
    /// RR1's client (physically adjacent to RR2).
    pub const C1: RouterId = RouterId(2);
    /// RR2's client (physically adjacent to RR1).
    pub const C2: RouterId = RouterId(3);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// Route injected at RR1.
    pub const R1: ExitPathId = ExitPathId(1);
    /// Route injected at RR2.
    pub const R2: ExitPathId = ExitPathId(2);
}

/// Build the Fig 14 scenario.
pub fn scenario() -> Scenario {
    let topology = TopologyBuilder::new(4)
        .link(nodes::RR1.raw(), nodes::C2.raw(), 5)
        .link(nodes::C2.raw(), nodes::C1.raw(), 5)
        .link(nodes::C1.raw(), nodes::RR2.raw(), 5)
        .cluster([nodes::RR1.raw()], [nodes::C1.raw()])
        .cluster([nodes::RR2.raw()], [nodes::C2.raw()])
        .build()
        .expect("fig14 topology is valid");
    let mk = |id: ExitPathId, at: RouterId| -> ExitPathRef {
        Arc::new(
            ExitPath::builder(id)
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(at)
                .build_unchecked(),
        )
    };
    Scenario {
        name: "fig14",
        description: "routing loop between clients under standard I-BGP reflection; repaired by the modified protocol",
        topology,
        exits: vec![mk(routes::R1, nodes::RR1), mk(routes::R2, nodes::RR2)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::{forward_from, forwarding_loops};
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_sim::{Engine, RoundRobin, SyncEngine};
    use ibgp_types::Route;

    fn converge(config: ProtocolConfig) -> (Scenario, SyncEngineBests) {
        let s = scenario();
        let mut eng = SyncEngine::new(&s.topology, config, s.exits());
        assert!(eng.run(&mut RoundRobin::new(), 1_000).converged());
        let bests: Vec<Option<Route>> = s
            .topology
            .routers()
            .map(|u| eng.best_route(u).cloned())
            .collect();
        (s, SyncEngineBests(bests))
    }

    struct SyncEngineBests(Vec<Option<Route>>);

    impl SyncEngineBests {
        fn f(&self) -> impl Fn(RouterId) -> Option<Route> + '_ {
            move |u: RouterId| self.0[u.index()].clone()
        }
    }

    #[test]
    fn physical_geometry() {
        let s = scenario();
        // Each client is *closer* to the foreign reflector.
        let d = |u, v| s.topology.igp_cost(u, v).raw();
        assert_eq!(d(nodes::C1, nodes::RR2), 5);
        assert_eq!(d(nodes::C1, nodes::RR1), 10);
        assert_eq!(d(nodes::C2, nodes::RR1), 5);
        assert_eq!(d(nodes::C2, nodes::RR2), 10);
    }

    #[test]
    fn standard_protocol_creates_the_loop() {
        let (s, bests) = converge(ProtocolConfig::STANDARD);
        let best = bests.f();
        // Each client only ever hears its own reflector's route.
        assert_eq!(best(nodes::C1).unwrap().exit_id(), routes::R1);
        assert_eq!(best(nodes::C2).unwrap().exit_id(), routes::R2);
        // And forwarding ping-pongs between the clients.
        let res = forward_from(&s.topology, &best, nodes::C1);
        assert!(res.looped(), "expected loop, got {res}");
        let loops = forwarding_loops(&s.topology, &best);
        assert!(!loops.is_empty());
        let (_, cycle) = &loops[0];
        assert!(
            cycle.contains(&nodes::C1) && cycle.contains(&nodes::C2),
            "{cycle:?}"
        );
    }

    #[test]
    fn walton_does_not_repair_the_loop() {
        // One neighboring AS: the Walton vector equals the single best.
        let (s, bests) = converge(ProtocolConfig::WALTON);
        let best = bests.f();
        assert_eq!(best(nodes::C1).unwrap().exit_id(), routes::R1);
        assert_eq!(best(nodes::C2).unwrap().exit_id(), routes::R2);
        assert!(!forwarding_loops(&s.topology, &best).is_empty());
    }

    #[test]
    fn modified_protocol_removes_the_loop() {
        let (s, bests) = converge(ProtocolConfig::MODIFIED);
        let best = bests.f();
        // Both routes are advertised; each client picks the nearer exit.
        assert_eq!(best(nodes::C1).unwrap().exit_id(), routes::R2);
        assert_eq!(best(nodes::C2).unwrap().exit_id(), routes::R1);
        assert!(forwarding_loops(&s.topology, &best).is_empty());
        // Every packet really leaves the AS.
        for u in s.topology.routers() {
            let res = forward_from(&s.topology, &best, u);
            assert!(res.delivered(), "{u}: {res}");
        }
    }
}
