//! Registry of all paper scenarios.

use crate::{fig12, fig13, fig14, fig1a, fig1b, fig2, fig3, Scenario};

/// Every paper figure as a scenario, in figure order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        fig1a::scenario(),
        fig1b::scenario(),
        fig2::scenario(),
        fig3::scenario(),
        fig12::scenario(),
        fig13::scenario(),
        fig14::scenario(),
    ]
}

/// Look a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_complete() {
        let all = all_scenarios();
        assert_eq!(all.len(), 7);
        let mut names: Vec<_> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7, "duplicate scenario names");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("fig2").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(by_name("fig14").unwrap().name, "fig14");
    }

    #[test]
    fn every_scenario_has_exits_and_a_connected_topology() {
        for s in all_scenarios() {
            assert!(!s.exits.is_empty(), "{}", s.name);
            assert!(s.topology.physical().is_connected(), "{}", s.name);
            assert!(!s.description.is_empty());
        }
    }
}
