//! Figure 2: transient oscillation with two stable solutions.
//!
//! Two clusters — reflector `RR1` with border-router client `c1`,
//! reflector `RR2` with client `c2`. One external route is injected at
//! each client (`r1` at `c1`, `r2` at `c2`), both through the **same**
//! neighboring AS with identical LOCAL-PREF, AS-PATH length, and MED 0.
//! The dotted "extra IGP links over which no I-BGP session runs" of the
//! figure are modeled directly: each reflector has a *cheap physical
//! link to the other cluster's client* (cost 1) and an expensive one to
//! its own (cost 10), so each reflector prefers the other cluster's exit.
//!
//! Consequences, exactly as §3 describes:
//!
//! * there are **two** stable configurations (both reflectors on `r1`,
//!   or both on `r2`);
//! * with simultaneous message exchange the reflectors adopt each
//!   other's route, withdraw their own, lose both, and revert — forever;
//! * sequential (lucky) orderings reach one of the stable solutions —
//!   *which* one depends on the order;
//! * Walton et al. changes nothing (a single neighboring AS means the
//!   per-AS vector *is* the classical best);
//! * the modified protocol converges to the same configuration under
//!   every ordering.

use crate::Scenario;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, Med, RouterId};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// First route reflector.
    pub const RR1: RouterId = RouterId(0);
    /// Second route reflector.
    pub const RR2: RouterId = RouterId(1);
    /// RR1's client, exit point of `r1`.
    pub const C1: RouterId = RouterId(2);
    /// RR2's client, exit point of `r2`.
    pub const C2: RouterId = RouterId(3);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// Route injected at `c1`.
    pub const R1: ExitPathId = ExitPathId(1);
    /// Route injected at `c2`.
    pub const R2: ExitPathId = ExitPathId(2);
}

/// Build the Fig 2 scenario.
pub fn scenario() -> Scenario {
    let topology = TopologyBuilder::new(4)
        .link(nodes::RR1.raw(), nodes::C1.raw(), 10)
        .link(nodes::RR1.raw(), nodes::C2.raw(), 1) // dotted IGP-only link
        .link(nodes::RR2.raw(), nodes::C2.raw(), 10)
        .link(nodes::RR2.raw(), nodes::C1.raw(), 1) // dotted IGP-only link
        .cluster([nodes::RR1.raw()], [nodes::C1.raw()])
        .cluster([nodes::RR2.raw()], [nodes::C2.raw()])
        .build()
        .expect("fig2 topology is valid");

    let mk = |id: ExitPathId, at: RouterId| -> ExitPathRef {
        Arc::new(
            ExitPath::builder(id)
                .via(AsId::new(1)) // single neighboring AS
                .med(Med::new(0))
                .exit_point(at)
                .build_unchecked(),
        )
    };

    Scenario {
        name: "fig2",
        description:
            "transient oscillation: two stable solutions, outcome decided by message ordering",
        topology,
        exits: vec![mk(routes::R1, nodes::C1), mk(routes::R2, nodes::C2)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::{
        classify, determinism_report, enumerate_stable_standard, ExploreOptions, OscillationClass,
    };
    use ibgp_proto::selection::SelectionPolicy;
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_sim::{AllAtOnce, Engine, Scripted, SyncEngine};

    const MAX_STATES: usize = 300_000;

    #[test]
    fn exactly_two_stable_solutions_exist() {
        let s = scenario();
        let e =
            enumerate_stable_standard(&s.topology, SelectionPolicy::PAPER, &s.exits, 10_000_000)
                .unwrap();
        assert_eq!(e.fixed_points.len(), 2, "{:?}", e.fixed_points);
        // In one, both reflectors use r1; in the other, both use r2.
        let rr_pair = |fp: &Vec<Option<ibgp_types::ExitPathId>>| {
            (fp[nodes::RR1.index()], fp[nodes::RR2.index()])
        };
        let mut pairs: Vec<_> = e.fixed_points.iter().map(rr_pair).collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (Some(routes::R1), Some(routes::R1)),
                (Some(routes::R2), Some(routes::R2)),
            ]
        );
    }

    #[test]
    fn standard_is_transient_and_modified_is_stable() {
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::STANDARD,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Transient, "{reach:?}");
        assert_eq!(reach.stable_vectors.len(), 2);

        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::MODIFIED,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Stable, "{reach:?}");
    }

    #[test]
    fn simultaneous_exchange_cycles_forever() {
        let s = scenario();
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::STANDARD, s.exits());
        let outcome = eng.run(&mut AllAtOnce, 10_000);
        assert!(outcome.cycled(), "{outcome}");
    }

    #[test]
    fn sequential_orderings_reach_different_stable_solutions() {
        let s = scenario();
        // RR1 first: c1 announces, RR1 adopts r1 and tells RR2 before c2's
        // route reaches RR2... order: c1, RR1, c2, RR2.
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::STANDARD, s.exits());
        let mut sched = Scripted::singletons([2, 0, 1, 3]);
        let outcome = eng.run(&mut sched, 1_000);
        assert!(outcome.converged(), "{outcome}");
        let first = (eng.best_exit(nodes::RR1), eng.best_exit(nodes::RR2));

        // Mirror image: c2, RR2, RR1 ...
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::STANDARD, s.exits());
        let mut sched = Scripted::singletons([3, 1, 0, 2]);
        let outcome = eng.run(&mut sched, 1_000);
        assert!(outcome.converged(), "{outcome}");
        let second = (eng.best_exit(nodes::RR1), eng.best_exit(nodes::RR2));

        assert_ne!(first, second, "order must determine the outcome");
        assert_eq!(first.0, first.1, "stable solutions agree across reflectors");
        assert_eq!(second.0, second.1);
    }

    #[test]
    fn walton_behaves_exactly_like_standard_here() {
        // One neighboring AS: the Walton vector degenerates to the single
        // best route, so the transient classification is identical.
        let s = scenario();
        let (class, reach) = classify(
            &s.topology,
            ProtocolConfig::WALTON,
            &s.exits,
            ExploreOptions::new().max_states(MAX_STATES),
        );
        assert_eq!(class, OscillationClass::Transient, "{reach:?}");
        assert_eq!(reach.stable_vectors.len(), 2);
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::WALTON, s.exits());
        let outcome = eng.run(&mut AllAtOnce, 10_000);
        assert!(outcome.cycled(), "{outcome}");
    }

    #[test]
    fn modified_is_deterministic_across_many_schedules() {
        let s = scenario();
        let report =
            determinism_report(&s.topology, ProtocolConfig::MODIFIED, &s.exits, 12, 10_000);
        assert!(report.deterministic(), "{report:?}");
        // And the unique outcome routes each reflector to the nearer exit.
        let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::MODIFIED, s.exits());
        assert!(eng.run(&mut AllAtOnce, 1_000).converged());
        assert_eq!(eng.best_exit(nodes::RR1), Some(routes::R2));
        assert_eq!(eng.best_exit(nodes::RR2), Some(routes::R1));
    }
}
