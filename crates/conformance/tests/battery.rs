//! The committed cbgp-ported conformance battery.
//!
//! Every `scenarios/*.conf` file is parsed and executed by the generic
//! runner; a scenario failing any of its golden expected-RIB assertions
//! fails this test with the offending file, line, and observed state.

use std::path::PathBuf;

fn scenario_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn scenario_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenario_dir())
        .expect("scenarios/ directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "conf"))
        .collect();
    files.sort();
    files
}

#[test]
fn the_committed_battery_is_present_and_complete() {
    let names: Vec<String> = scenario_files()
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    for expected in ["bgp_rr", "bgp_rr_example", "bgp_rr_originator_id_ssld"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing committed scenario `{expected}` (have {names:?})"
        );
    }
}

#[test]
fn every_committed_scenario_passes() {
    let files = scenario_files();
    assert!(!files.is_empty(), "no scenario files found");
    let mut failed = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).unwrap();
        match ibgp_conformance::run_file_text(&text) {
            Ok(report) => {
                assert!(report.checked > 0, "{}: no assertions ran", path.display());
                if !report.passed() {
                    for f in &report.failures {
                        failed.push(format!("{}: {f}", path.display()));
                    }
                }
            }
            Err(e) => failed.push(format!("{}: {e}", path.display())),
        }
    }
    assert!(failed.is_empty(), "\n{}", failed.join("\n"));
}

#[test]
fn scenario_names_match_their_file_stems() {
    // Keeps reports attributable: a failure names the scenario, the
    // file name finds it.
    for path in scenario_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let s = ibgp_conformance::parse(&text).unwrap();
        assert_eq!(
            s.name,
            path.file_stem().unwrap().to_string_lossy(),
            "{}",
            path.display()
        );
    }
}
