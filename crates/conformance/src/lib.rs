//! A declarative conformance harness for the message-level reflection
//! mechanics (`--loop-prevention`): ORIGINATOR_ID, CLUSTER_LIST, SSLD
//! and the reflect-to-whom matrix.
//!
//! Each scenario is a plain-text data file — topology, I-BGP sessions,
//! injected E-BGP routes, and per-router expected-RIB assertions — and
//! one generic runner ([`run`]) executes all of them identically: build
//! the topology, simulate each injected route as its own prefix (one
//! [`SyncEngine`] per exit, loop prevention on) to a fixed point under
//! round-robin activation, then check every `expect` line. Porting a
//! scenario from another implementation (the committed battery comes
//! from cbgp's regression suite) means writing a data file, not a test
//! function.
//!
//! # Format
//!
//! Line-oriented, `#` comments, blank lines ignored:
//!
//! ```text
//! conformance 1
//! name bgp_rr
//! routers 5
//! link U V COST          # physical (IGP) edge
//! peer U V               # conventional I-BGP session
//! client RR C            # RR reflects for client C
//! exit P at R            # inject exit path P (its own prefix) at R
//! expect route R P       # R selects P at the fixed point
//! expect no-route R P    # R never learns P
//! expect originator R P O
//! expect cluster-list R P [ids...]   # stored CLUSTER_LIST, outermost first
//! expect rr-from R P self|F          # whom R's stored copy came from
//! expect never-sent V U P            # V's send filter excludes P toward U
//! ```
//!
//! Router ids are 0-based indices below `routers`; exit-path ids are
//! nonzero. Every assertion names the exit path it constrains, so one
//! file can cover several prefixes (each still simulated in isolation).

use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::{Engine as _, RoundRobin, SyncEngine};
use ibgp_topology::{Topology, TopologyBuilder};
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, RouterId};
use std::fmt;
use std::sync::Arc;

/// Steps each per-prefix simulation may take before the runner calls the
/// scenario broken. The battery's topologies converge in well under 20.
const MAX_STEPS: u64 = 10_000;

/// One expected-RIB assertion (an `expect` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expect {
    /// `R` selects path `P` at the fixed point.
    Route(RouterId, ExitPathId),
    /// `R` never learns path `P`.
    NoRoute(RouterId, ExitPathId),
    /// ORIGINATOR_ID of `P` at `R`.
    Originator(RouterId, ExitPathId, RouterId),
    /// The stored CLUSTER_LIST of `P` at `R`, outermost stamp first.
    ClusterList(RouterId, ExitPathId, Vec<RouterId>),
    /// Whom `R`'s stored copy of `P` was learned from (`None` = own
    /// E-BGP route).
    RrFrom(RouterId, ExitPathId, Option<RouterId>),
    /// `V`'s send filter excludes `P` toward peer `U` (SSLD and the
    /// reflect-to-whom matrix are sender-side, so this is checkable at
    /// the fixed point).
    NeverSent(RouterId, RouterId, ExitPathId),
}

/// A parsed conformance scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name (the `name` directive).
    pub name: String,
    /// Router count.
    pub routers: usize,
    /// Physical edges `(u, v, cost)`.
    pub links: Vec<(u32, u32, u64)>,
    /// Conventional I-BGP sessions.
    pub peers: Vec<(u32, u32)>,
    /// `(reflector, client)` session edges.
    pub clients: Vec<(u32, u32)>,
    /// Injected exit paths `(id, exit point)` — one prefix each.
    pub exits: Vec<(u32, u32)>,
    /// The assertions, in file order.
    pub expects: Vec<(usize, Expect)>,
}

/// A parse error, pinned to its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str, ln: usize) -> Result<T, ParseError> {
    tok.parse()
        .map_err(|_| err(ln, format!("invalid {what} `{tok}`")))
}

/// Parse one scenario file.
pub fn parse(text: &str) -> Result<Scenario, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());
    match lines.next() {
        Some((_, "conformance 1")) => {}
        Some((ln, other)) => {
            return Err(err(ln, format!("expected `conformance 1`, got `{other}`")))
        }
        None => return Err(err(1, "empty scenario")),
    }
    let mut name = None;
    let mut routers = None;
    let mut scenario = Scenario {
        name: String::new(),
        routers: 0,
        links: Vec::new(),
        peers: Vec::new(),
        clients: Vec::new(),
        exits: Vec::new(),
        expects: Vec::new(),
    };
    for (ln, line) in lines {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let want = |n: usize| -> Result<(), ParseError> {
            if toks.len() == n {
                Ok(())
            } else {
                Err(err(
                    ln,
                    format!("`{}` takes {} argument(s), got {}", toks[0], n - 1, toks.len() - 1),
                ))
            }
        };
        // Router references are validated after the full file is read
        // (the `routers` line need not come first); exit ids here.
        match toks[0] {
            "name" => {
                want(2)?;
                if name.replace(toks[1].to_string()).is_some() {
                    return Err(err(ln, "duplicate `name`"));
                }
            }
            "routers" => {
                want(2)?;
                let n: usize = parse_num(toks[1], "router count", ln)?;
                if n == 0 {
                    return Err(err(ln, "`routers` must be at least 1"));
                }
                if routers.replace(n).is_some() {
                    return Err(err(ln, "duplicate `routers`"));
                }
            }
            "link" => {
                want(4)?;
                scenario.links.push((
                    parse_num(toks[1], "router id", ln)?,
                    parse_num(toks[2], "router id", ln)?,
                    parse_num(toks[3], "link cost", ln)?,
                ));
            }
            "peer" => {
                want(3)?;
                scenario.peers.push((
                    parse_num(toks[1], "router id", ln)?,
                    parse_num(toks[2], "router id", ln)?,
                ));
            }
            "client" => {
                want(3)?;
                scenario.clients.push((
                    parse_num(toks[1], "router id", ln)?,
                    parse_num(toks[2], "router id", ln)?,
                ));
            }
            "exit" => {
                want(4)?;
                if toks[2] != "at" {
                    return Err(err(ln, "expected `exit P at R`"));
                }
                let id: u32 = parse_num(toks[1], "exit path id", ln)?;
                if id == 0 || id == u32::MAX {
                    return Err(err(ln, format!("exit path id {id} is reserved")));
                }
                if scenario.exits.iter().any(|(e, _)| *e == id) {
                    return Err(err(ln, format!("duplicate exit path id {id}")));
                }
                scenario
                    .exits
                    .push((id, parse_num(toks[3], "router id", ln)?));
            }
            "expect" => {
                let e = parse_expect(&toks, ln)?;
                scenario.expects.push((ln, e));
            }
            other => return Err(err(ln, format!("unknown directive `{other}`"))),
        }
    }
    scenario.name = name.ok_or_else(|| err(1, "missing `name`"))?;
    scenario.routers = routers.ok_or_else(|| err(1, "missing `routers`"))?;
    if scenario.exits.is_empty() {
        return Err(err(1, "scenario injects no exit paths"));
    }
    if scenario.expects.is_empty() {
        return Err(err(1, "scenario asserts nothing"));
    }
    validate_refs(&scenario)?;
    Ok(scenario)
}

fn parse_expect(toks: &[&str], ln: usize) -> Result<Expect, ParseError> {
    let r = |tok: &str| -> Result<RouterId, ParseError> {
        Ok(RouterId::new(parse_num(tok, "router id", ln)?))
    };
    let p = |tok: &str| -> Result<ExitPathId, ParseError> {
        Ok(ExitPathId::new(parse_num(tok, "exit path id", ln)?))
    };
    let want = |n: usize| -> Result<(), ParseError> {
        if toks.len() == n {
            Ok(())
        } else {
            Err(err(
                ln,
                format!(
                    "`expect {}` takes {} argument(s), got {}",
                    toks[1],
                    n - 2,
                    toks.len() - 2
                ),
            ))
        }
    };
    if toks.len() < 2 {
        return Err(err(ln, "`expect` needs an assertion kind"));
    }
    match toks[1] {
        "route" => {
            want(4)?;
            Ok(Expect::Route(r(toks[2])?, p(toks[3])?))
        }
        "no-route" => {
            want(4)?;
            Ok(Expect::NoRoute(r(toks[2])?, p(toks[3])?))
        }
        "originator" => {
            want(5)?;
            Ok(Expect::Originator(r(toks[2])?, p(toks[3])?, r(toks[4])?))
        }
        "cluster-list" => {
            if toks.len() < 4 {
                return Err(err(ln, "`expect cluster-list` takes R P [ids...]"));
            }
            let ids = toks[4..].iter().map(|t| r(t)).collect::<Result<_, _>>()?;
            Ok(Expect::ClusterList(r(toks[2])?, p(toks[3])?, ids))
        }
        "rr-from" => {
            want(5)?;
            let from = if toks[4] == "self" {
                None
            } else {
                Some(r(toks[4])?)
            };
            Ok(Expect::RrFrom(r(toks[2])?, p(toks[3])?, from))
        }
        "never-sent" => {
            want(5)?;
            Ok(Expect::NeverSent(r(toks[2])?, r(toks[3])?, p(toks[4])?))
        }
        other => Err(err(ln, format!("unknown assertion `{other}`"))),
    }
}

/// Check every router / exit-path reference against the declared sets.
fn validate_refs(s: &Scenario) -> Result<(), ParseError> {
    let n = s.routers as u32;
    let in_range = |x: u32| x < n;
    let known_exit = |id: ExitPathId| s.exits.iter().any(|(e, _)| ExitPathId::new(*e) == id);
    for (u, v, _) in &s.links {
        if !in_range(*u) || !in_range(*v) {
            return Err(err(1, format!("link {u}-{v} references a router >= {n}")));
        }
    }
    for (u, v) in s.peers.iter().chain(s.clients.iter()) {
        if !in_range(*u) || !in_range(*v) {
            return Err(err(1, format!("session {u}-{v} references a router >= {n}")));
        }
    }
    for (id, at) in &s.exits {
        if !in_range(*at) {
            return Err(err(1, format!("exit {id} injected at router {at} >= {n}")));
        }
    }
    for (ln, e) in &s.expects {
        let (rs, path): (Vec<RouterId>, ExitPathId) = match e {
            Expect::Route(r, p) | Expect::NoRoute(r, p) => (vec![*r], *p),
            Expect::Originator(r, p, o) => (vec![*r, *o], *p),
            Expect::ClusterList(r, p, ids) => {
                let mut v = vec![*r];
                v.extend(ids);
                (v, *p)
            }
            Expect::RrFrom(r, p, f) => {
                let mut v = vec![*r];
                v.extend(f);
                (v, *p)
            }
            Expect::NeverSent(v, u, p) => (vec![*v, *u], *p),
        };
        for r in rs {
            if !in_range(r.raw()) {
                return Err(err(*ln, format!("router {r} out of range (>= {n})")));
            }
        }
        if !known_exit(path) {
            return Err(err(*ln, format!("exit path {path} is never injected")));
        }
    }
    Ok(())
}

/// One failed assertion: the line it came from plus what the simulation
/// actually produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// 1-based line of the violated `expect`.
    pub line: usize,
    /// The assertion.
    pub expect: Expect,
    /// Human-readable account of the observed state.
    pub observed: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: {:?} failed — {}",
            self.line, self.expect, self.observed
        )
    }
}

/// The outcome of running one scenario: assertion counts plus every
/// failure (empty = conformant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Scenario name.
    pub name: String,
    /// Assertions checked.
    pub checked: usize,
    /// Assertions violated.
    pub failures: Vec<Failure>,
}

impl Report {
    /// Whether every assertion held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A scenario that cannot be executed at all (as opposed to one whose
/// assertions fail): bad topology or a prefix that never converges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError(pub String);

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RunError {}

fn build_topology(s: &Scenario) -> Result<Topology, RunError> {
    let mut b = TopologyBuilder::new(s.routers);
    for (u, v, cost) in &s.links {
        b = b.link(*u, *v, *cost);
    }
    for (u, v) in &s.peers {
        b = b.peer(*u, *v);
    }
    for (rr, c) in &s.clients {
        b = b.rr_client(*rr, *c);
    }
    b.build()
        .map_err(|e| RunError(format!("scenario `{}`: bad topology: {e}", s.name)))
}

fn exit_ref(id: u32, at: u32) -> ExitPathRef {
    Arc::new(
        ExitPath::builder(ExitPathId::new(id))
            .via(AsId::new(id))
            .exit_point(RouterId::new(at))
            .build_unchecked(),
    )
}

/// Run one scenario: each injected exit is its own prefix, simulated in
/// isolation with loop prevention on, round-robin to a fixed point; then
/// every assertion is checked against its prefix's engine.
pub fn run(s: &Scenario) -> Result<Report, RunError> {
    let topo = build_topology(s)?;
    let mut engines = Vec::new();
    for (id, at) in &s.exits {
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit_ref(*id, *at)]);
        eng.set_loop_prevention(true);
        let outcome = eng.run(&mut RoundRobin::new(), MAX_STEPS);
        if !outcome.converged() {
            return Err(RunError(format!(
                "scenario `{}`: prefix {id} did not converge in {MAX_STEPS} steps ({outcome})",
                s.name
            )));
        }
        engines.push((ExitPathId::new(*id), eng));
    }
    let engine = |p: ExitPathId| &engines.iter().find(|(id, _)| *id == p).unwrap().1;
    let mut failures = Vec::new();
    for (ln, e) in &s.expects {
        let observed = check(e, engine(expect_path(e)));
        if let Some(observed) = observed {
            failures.push(Failure {
                line: *ln,
                expect: e.clone(),
                observed,
            });
        }
    }
    Ok(Report {
        name: s.name.clone(),
        checked: s.expects.len(),
        failures,
    })
}

fn expect_path(e: &Expect) -> ExitPathId {
    match e {
        Expect::Route(_, p)
        | Expect::NoRoute(_, p)
        | Expect::Originator(_, p, _)
        | Expect::ClusterList(_, p, _)
        | Expect::RrFrom(_, p, _)
        | Expect::NeverSent(_, _, p) => *p,
    }
}

/// `None` = the assertion holds; `Some(observed)` = what the fixed point
/// actually looks like.
fn check(e: &Expect, eng: &SyncEngine<'_>) -> Option<String> {
    match e {
        Expect::Route(r, p) => {
            let best = eng.best_exit(*r);
            (best != Some(*p)).then(|| format!("best at {r} is {best:?}"))
        }
        Expect::NoRoute(r, p) => {
            let known = eng.possible_exits(*r).iter().any(|q| q.id() == *p);
            known.then(|| format!("{r} knows path {p} (best {:?})", eng.best_exit(*r)))
        }
        Expect::Originator(r, p, want) => {
            let got = eng.originator(*r, *p);
            (got != Some(*want)).then(|| format!("originator of {p} at {r} is {got:?}"))
        }
        Expect::ClusterList(r, p, want) => {
            let got = eng.cluster_list(*r, *p);
            (got != Some(&want[..])).then(|| format!("cluster list of {p} at {r} is {got:?}"))
        }
        Expect::RrFrom(r, p, want) => {
            let got = eng.rr_from(*r, *p);
            (got != Some(*want)).then(|| format!("{r}'s copy of {p} was learned from {got:?}"))
        }
        Expect::NeverSent(v, u, p) => {
            let sent = eng.outgoing_to(*v, *u);
            sent.contains(p)
                .then(|| format!("{v} advertises {sent:?} to {u} (must exclude {p})"))
        }
    }
}

/// Parse and run in one step — what the battery test and the CI smoke
/// job call per committed file.
pub fn run_file_text(text: &str) -> Result<Report, String> {
    let s = parse(text).map_err(|e| e.to_string())?;
    run(&s).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
conformance 1
name minimal
routers 2
link 0 1 1
peer 0 1
exit 1 at 0
expect route 0 1
expect route 1 1
expect originator 1 1 0
expect cluster-list 1 1
expect rr-from 1 1 0
expect never-sent 1 0 1
";

    #[test]
    fn minimal_scenario_parses_runs_and_passes() {
        let s = parse(MINIMAL).unwrap();
        assert_eq!(s.name, "minimal");
        assert_eq!(s.routers, 2);
        assert_eq!(s.exits, vec![(1, 0)]);
        let report = run(&s).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked, 6);
    }

    #[test]
    fn failures_carry_the_line_and_the_observed_state() {
        // Claim router 1 never hears the route; it does.
        let text = MINIMAL.replace("expect route 1 1", "expect no-route 1 1");
        let s = parse(&text).unwrap();
        let report = run(&s).unwrap();
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert_eq!(f.line, 8);
        assert_eq!(f.expect, Expect::NoRoute(RouterId::new(1), ExitPathId::new(1)));
        assert!(f.observed.contains("knows path"), "{}", f.observed);
        assert!(f.to_string().contains("line 8"), "{f}");
    }

    #[test]
    fn parser_rejects_malformed_files_with_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("", 1, "empty scenario"),
            ("ibgp 1\n", 1, "expected `conformance 1`"),
            ("conformance 1\nname a\nbogus 3\n", 3, "unknown directive"),
            ("conformance 1\nname a\nname b\n", 3, "duplicate `name`"),
            ("conformance 1\nrouters 0\n", 2, "at least 1"),
            ("conformance 1\nname a\nrouters 2\nrouters 2\n", 4, "duplicate `routers`"),
            ("conformance 1\nname a\nrouters 2\nlink 0 1\n", 4, "takes 3 argument(s)"),
            ("conformance 1\nname a\nrouters 2\nexit 1 by 0\n", 4, "expected `exit P at R`"),
            ("conformance 1\nname a\nrouters 2\nexit 0 at 0\n", 4, "reserved"),
            (
                "conformance 1\nname a\nrouters 2\nexit 1 at 0\nexit 1 at 1\n",
                5,
                "duplicate exit path id",
            ),
            (
                "conformance 1\nname a\nrouters 2\nexit 1 at 0\nexpect teleport 0 1\n",
                5,
                "unknown assertion",
            ),
            (
                "conformance 1\nname a\nrouters 2\nexit 1 at 0\nexpect route 0\n",
                5,
                "takes 2 argument(s)",
            ),
            (
                "conformance 1\nname a\nrouters 2\nexit 1 at 0\nexpect route 9 1\n",
                5,
                "out of range",
            ),
            (
                "conformance 1\nname a\nrouters 2\nexit 1 at 0\nexpect route 0 7\n",
                5,
                "never injected",
            ),
        ];
        for (text, line, needle) in cases {
            let e = parse(text).expect_err(text);
            assert_eq!(e.line, *line, "{text:?} -> {e}");
            assert!(e.message.contains(needle), "{text:?} -> {e}");
        }
        // Structural omissions are reported even without a specific line.
        for (text, needle) in [
            ("conformance 1\nrouters 2\nexit 1 at 0\nexpect route 0 1\n", "missing `name`"),
            ("conformance 1\nname a\nexit 1 at 0\nexpect route 0 1\n", "missing `routers`"),
            ("conformance 1\nname a\nrouters 2\nexpect route 0 1\n", "injects no exit paths"),
            ("conformance 1\nname a\nrouters 2\nexit 1 at 0\n", "asserts nothing"),
        ] {
            let e = parse(text).expect_err(text);
            assert!(e.message.contains(needle), "{text:?} -> {e}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# ported from somewhere\n\n{MINIMAL}\n# trailing\n");
        let shifted = parse(&text).unwrap();
        let plain = parse(MINIMAL).unwrap();
        // Identical up to the line numbers the comment shifts.
        let strip = |s: &Scenario| {
            let mut s = s.clone();
            for (ln, _) in &mut s.expects {
                *ln = 0;
            }
            s
        };
        assert_eq!(strip(&shifted), strip(&plain));
    }
}
