//! Machine- and human-readable experiment reports.
//!
//! The `experiments` binary (crates/bench) regenerates every paper
//! artifact and emits one [`ExperimentRow`] per claim; EXPERIMENTS.md is
//! rendered from these rows.

use serde::{Deserialize, Serialize};

/// One paper claim and its measured verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Experiment id (DESIGN.md index, e.g. "E1").
    pub id: String,
    /// Paper artifact (e.g. "Fig 1(a)").
    pub artifact: String,
    /// What the paper claims.
    pub paper_claim: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measurement reproduces the claim.
    pub pass: bool,
}

impl ExperimentRow {
    /// Construct a row.
    pub fn new(
        id: impl Into<String>,
        artifact: impl Into<String>,
        paper_claim: impl Into<String>,
        measured: impl Into<String>,
        pass: bool,
    ) -> Self {
        Self {
            id: id.into(),
            artifact: artifact.into(),
            paper_claim: paper_claim.into(),
            measured: measured.into(),
            pass,
        }
    }
}

/// Render rows as a GitHub-flavored Markdown table.
pub fn render_table(rows: &[ExperimentRow]) -> String {
    let mut out = String::from(
        "| Exp | Artifact | Paper claim | Measured | Verdict |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.id,
            r.artifact,
            r.paper_claim,
            r.measured,
            if r.pass { "reproduced" } else { "DIVERGES" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let rows = vec![
            ExperimentRow::new("E1", "Fig 1(a)", "oscillates", "cycle period 4", true),
            ExperimentRow::new("EX", "Fig X", "foo", "bar", false),
        ];
        let table = render_table(&rows);
        assert!(table.contains("| E1 | Fig 1(a) | oscillates | cycle period 4 | reproduced |"));
        assert!(table.contains("DIVERGES"));
        assert!(table.starts_with("| Exp |"));
    }

    #[test]
    fn serde_round_trip() {
        let row = ExperimentRow::new("E2", "Fig 1(b)", "a", "b", true);
        let json = serde_json::to_string(&row).unwrap();
        let back: ExperimentRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, row);
    }
}
