//! The high-level facade: a topology, its injected exit paths, and a
//! protocol configuration, with one-call access to the engines and
//! analyses.

use ibgp_analysis::reachability::Reachability;
use ibgp_analysis::stable::EnumerationTooLarge;
use ibgp_analysis::{
    classify, determinism_report, enumerate_stable_standard, forwarding_loops, DeterminismReport,
    ExploreOptions, OscillationClass,
};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_proto::{ProtocolVariant, SelectionPolicy};
use ibgp_scenarios::Scenario;
use ibgp_sim::{
    Activation, AsyncOutcome, AsyncSim, DelayModel, Engine, Metrics, RoundRobin, SyncEngine,
    SyncOutcome,
};
use ibgp_topology::{Topology, TopologyBuilder, TopologyError};
use ibgp_types::{
    AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, Route, RouterId, SearchBudget,
    VerdictOrigin,
};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Errors assembling a [`Network`].
#[derive(Debug)]
pub enum NetworkError {
    /// The topology failed validation.
    Topology(TopologyError),
    /// An exit path's exit point is not a router of the topology.
    ExitPointOutOfRange(ExitPathId, RouterId),
    /// Two exit paths share an id.
    DuplicateExitId(ExitPathId),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Topology(e) => write!(f, "topology error: {e}"),
            NetworkError::ExitPointOutOfRange(id, at) => {
                write!(f, "exit path {id} has out-of-range exit point {at}")
            }
            NetworkError::DuplicateExitId(id) => write!(f, "duplicate exit path id {id}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<TopologyError> for NetworkError {
    fn from(e: TopologyError) -> Self {
        NetworkError::Topology(e)
    }
}

/// A fully specified experiment: topology + E-BGP exit paths + protocol.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    exits: Vec<ExitPathRef>,
    config: ProtocolConfig,
}

/// Result of a bounded synchronous convergence run.
#[derive(Debug, Clone)]
pub struct ConvergeResult {
    /// How the run ended.
    pub outcome: SyncOutcome,
    /// Best exit of each router at the end.
    pub best_exits: Vec<Option<ExitPathId>>,
    /// The best routes themselves.
    pub best_routes: Vec<Option<Route>>,
    /// Message/churn counters.
    pub metrics: Metrics,
}

impl ConvergeResult {
    /// True when the run converged to a fixed point.
    pub fn converged(&self) -> bool {
        self.outcome.converged()
    }
}

impl Network {
    /// Validate and assemble.
    pub fn new(
        topology: Topology,
        exits: Vec<ExitPathRef>,
        config: ProtocolConfig,
    ) -> Result<Self, NetworkError> {
        let mut seen = HashSet::new();
        for p in &exits {
            if p.exit_point().index() >= topology.len() {
                return Err(NetworkError::ExitPointOutOfRange(p.id(), p.exit_point()));
            }
            if !seen.insert(p.id()) {
                return Err(NetworkError::DuplicateExitId(p.id()));
            }
        }
        Ok(Self {
            topology,
            exits,
            config,
        })
    }

    /// Build from a catalog scenario under the given protocol variant
    /// (with the paper's selection policy).
    pub fn from_scenario(scenario: &Scenario, variant: ProtocolVariant) -> Self {
        Self {
            topology: scenario.topology.clone(),
            exits: scenario.exits.clone(),
            config: ProtocolConfig {
                variant,
                policy: SelectionPolicy::PAPER,
            },
        }
    }

    /// Start a fluent builder.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::new()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The injected exit paths.
    pub fn exits(&self) -> &[ExitPathRef] {
        &self.exits
    }

    /// The protocol configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// The same network under a different protocol configuration.
    pub fn with_config(&self, config: ProtocolConfig) -> Network {
        Network {
            topology: self.topology.clone(),
            exits: self.exits.clone(),
            config,
        }
    }

    /// A fresh synchronous engine over this network.
    pub fn sync_engine(&self) -> SyncEngine<'_> {
        SyncEngine::new(&self.topology, self.config, self.exits.clone())
    }

    /// A fresh asynchronous (message-level) simulator.
    pub fn async_sim(&self, delay: Box<dyn DelayModel>) -> AsyncSim<'_> {
        AsyncSim::new(&self.topology, self.config, self.exits.clone(), delay)
    }

    /// Run the synchronous engine under round-robin activations.
    pub fn converge(&self, max_steps: u64) -> ConvergeResult {
        self.converge_with(&mut RoundRobin::new(), max_steps)
    }

    /// Run the synchronous engine under an explicit activation sequence.
    pub fn converge_with(&self, schedule: &mut dyn Activation, max_steps: u64) -> ConvergeResult {
        let mut engine = self.sync_engine();
        let outcome = engine.run(schedule, max_steps);
        ConvergeResult {
            outcome,
            best_exits: engine.best_vector(),
            best_routes: self
                .topology
                .routers()
                .map(|u| engine.best_route(u).cloned())
                .collect(),
            metrics: engine.metrics(),
        }
    }

    /// Run the asynchronous simulator to quiescence or the event budget.
    pub fn quiesce(
        &self,
        delay: Box<dyn DelayModel>,
        mrai: u64,
        max_events: u64,
    ) -> (AsyncOutcome, Vec<Option<ExitPathId>>, Metrics) {
        let mut sim = self.async_sim(delay);
        if mrai > 0 {
            sim.set_mrai(mrai);
            sim.set_mrai_jitter(0xC0FFEE);
        }
        sim.start();
        let outcome = sim.run(max_events);
        (outcome, sim.best_vector(), sim.metrics())
    }

    /// Exhaustively classify this network's oscillation behaviour.
    pub fn classify(&self, options: ExploreOptions) -> (OscillationClass, Reachability) {
        classify(&self.topology, self.config, &self.exits, options)
    }

    /// Enumerate every stable configuration of the **standard** protocol
    /// on this topology/exit set (ignores the configured variant).
    pub fn stable_solutions(
        &self,
        cap: u64,
    ) -> Result<Vec<Vec<Option<ExitPathId>>>, EnumerationTooLarge> {
        enumerate_stable_standard(&self.topology, self.config.policy, &self.exits, cap)
            .map(|e| e.fixed_points)
    }

    /// Every stable configuration of the **standard** protocol, never
    /// refusing: direct `(|P|+1)^n` enumeration while it fits under
    /// `cap` candidates, falling back to the constraint solver
    /// (`ibgp-solver`) where [`Self::stable_solutions`] bails with
    /// [`EnumerationTooLarge`]. The returned origin says which backend
    /// produced the set ([`VerdictOrigin::Solver`] marks the fallback).
    pub fn stable_solutions_exact(
        &self,
        cap: u64,
    ) -> (Vec<Vec<Option<ExitPathId>>>, VerdictOrigin) {
        match self.stable_solutions(cap) {
            Ok(fps) => (fps, VerdictOrigin::Search),
            Err(_) => {
                let report = ibgp_solver::enumerate_stable(
                    &self.topology,
                    self.config.policy,
                    &self.exits,
                    &SearchBudget::states(usize::MAX),
                );
                debug_assert!(report.complete, "unbounded solver enumeration completes");
                (report.fixed_points, VerdictOrigin::Solver)
            }
        }
    }

    /// Run the determinism sweep (E8): many fair schedules, compare fixed
    /// points.
    pub fn determinism(&self, seeds: u64, max_steps: u64) -> DeterminismReport {
        determinism_report(&self.topology, self.config, &self.exits, seeds, max_steps)
    }

    /// Converge, then walk packets from every router: returns the sources
    /// whose packets enter a forwarding loop.
    pub fn forwarding_loops_after_convergence(
        &self,
        max_steps: u64,
    ) -> Vec<(RouterId, Vec<RouterId>)> {
        let result = self.converge(max_steps);
        let best = |u: RouterId| result.best_routes[u.index()].clone();
        forwarding_loops(&self.topology, &best)
    }

    /// Graphviz rendering of the topology.
    pub fn to_dot(&self) -> String {
        ibgp_topology::viz::to_dot(&self.topology)
    }
}

/// Fluent construction of a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    routers: usize,
    links: Vec<(u32, u32, u64)>,
    clusters: Vec<(Vec<u32>, Vec<u32>)>,
    client_sessions: Vec<(u32, u32)>,
    full_mesh: bool,
    exits: Vec<ExitPathRef>,
    config: ProtocolConfig,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// Start with zero routers (set with [`NetworkBuilder::routers`]).
    pub fn new() -> Self {
        Self {
            routers: 0,
            links: Vec::new(),
            clusters: Vec::new(),
            client_sessions: Vec::new(),
            full_mesh: false,
            exits: Vec::new(),
            config: ProtocolConfig::STANDARD,
        }
    }

    /// Number of routers (`0..n`).
    pub fn routers(mut self, n: usize) -> Self {
        self.routers = n;
        self
    }

    /// Add a physical link.
    pub fn link(mut self, u: u32, v: u32, cost: u64) -> Self {
        self.links.push((u, v, cost));
        self
    }

    /// Declare a route-reflection cluster.
    pub fn cluster(
        mut self,
        reflectors: impl IntoIterator<Item = u32>,
        clients: impl IntoIterator<Item = u32>,
    ) -> Self {
        self.clusters.push((
            reflectors.into_iter().collect(),
            clients.into_iter().collect(),
        ));
        self
    }

    /// Declare an intra-cluster client–client session.
    pub fn client_session(mut self, u: u32, v: u32) -> Self {
        self.client_sessions.push((u, v));
        self
    }

    /// Use fully meshed I-BGP instead of clusters.
    pub fn full_mesh(mut self) -> Self {
        self.full_mesh = true;
        self
    }

    /// Inject an exit path: id, exit-point router, neighboring AS, MED.
    pub fn exit_via(mut self, id: u32, at: u32, next_as: u32, med: u32) -> Self {
        self.exits.push(Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(at))
                .build_unchecked(),
        ));
        self
    }

    /// Inject an exit path with an explicit exit cost.
    pub fn exit_with_cost(
        mut self,
        id: u32,
        at: u32,
        next_as: u32,
        med: u32,
        exit_cost: u64,
    ) -> Self {
        self.exits.push(Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(at))
                .exit_cost(IgpCost::new(exit_cost))
                .build_unchecked(),
        ));
        self
    }

    /// Inject a pre-built exit path.
    pub fn exit(mut self, path: ExitPathRef) -> Self {
        self.exits.push(path);
        self
    }

    /// Set the protocol variant (paper selection policy).
    pub fn variant(mut self, variant: ProtocolVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Set the full protocol configuration.
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Network, NetworkError> {
        let mut tb = TopologyBuilder::new(self.routers);
        for (u, v, c) in self.links {
            tb = tb.link(u, v, c);
        }
        for (rs, cs) in self.clusters {
            tb = tb.cluster(rs, cs);
        }
        for (u, v) in self.client_sessions {
            tb = tb.client_session(u, v);
        }
        if self.full_mesh {
            tb = tb.full_mesh();
        }
        let topology = tb.build()?;
        Network::new(topology, self.exits, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_scenarios::fig1a;

    fn disagree(variant: ProtocolVariant) -> Network {
        Network::builder()
            .routers(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .exit_via(1, 2, 1, 0)
            .exit_via(2, 3, 1, 0)
            .variant(variant)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_converge() {
        let n = disagree(ProtocolVariant::Modified);
        let result = n.converge(10_000);
        assert!(result.converged());
        assert_eq!(result.best_exits.len(), 4);
        assert!(result.metrics.messages > 0);
    }

    #[test]
    fn from_scenario_runs_paper_figures() {
        let s = fig1a::scenario();
        let n = Network::from_scenario(&s, ProtocolVariant::Standard);
        let result = n.converge(10_000);
        assert!(result.outcome.cycled(), "{:?}", result.outcome);
        let n = Network::from_scenario(&s, ProtocolVariant::Modified);
        assert!(n.converge(10_000).converged());
    }

    #[test]
    fn classification_is_exposed() {
        let n = disagree(ProtocolVariant::Standard);
        let (class, _) = n.classify(ExploreOptions::new().max_states(100_000));
        assert_eq!(class, OscillationClass::Transient);
    }

    #[test]
    fn stable_solution_enumeration_is_exposed() {
        let n = disagree(ProtocolVariant::Standard);
        let solutions = n.stable_solutions(1_000_000).unwrap();
        assert_eq!(solutions.len(), 2);
    }

    #[test]
    fn exact_enumeration_falls_back_to_the_solver_under_a_tiny_cap() {
        let n = disagree(ProtocolVariant::Standard);
        let (direct, origin) = n.stable_solutions_exact(1_000_000);
        assert_eq!(origin, VerdictOrigin::Search);
        // A cap too small for (|P|+1)^n forces the solver path; the set
        // of fixed points must be identical.
        let (solved, origin) = n.stable_solutions_exact(1);
        assert_eq!(origin, VerdictOrigin::Solver);
        assert_eq!(solved, direct);
        assert_eq!(solved.len(), 2);
    }

    #[test]
    fn determinism_sweep_is_exposed() {
        let n = disagree(ProtocolVariant::Modified);
        assert!(n.determinism(4, 10_000).deterministic());
        let n = disagree(ProtocolVariant::Standard);
        assert!(!n.determinism(4, 10_000).deterministic());
    }

    #[test]
    fn async_quiesce_is_exposed() {
        let n = disagree(ProtocolVariant::Modified);
        let (outcome, bests, _) = n.quiesce(Box::new(ibgp_sim::FixedDelay(2)), 0, 50_000);
        assert!(outcome.quiescent());
        assert_eq!(bests.iter().filter(|b| b.is_some()).count(), 4);
    }

    #[test]
    fn validation_catches_bad_exits() {
        let err = Network::builder()
            .routers(1)
            .cluster([0], [])
            .exit_via(1, 5, 1, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::ExitPointOutOfRange(..)));
        let err = Network::builder()
            .routers(1)
            .cluster([0], [])
            .exit_via(1, 0, 1, 0)
            .exit_via(1, 0, 2, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::DuplicateExitId(..)));
    }

    #[test]
    fn dot_export_works() {
        let n = disagree(ProtocolVariant::Standard);
        assert!(n.to_dot().contains("graph as0"));
    }

    #[test]
    fn forwarding_loops_on_fig14() {
        let s = ibgp_scenarios::fig14::scenario();
        let n = Network::from_scenario(&s, ProtocolVariant::Standard);
        assert!(!n.forwarding_loops_after_convergence(10_000).is_empty());
        let n = Network::from_scenario(&s, ProtocolVariant::Modified);
        assert!(n.forwarding_loops_after_convergence(10_000).is_empty());
    }
}
