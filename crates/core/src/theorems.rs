//! The paper's §7 guarantees as executable checks.
//!
//! For a network running the **modified** protocol the paper proves:
//!
//! 1. **Convergence** — every fair activation sequence reaches a fixed
//!    point (no persistent or transient oscillation);
//! 2. **Uniqueness / determinism** — the fixed point is the same for
//!    every fair sequence, and every node's advertised set converges to
//!    `S′ = Choose_set(⋃ MyExits)` (Lemmas 7.4/7.5);
//! 3. **Loop freedom** — hop-by-hop forwarding on the converged state
//!    never loops (Lemmas 7.6/7.7);
//! 4. **Flush** — withdrawn exit paths disappear from every
//!    `PossibleExits` set (Lemma 7.2).
//!
//! [`verify_paper_theorems`] executes all four on a given topology/exit
//! set and reports each verdict; the property tests and benches drive it
//! over random configurations.

use crate::network::Network;
use ibgp_analysis::{flush_report, forwarding_loops};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_proto::{choose_set, ProtocolVariant};
use ibgp_sim::{Engine, RandomFair, RoundRobin, SyncEngine};
use ibgp_types::{ExitPathId, RouterId};
use serde::{Deserialize, Serialize};

/// Verdicts of the four §7 checks on one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TheoremReport {
    /// Every tested fair schedule converged.
    pub converges: bool,
    /// All runs reached the same best-exit vector.
    pub unique_outcome: bool,
    /// Every node's advertised set equals `S′ = Choose_set(all exits)`
    /// after convergence (Lemma 7.4/7.5).
    pub good_exits_equal_s_prime: bool,
    /// No forwarding loops on the converged state (Lemma 7.6).
    pub loop_free: bool,
    /// A withdrawn exit path flushed from every node (Lemma 7.2);
    /// `None` when the configuration has no exits to withdraw.
    pub flush_ok: Option<bool>,
    /// Number of schedules exercised.
    pub schedules: usize,
}

impl TheoremReport {
    /// All checks passed.
    pub fn all_hold(&self) -> bool {
        self.converges
            && self.unique_outcome
            && self.good_exits_equal_s_prime
            && self.loop_free
            && self.flush_ok.unwrap_or(true)
    }
}

/// Execute the §7 checks on the network's topology and exits, forcing
/// the modified protocol (the theorems are about it).
pub fn verify_paper_theorems(network: &Network, seeds: u64, max_steps: u64) -> TheoremReport {
    let config = ProtocolConfig {
        variant: ProtocolVariant::Modified,
        policy: network.config().policy,
    };
    let network = network.with_config(config);
    let topo = network.topology();
    let exits = network.exits().to_vec();

    // S' = Choose_set over all injected exits.
    let s_prime: Vec<ExitPathId> = {
        let mut ids: Vec<ExitPathId> = choose_set(&exits, config.policy.med_mode)
            .iter()
            .map(|p| p.id())
            .collect();
        ids.sort();
        ids
    };

    let mut converges = true;
    let mut unique_outcome = true;
    let mut good_exits_ok = true;
    let mut loop_free = true;
    let mut reference: Option<Vec<Option<ExitPathId>>> = None;
    let mut schedules = 0;

    let mut run = |mut engine: SyncEngine, schedule: &mut dyn ibgp_sim::Activation| {
        schedules += 1;
        let outcome = engine.run(schedule, max_steps);
        if !outcome.converged() {
            converges = false;
            return;
        }
        let bv = engine.best_vector();
        match &reference {
            None => reference = Some(bv),
            Some(prev) => {
                if *prev != bv {
                    unique_outcome = false;
                }
            }
        }
        // Lemma 7.4/7.5: every node's GoodExits (advertised set under the
        // modified protocol) equals S'.
        for u in topo.routers() {
            let mut adv: Vec<ExitPathId> = engine.advertised(u).iter().map(|p| p.id()).collect();
            adv.sort();
            if adv != s_prime {
                good_exits_ok = false;
            }
        }
        // Lemma 7.6: loop-free forwarding.
        let best = |u: RouterId| engine.best_route(u).cloned();
        if !forwarding_loops(topo, &best).is_empty() {
            loop_free = false;
        }
    };

    run(
        SyncEngine::new(topo, config, exits.clone()),
        &mut RoundRobin::new(),
    );
    for seed in 0..seeds {
        run(
            SyncEngine::new(topo, config, exits.clone()),
            &mut RandomFair::new(seed),
        );
    }

    // Lemma 7.2: withdraw the first exit and require a full flush.
    let flush_ok = exits.first().map(|victim| {
        flush_report(
            topo,
            config,
            &exits,
            victim.id(),
            &mut RoundRobin::new(),
            max_steps,
        )
        .flushed
    });

    TheoremReport {
        converges,
        unique_outcome,
        good_exits_equal_s_prime: good_exits_ok,
        loop_free,
        flush_ok,
        schedules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_scenarios::{all_scenarios, random::random_scenario, random::RandomConfig};

    #[test]
    fn theorems_hold_on_every_paper_scenario() {
        for s in all_scenarios() {
            let n = Network::from_scenario(&s, ProtocolVariant::Modified);
            let report = verify_paper_theorems(&n, 6, 50_000);
            assert!(report.all_hold(), "{}: {report:?}", s.name);
        }
    }

    #[test]
    fn theorems_hold_on_random_configurations() {
        for seed in 0..8 {
            let s = random_scenario(RandomConfig::default(), seed);
            let n = Network::from_scenario(&s, ProtocolVariant::Modified);
            let report = verify_paper_theorems(&n, 4, 100_000);
            assert!(report.all_hold(), "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn standard_protocol_fails_the_uniqueness_check_on_fig2() {
        // Control experiment: running the *standard* protocol through the
        // same harness (by forging the config) must NOT satisfy the
        // uniqueness claim on Fig 2. We emulate by checking determinism
        // directly, since verify_paper_theorems always forces Modified.
        let s = ibgp_scenarios::fig2::scenario();
        let n = Network::from_scenario(&s, ProtocolVariant::Standard);
        assert!(!n.determinism(8, 10_000).deterministic());
    }

    #[test]
    fn report_aggregation() {
        let ok = TheoremReport {
            converges: true,
            unique_outcome: true,
            good_exits_equal_s_prime: true,
            loop_free: true,
            flush_ok: Some(true),
            schedules: 3,
        };
        assert!(ok.all_hold());
        let bad = TheoremReport {
            loop_free: false,
            ..ok.clone()
        };
        assert!(!bad.all_hold());
        let no_flush = TheoremReport {
            flush_ok: None,
            ..ok
        };
        assert!(no_flush.all_hold());
    }
}
