//! # ibgp — route oscillations in I-BGP with route reflection
//!
//! A complete Rust implementation of *Route Oscillations in I-BGP with
//! Route Reflection* (Basu, Ong, Rasala, Shepherd, Wilfong — SIGCOMM
//! 2002): the formal model of I-BGP under route reflection, the paper's
//! provably convergent **modified protocol** (advertise the
//! `Choose_set` survivor set instead of a single best route), the
//! baselines it is compared against (standard I-BGP, the Walton et al.
//! per-neighbor-AS vector, `always-compare-med`, the RFC 1771 rule
//! ordering), two deterministic simulators, exhaustive analyses, and
//! the §5 NP-completeness reduction.
//!
//! ## Quick start
//!
//! ```
//! use ibgp::{Network, ProtocolVariant};
//!
//! // Two clusters; each reflector is IGP-closer to the *other* cluster's
//! // border client — the paper's Fig 2 "DISAGREE" shape.
//! let network = Network::builder()
//!     .routers(4)
//!     .link(0, 2, 10).link(0, 3, 1)
//!     .link(1, 3, 10).link(1, 2, 1)
//!     .cluster([0], [2])
//!     .cluster([1], [3])
//!     .exit_via(1, 2, 1, 0)   // exit path 1 at router 2, AS 1, MED 0
//!     .exit_via(2, 3, 1, 0)
//!     .variant(ProtocolVariant::Modified)
//!     .build()
//!     .unwrap();
//!
//! let result = network.converge(10_000);
//! assert!(result.converged());
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | types | `ibgp-types` | exit paths, routes, attributes |
//! | topology | `ibgp-topology` | physical graph + SPF, clusters/sessions |
//! | protocol | `ibgp-proto` | `Choose_best`, `Choose_set`, `Transfer`, variants |
//! | simulation | `ibgp-sim` | activation-sequence engine, message-level engine |
//! | analysis | `ibgp-analysis` | reachability, stable enumeration, forwarding, determinism |
//! | scenarios | `ibgp-scenarios` | every paper figure + random generators |
//! | complexity | `ibgp-npc` | the 3-SAT reduction + DPLL ground truth |
//! | constraint solving | `ibgp-solver` | CNF encoding of `Choose_best` fixed points + enumerating DPLL |
//! | confederations | `ibgp-confed` | the other oscillating configuration class (extension) |
//! | hierarchies | `ibgp-hierarchy` | arbitrarily deep route reflection (extension) |
//! | hunting | `ibgp-hunt` | `.ibgp` scenario format, seeded campaigns, minimizer |
//!
//! This crate re-exports the full public API and adds the high-level
//! [`Network`] facade, the [`theorems`] checkers for the paper's §7
//! guarantees, and machine-readable experiment [`report`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod report;
pub mod theorems;

pub use network::{ConvergeResult, Network, NetworkBuilder, NetworkError};
pub use report::{render_table, ExperimentRow};
pub use theorems::{verify_paper_theorems, TheoremReport};

// Layer re-exports, so `ibgp` alone is a sufficient dependency.
pub use ibgp_analysis as analysis;
pub use ibgp_confed as confed;
pub use ibgp_hierarchy as hierarchy;
pub use ibgp_hunt as hunt;
pub use ibgp_npc as npc;
pub use ibgp_proto as proto;
pub use ibgp_scenarios as scenarios;
pub use ibgp_sim as sim;
pub use ibgp_solver as solver;
pub use ibgp_topology as topology;
pub use ibgp_types as types;

// The most common names, flattened. `ibgp::classify` is the unified
// spec-level entrypoint (`ibgp_hunt::classify_spec`): it routes every
// scenario kind to its matching exhaustive search and returns one
// [`Verdict`] whose [`StopReason`] says exactly why the search ended.
// The engine-level `ibgp_analysis::classify` remains available as
// `ibgp::analysis::classify` for callers holding a built `Topology`.
pub use ibgp_analysis::{ExploreOptions, OscillationClass};
pub use ibgp_hunt::{classify_spec as classify, HuntOptions, ScenarioSpec, Verdict};
pub use ibgp_proto::variants::ProtocolConfig;
pub use ibgp_proto::{MedMode, ProtocolVariant, RuleOrder, SelectionPolicy};
pub use ibgp_scenarios::Scenario;
pub use ibgp_sim::{AsyncOutcome, SyncOutcome};
pub use ibgp_topology::{Topology, TopologyBuilder};
pub use ibgp_types::{
    AsId, AsPath, BgpId, ClusterId, ExitPath, ExitPathId, ExitPathRef, IgpCost, LocalPref, Med,
    NextHop, Prefix, Route, RouteKind, RouterId,
};
pub use ibgp_types::{SearchBudget, SolverMode, StopReason, VerdictOrigin};
