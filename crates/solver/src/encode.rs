//! The `Choose_best` fixed-point condition as CNF.
//!
//! For the **standard** protocol a configuration is fully determined by
//! the advertised-exit vector `a : V → P ∪ {∅}` and the stable
//! configurations are exactly the fixed points of the synchronous sweep
//! (see `ibgp-analysis::stable`). Instead of enumerating all
//! `(|P|+1)^n` vectors, this module encodes "router `u` selects exit
//! path `p`" as a boolean variable `X(u,p)` and emits clauses whose
//! models are *precisely* the fixed points — the DPLL enumerator in
//! [`crate::dpll`] then lists them without ever touching a reachable
//! state.
//!
//! # The encoding
//!
//! Candidate domains come first: `X(u,p)` exists only for `p` in the
//! **greatest** fixpoint of
//! `cand(u) = own(u) ∪ { p | ∃v≠u. p ∈ cand(v) ∧ Transfer_{v→u}(p) }`,
//! iterated downward from all paths. The greatest fixpoint (not the
//! least!) is what soundness requires: in any fixed point the support
//! sets `{v | a(v) = p}` are self-supporting — every non-own member is
//! fed by another member — and such cyclically-supported solutions are
//! admitted by the stability oracle, so they must stay in the domain.
//!
//! Per router `u` and candidate `p`, a ladder of defined variables then
//! mirrors the decision process rule by rule. Every attribute except
//! `learnedFrom` is a compile-time constant of `(u,p)` (LOCAL-PREF,
//! AS-path length, MED, E-BGP-ness, IGP metric via the SPF table), so
//! rules 1–5 reduce to constant pairwise comparisons:
//!
//! * `G(p)` — `p` is gathered at `u`: a unit clause for `u`'s own exits,
//!   otherwise `G(p) ⇔ ⋁ X(v,p)` over the allowed senders `v`.
//! * `A(p) ⇔ G(p) ∧ ⋀ ¬G(q)` over `q` strictly better under the
//!   (LOCAL-PREF desc, AS-path-length asc) lexicographic key — rules 1–2.
//! * `B(p) ⇔ A(p) ∧ ⋀ ¬A(q)` over `q` that MED-beat `p` under the
//!   policy's [`MedMode`] (same-`nextAS` group or global) — rule 3.
//! * `C(p) ⇔ B(p) ∧ ⋀ ¬B(q)` over `q` strictly better under the
//!   [`RuleOrder`]-dependent (E-BGP-ness, metric) key — rules 4–5.
//! * `D(p) ⇔ C(p) ∧ ⋀ ¬E(q,p)` — rule 6, the one dynamic comparison:
//!   `E(q,p)` holds when `q` survives rules 1–5 *and* `q`'s
//!   `learnedFrom` identifier is strictly below `p`'s. A dynamic path's
//!   `learnedFrom` is the minimum BGP identifier among its *active*
//!   senders, so `E` unrolls into per-sender witnesses ("`v` announces
//!   `q` and no sender of `p` with an identifier ≤ `v`'s is active").
//! * `X(p) ⇔ D(p) ∧ ⋀ ¬D(q)` over candidates `q` with a smaller exit-path
//!   id — rule 7, the deterministic fallback.
//!
//! The chain is definitional end to end (Tseitin equivalences), so every
//! auxiliary variable is forced by unit propagation once the `X`
//! variables are assigned; the enumerator branches on `X` only and each
//! model *is* an advertised-exit vector.

use crate::cnf::{Cnf, Lit, Var};
use crate::dpll::{self, EnumBudget, EnumStop};
use ibgp_proto::selection::{MedMode, SelectionPolicy};
use ibgp_proto::{route_at, transfer_allowed};
use ibgp_topology::Topology;
use ibgp_types::{
    AsId, BgpId, ExitPathId, ExitPathRef, IgpCost, LocalPref, Med, RouterId, SearchBudget,
    StopReason,
};

/// All fixed points of the standard protocol, found by constraint
/// solving. The solver-side analogue of a reachability result: carries
/// the same budget/stop honesty plus encoding and search statistics.
#[derive(Debug, Clone)]
pub struct StableReport {
    /// Distinct stable best-exit vectors (indexed by router), sorted.
    pub fixed_points: Vec<Vec<Option<ExitPathId>>>,
    /// Whether the enumeration exhausted the model space. Only a complete
    /// run proves absence (e.g. "no stable routing exists").
    pub complete: bool,
    /// Why the enumeration ended, in the workspace-wide vocabulary
    /// (decision cap ↦ [`StopReason::StateCap`]).
    pub stop: StopReason,
    /// CNF variables emitted.
    pub vars: usize,
    /// CNF clauses emitted.
    pub clauses: usize,
    /// DPLL branching decisions.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts hit.
    pub conflicts: u64,
}

/// Enumerate every stable configuration of the standard protocol by
/// encoding the fixed-point condition and running the all-solutions
/// DPLL, within `budget` (`max_states` caps branching decisions;
/// `max_bytes` does not apply to the solver and is ignored).
pub fn enumerate_stable(
    topo: &Topology,
    policy: SelectionPolicy,
    exits: &[ExitPathRef],
    budget: &SearchBudget,
) -> StableReport {
    let enc = Encoding::build(topo, policy, exits);
    let run = dpll::enumerate(
        &enc.cnf,
        &enc.branch,
        &EnumBudget {
            max_decisions: Some(budget.max_states as u64),
            max_models: None,
            deadline: budget.deadline,
        },
    );
    let (complete, stop) = match run.stop {
        EnumStop::Complete => (true, StopReason::Complete),
        EnumStop::Deadline => (false, StopReason::Deadline),
        // No model cap is set, so any other stop is the decision cap.
        EnumStop::DecisionCap | EnumStop::ModelCap => {
            (false, StopReason::StateCap(budget.max_states))
        }
    };
    let mut fixed_points: Vec<Vec<Option<ExitPathId>>> =
        run.models.iter().map(|m| enc.decode(m)).collect();
    fixed_points.sort();
    StableReport {
        fixed_points,
        complete,
        stop,
        vars: enc.cnf.num_vars(),
        clauses: enc.cnf.clauses().len(),
        decisions: run.decisions,
        propagations: run.propagations,
        conflicts: run.conflicts,
    }
}

/// The constant selection attributes of one `(router, path)` pair.
struct PathKey {
    /// `u == exitPoint(p)`: gathered unconditionally, E-BGP kind, and a
    /// constant `learnedFrom` (the external peer's identifier).
    own: bool,
    /// The constant `learnedFrom` for own paths; `None` for dynamic ones.
    lf: Option<BgpId>,
    lp: LocalPref,
    apl: usize,
    next_as: AsId,
    med: Med,
    metric: IgpCost,
}

impl PathKey {
    /// `q` strictly beats `p` under rules 1–2.
    fn better12(q: &PathKey, p: &PathKey) -> bool {
        q.lp > p.lp || (q.lp == p.lp && q.apl < p.apl)
    }

    /// `q` MED-eliminates `p` under rule 3.
    fn med_beats(mode: MedMode, q: &PathKey, p: &PathKey) -> bool {
        match mode {
            MedMode::PerNeighborAs => q.next_as == p.next_as && q.med < p.med,
            MedMode::AlwaysCompare => q.med < p.med,
            MedMode::Ignore => false,
        }
    }

    /// `q` strictly beats `p` under rules 4–5. Both orderings are a
    /// lexicographic key over (E-BGP-ness, metric); [`RuleOrder`]
    /// decides which component leads.
    fn beats45(policy: SelectionPolicy, q: &PathKey, p: &PathKey) -> bool {
        use ibgp_proto::selection::RuleOrder;
        let (qk, pk) = ((!q.own, q.metric), (!p.own, p.metric));
        match policy.rule_order {
            RuleOrder::PreferEbgp => qk < pk,
            RuleOrder::MinCostFirst => (qk.1, qk.0) < (pk.1, pk.0),
        }
    }
}

struct Encoding {
    cnf: Cnf,
    /// The selection variables, in (router, exit-id) order — the branch
    /// projection the enumerator decides on.
    branch: Vec<Var>,
    /// Per router, the candidate exit-path ids parallel to its slice of
    /// `branch`.
    layout: Vec<Vec<ExitPathId>>,
}

impl Encoding {
    fn build(topo: &Topology, policy: SelectionPolicy, exits: &[ExitPathRef]) -> Encoding {
        let n = topo.len();
        let m = exits.len();

        // Candidate domains: the greatest fixpoint of the transfer
        // closure, iterated downward from all paths everywhere.
        let mut cand = vec![vec![true; m]; n];
        loop {
            let mut changed = false;
            for ui in 0..n {
                let u = RouterId::new(ui as u32);
                for (pi, p) in exits.iter().enumerate() {
                    if !cand[ui][pi] || p.exit_point() == u {
                        continue;
                    }
                    let supported = (0..n).any(|vi| {
                        vi != ui
                            && cand[vi][pi]
                            && transfer_allowed(topo, RouterId::new(vi as u32), u, p.exit_point())
                    });
                    if !supported {
                        cand[ui][pi] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Candidate lists in exit-id order (the rule-7 tie-break order).
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|ui| {
                let mut l: Vec<usize> = (0..m).filter(|&pi| cand[ui][pi]).collect();
                l.sort_by_key(|&pi| exits[pi].id());
                l
            })
            .collect();

        // Selection variables first, so the branch projection is a dense
        // prefix of the variable space.
        let mut cnf = Cnf::new();
        let mut branch = Vec::new();
        let mut xvar: Vec<Vec<Option<Var>>> = vec![vec![None; m]; n];
        for ui in 0..n {
            for &pi in &lists[ui] {
                let v = cnf.fresh();
                xvar[ui][pi] = Some(v);
                branch.push(v);
            }
        }
        let x_of = |xvar: &[Vec<Option<Var>>], v: RouterId, pi: usize| -> Var {
            xvar[v.index()][pi].expect("sender must have the candidate")
        };

        for (ui, list) in lists.iter().enumerate() {
            let u = RouterId::new(ui as u32);
            let k = list.len();

            let keys: Vec<PathKey> = list
                .iter()
                .map(|&pi| {
                    let p = &exits[pi];
                    let own = p.exit_point() == u;
                    // Only constant attributes are read off this route;
                    // the learned-from argument is a placeholder.
                    let r = route_at(topo, u, p, topo.bgp_id(u));
                    PathKey {
                        own,
                        lf: own.then(|| p.next_hop().bgp_id()),
                        lp: r.local_pref(),
                        apl: r.as_path_length(),
                        next_as: r.next_as(),
                        med: r.med(),
                        metric: r.metric(),
                    }
                })
                .collect();

            // Allowed senders per candidate, in announcing-identifier
            // order (the order rule 6's minimum is taken over). Own paths
            // never arrive dynamically (no transfer case re-delivers a
            // router its own exit), matching the oracle's constant
            // learned-from for them.
            let sends: Vec<Vec<RouterId>> = list
                .iter()
                .enumerate()
                .map(|(i, &pi)| {
                    if keys[i].own {
                        return Vec::new();
                    }
                    let p = &exits[pi];
                    let mut s: Vec<RouterId> = (0..n)
                        .filter(|&vi| {
                            vi != ui
                                && xvar[vi][pi].is_some()
                                && transfer_allowed(
                                    topo,
                                    RouterId::new(vi as u32),
                                    u,
                                    p.exit_point(),
                                )
                        })
                        .map(|vi| RouterId::new(vi as u32))
                        .collect();
                    s.sort_by_key(|&v| topo.bgp_id(v));
                    debug_assert!(
                        !s.is_empty(),
                        "dynamic candidate with no sender survived gfp"
                    );
                    s
                })
                .collect();

            // G: gathered at u.
            let g: Vec<Var> = (0..k)
                .map(|i| {
                    let v = cnf.fresh();
                    if keys[i].own {
                        cnf.add(vec![Lit::pos(v)]);
                    } else {
                        let lits: Vec<Lit> = sends[i]
                            .iter()
                            .map(|&w| Lit::pos(x_of(&xvar, w, list[i])))
                            .collect();
                        cnf.define_or(v, &lits);
                    }
                    v
                })
                .collect();

            // A: survives rules 1–2.
            let a: Vec<Var> = (0..k)
                .map(|i| {
                    let v = cnf.fresh();
                    let mut conj = vec![Lit::pos(g[i])];
                    for j in 0..k {
                        if j != i && PathKey::better12(&keys[j], &keys[i]) {
                            conj.push(Lit::neg(g[j]));
                        }
                    }
                    cnf.define_and(v, &conj);
                    v
                })
                .collect();

            // B: survives rule 3 (aliases A when MEDs are ignored).
            let b = if policy.med_mode == MedMode::Ignore {
                a.clone()
            } else {
                (0..k)
                    .map(|i| {
                        let v = cnf.fresh();
                        let mut conj = vec![Lit::pos(a[i])];
                        for j in 0..k {
                            if j != i && PathKey::med_beats(policy.med_mode, &keys[j], &keys[i]) {
                                conj.push(Lit::neg(a[j]));
                            }
                        }
                        cnf.define_and(v, &conj);
                        v
                    })
                    .collect()
            };

            // C: survives rules 4–5.
            let c: Vec<Var> = (0..k)
                .map(|i| {
                    let v = cnf.fresh();
                    let mut conj = vec![Lit::pos(b[i])];
                    for j in 0..k {
                        if j != i && PathKey::beats45(policy, &keys[j], &keys[i]) {
                            conj.push(Lit::neg(b[j]));
                        }
                    }
                    cnf.define_and(v, &conj);
                    v
                })
                .collect();

            // D: survives rule 6. elim(q,p) ⇔ C(q) ∧ lf(q) < lf(p); the
            // comparison shape depends on which learned-froms are
            // constant. All guards may assume both paths are gathered
            // (C ⊆ G), so a dynamic path always has an active sender.
            let d: Vec<Var> = (0..k)
                .map(|i| {
                    let mut conj = vec![Lit::pos(c[i])];
                    for j in 0..k {
                        if j == i {
                            continue;
                        }
                        match (keys[j].lf, keys[i].lf) {
                            (Some(cq), Some(cp)) => {
                                if cq < cp {
                                    conj.push(Lit::neg(c[j]));
                                }
                            }
                            (Some(cq), None) => {
                                // lf(p) > cq ⇔ no sender of p at or below
                                // cq is active.
                                let ws: Vec<Lit> = sends[i]
                                    .iter()
                                    .filter(|&&w| topo.bgp_id(w) <= cq)
                                    .map(|&w| Lit::neg(x_of(&xvar, w, list[i])))
                                    .collect();
                                if ws.is_empty() {
                                    conj.push(Lit::neg(c[j]));
                                } else {
                                    let e = cnf.fresh();
                                    let mut lits = vec![Lit::pos(c[j])];
                                    lits.extend(ws);
                                    cnf.define_and(e, &lits);
                                    conj.push(Lit::neg(e));
                                }
                            }
                            (None, Some(cp)) => {
                                // lf(q) < cp ⇔ some sender of q strictly
                                // below cp is active.
                                let vs: Vec<Lit> = sends[j]
                                    .iter()
                                    .filter(|&&v| topo.bgp_id(v) < cp)
                                    .map(|&v| Lit::pos(x_of(&xvar, v, list[j])))
                                    .collect();
                                if !vs.is_empty() {
                                    let e = cnf.fresh();
                                    cnf.define_and_or(e, Lit::pos(c[j]), &vs);
                                    conj.push(Lit::neg(e));
                                }
                            }
                            (None, None) => {
                                // min over q's active senders < min over
                                // p's: witness a sender v of q with no
                                // sender of p at or below it active.
                                let ts: Vec<Lit> = sends[j]
                                    .iter()
                                    .map(|&v| {
                                        let vid = topo.bgp_id(v);
                                        let mut lits = vec![Lit::pos(x_of(&xvar, v, list[j]))];
                                        lits.extend(
                                            sends[i]
                                                .iter()
                                                .filter(|&&w| topo.bgp_id(w) <= vid)
                                                .map(|&w| Lit::neg(x_of(&xvar, w, list[i]))),
                                        );
                                        let t = cnf.fresh();
                                        cnf.define_and(t, &lits);
                                        Lit::pos(t)
                                    })
                                    .collect();
                                let e = cnf.fresh();
                                cnf.define_and_or(e, Lit::pos(c[j]), &ts);
                                conj.push(Lit::neg(e));
                            }
                        }
                    }
                    let v = cnf.fresh();
                    cnf.define_and(v, &conj);
                    v
                })
                .collect();

            // X: rule 7 — the first rule-6 survivor in exit-id order.
            for i in 0..k {
                let xi = x_of(&xvar, u, list[i]);
                let mut conj = vec![Lit::pos(d[i])];
                for &dj in d.iter().take(i) {
                    conj.push(Lit::neg(dj));
                }
                cnf.define_and(xi, &conj);
            }
            // Redundant pairwise at-most-one over the selections: implied
            // by the ladder, but gives propagation an early handle.
            for i in 0..k {
                for j in i + 1..k {
                    cnf.add(vec![
                        Lit::neg(x_of(&xvar, u, list[i])),
                        Lit::neg(x_of(&xvar, u, list[j])),
                    ]);
                }
            }
        }

        let layout = lists
            .iter()
            .map(|l| l.iter().map(|&pi| exits[pi].id()).collect())
            .collect();
        Encoding {
            cnf,
            branch,
            layout,
        }
    }

    /// Turn one projected model back into an advertised-exit vector.
    fn decode(&self, model: &[bool]) -> Vec<Option<ExitPathId>> {
        let mut out = Vec::with_capacity(self.layout.len());
        let mut cursor = 0;
        for ids in &self.layout {
            let mut sel = None;
            for &id in ids {
                if model[cursor] {
                    sel = Some(id);
                }
                cursor += 1;
            }
            out.push(sel);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_proto::choose_best;
    use ibgp_topology::{Topology, TopologyBuilder};
    use ibgp_types::{ExitPath, Route};
    use std::collections::BTreeMap;

    /// An independent oracle: odometer over every advertised-exit vector,
    /// replaying the gathered-set fixed-point check against the real
    /// `choose_best`. (A from-scratch twin of the enumeration in
    /// `ibgp-analysis`, which this crate cannot depend on.)
    fn brute_force(
        topo: &Topology,
        policy: SelectionPolicy,
        exits: &[ExitPathRef],
    ) -> Vec<Vec<Option<ExitPathId>>> {
        let n = topo.len();
        let m = exits.len();
        let mut digits = vec![0usize; n];
        let mut found = Vec::new();
        'outer: loop {
            let advertised: Vec<Option<&ExitPathRef>> = digits
                .iter()
                .map(|&d| if d == 0 { None } else { Some(&exits[d - 1]) })
                .collect();
            let mut vector = Vec::with_capacity(n);
            let mut stable = true;
            for ui in 0..n {
                let u = RouterId::new(ui as u32);
                let mut gathered: BTreeMap<ExitPathId, (ExitPathRef, BgpId)> = BTreeMap::new();
                for p in exits.iter().filter(|p| p.exit_point() == u) {
                    gathered.insert(p.id(), (p.clone(), p.next_hop().bgp_id()));
                }
                for (vi, adv) in advertised.iter().enumerate() {
                    let v = RouterId::new(vi as u32);
                    if v == u {
                        continue;
                    }
                    if let Some(p) = *adv {
                        if transfer_allowed(topo, v, u, p.exit_point()) {
                            let sender = topo.bgp_id(v);
                            gathered
                                .entry(p.id())
                                .and_modify(|(_, lf)| {
                                    if p.exit_point() != u {
                                        *lf = (*lf).min(sender);
                                    }
                                })
                                .or_insert_with(|| (p.clone(), sender));
                        }
                    }
                }
                let routes: Vec<Route> = gathered
                    .values()
                    .map(|(p, lf)| route_at(topo, u, p, *lf))
                    .collect();
                let best = choose_best(policy, &routes).map(|r| r.exit_id());
                if best != advertised[ui].map(|p| p.id()) {
                    stable = false;
                    break;
                }
                vector.push(best);
            }
            if stable {
                found.push(vector);
            }
            let mut i = 0;
            loop {
                if i == n {
                    break 'outer;
                }
                digits[i] += 1;
                if digits[i] <= m {
                    break;
                }
                digits[i] = 0;
                i += 1;
            }
        }
        found.sort();
        found
    }

    fn assert_matches_brute_force(topo: &Topology, exits: &[ExitPathRef]) {
        for policy in [
            SelectionPolicy::PAPER,
            SelectionPolicy::RFC1771,
            SelectionPolicy::ALWAYS_COMPARE_MED,
            SelectionPolicy {
                med_mode: MedMode::Ignore,
                rule_order: Default::default(),
            },
        ] {
            let report = enumerate_stable(topo, policy, exits, &SearchBudget::states(1_000_000));
            assert!(report.complete, "{policy:?} hit a cap");
            assert_eq!(report.stop, StopReason::Complete);
            assert_eq!(
                report.fixed_points,
                brute_force(topo, policy, exits),
                "{policy:?}"
            );
        }
    }

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        std::sync::Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    #[test]
    fn single_exit_has_unique_fixed_point() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        let r = enumerate_stable(
            &topo,
            SelectionPolicy::PAPER,
            &exits,
            &SearchBudget::states(100_000),
        );
        assert!(r.complete);
        assert_eq!(
            r.fixed_points,
            vec![vec![Some(ExitPathId::new(1)), Some(ExitPathId::new(1))]]
        );
        assert_matches_brute_force(&topo, &exits);
    }

    #[test]
    fn no_exits_yields_the_empty_fixed_point() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let r = enumerate_stable(
            &topo,
            SelectionPolicy::PAPER,
            &[],
            &SearchBudget::states(100),
        );
        assert!(r.complete);
        assert_eq!(r.fixed_points, vec![vec![None, None]]);
    }

    /// The DISAGREE gadget: two clusters whose clients each prefer the
    /// other's exit — exactly two stable routings.
    #[test]
    fn disagree_gadget_has_exactly_two_fixed_points() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let r = enumerate_stable(
            &topo,
            SelectionPolicy::PAPER,
            &exits,
            &SearchBudget::states(1_000_000),
        );
        assert_eq!(r.fixed_points.len(), 2, "{:?}", r.fixed_points);
        assert_matches_brute_force(&topo, &exits);
    }

    /// MED's non-decomposability: same-AS exits with different MEDs at
    /// different routers, a third exit through another AS.
    #[test]
    fn med_interaction_matches_brute_force() {
        let topo = TopologyBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 4, 1)
            .cluster([0], [1, 2])
            .cluster([3], [4])
            .build()
            .unwrap();
        let exits = vec![exit(1, 7, 10, 1), exit(2, 7, 0, 4), exit(3, 9, 5, 2)];
        assert_matches_brute_force(&topo, &exits);
    }

    /// A full mesh with asymmetric costs and a local-pref override.
    #[test]
    fn full_mesh_with_local_pref_matches_brute_force() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 2)
            .link(1, 2, 3)
            .link(0, 2, 7)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![
            exit(1, 1, 0, 0),
            std::sync::Arc::new(
                ExitPath::builder(ExitPathId::new(2))
                    .via_with_length(AsId::new(2), 2)
                    .local_pref(LocalPref::new(200))
                    .exit_point(RouterId::new(2))
                    .exit_cost(IgpCost::new(1))
                    .build_unchecked(),
            ),
        ];
        assert_matches_brute_force(&topo, &exits);
    }

    /// Intra-cluster client sessions change visibility; exercise them.
    #[test]
    fn client_sessions_match_brute_force() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .cluster([0], [1, 2])
            .client_session(1, 2)
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 1), exit(2, 1, 0, 2), exit(3, 2, 0, 0)];
        assert_matches_brute_force(&topo, &exits);
    }

    #[test]
    fn decision_cap_reports_incomplete() {
        // The disagree gadget's reflector selections are mutually
        // dependent, so they genuinely need branching (a propagation-
        // forced instance would complete under any decision cap).
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let r = enumerate_stable(
            &topo,
            SelectionPolicy::PAPER,
            &exits,
            &SearchBudget::states(1),
        );
        assert!(!r.complete);
        assert_eq!(r.stop, StopReason::StateCap(1));
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 1, 0, 1)];
        let budget = SearchBudget::states(1_000_000)
            .deadline(std::time::Instant::now() - std::time::Duration::from_secs(1));
        let r = enumerate_stable(&topo, SelectionPolicy::PAPER, &exits, &budget);
        assert!(!r.complete);
        assert_eq!(r.stop, StopReason::Deadline);
    }

    /// The report's accounting fields are populated.
    #[test]
    fn report_carries_encoding_statistics() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        let r = enumerate_stable(
            &topo,
            SelectionPolicy::PAPER,
            &exits,
            &SearchBudget::states(100_000),
        );
        assert!(r.vars > 0);
        assert!(r.clauses > 0);
        assert!(r.propagations > 0);
    }
}
