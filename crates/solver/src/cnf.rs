//! CNF formulas with width-unbounded clauses and the definitional
//! (Tseitin-style) encoding helpers the fixed-point encoder uses.
//!
//! The solver's variables and literals are deliberately minimal: a
//! [`Var`] is a dense index, a [`Lit`] packs variable and polarity into
//! one word so watch lists can be literal-indexed arrays.

use std::fmt;

/// A propositional variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a polarity. Encoded as `2*var + sign` so
/// the two literals of a variable are adjacent and watch lists can be
/// indexed directly by [`Lit::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The opposite literal of the same variable.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for literal-keyed tables (watch lists).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "!x{}", self.var().0)
        }
    }
}

/// A CNF formula under construction: a variable counter plus a clause
/// database. Clauses are plain literal vectors of any width.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty formula over `n` pre-allocated variables (indices
    /// `0..n`), for callers with an external variable numbering.
    pub fn with_vars(n: u32) -> Self {
        Self {
            num_vars: n,
            clauses: Vec::new(),
        }
    }

    /// Allocate a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// The clause database.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Add one clause (a disjunction of literals). An empty clause makes
    /// the formula unsatisfiable.
    pub fn add(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Define `y ⇔ ⋀ lits` (a conjunction of literals): clauses
    /// `(¬y ∨ l)` for each `l`, plus `(y ∨ ¬l₁ ∨ … ∨ ¬lₖ)`. An empty
    /// conjunction asserts `y` outright.
    pub fn define_and(&mut self, y: Var, lits: &[Lit]) {
        if lits.is_empty() {
            self.add(vec![Lit::pos(y)]);
            return;
        }
        for &l in lits {
            self.add(vec![Lit::neg(y), l]);
        }
        let mut back: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
        back.push(Lit::pos(y));
        back.extend(lits.iter().map(|l| l.negated()));
        self.add(back);
    }

    /// Define `y ⇔ ⋁ lits` (a disjunction of literals): clause
    /// `(¬y ∨ l₁ ∨ … ∨ lₖ)`, plus `(y ∨ ¬l)` for each `l`. An empty
    /// disjunction asserts `¬y` outright.
    pub fn define_or(&mut self, y: Var, lits: &[Lit]) {
        if lits.is_empty() {
            self.add(vec![Lit::neg(y)]);
            return;
        }
        let mut fwd: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
        fwd.push(Lit::neg(y));
        fwd.extend_from_slice(lits);
        self.add(fwd);
        for &l in lits {
            self.add(vec![Lit::pos(y), l.negated()]);
        }
    }

    /// Define `y ⇔ a ∧ (⋁ bs)`: clauses `(¬y ∨ a)`,
    /// `(¬y ∨ b₁ ∨ … ∨ bₖ)`, and `(y ∨ ¬a ∨ ¬b)` for each `b`. An empty
    /// disjunction asserts `¬y`.
    pub fn define_and_or(&mut self, y: Var, a: Lit, bs: &[Lit]) {
        if bs.is_empty() {
            self.add(vec![Lit::neg(y)]);
            return;
        }
        self.add(vec![Lit::neg(y), a]);
        let mut fwd: Vec<Lit> = Vec::with_capacity(bs.len() + 1);
        fwd.push(Lit::neg(y));
        fwd.extend_from_slice(bs);
        self.add(fwd);
        for &b in bs {
            self.add(vec![Lit::pos(y), a.negated(), b.negated()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(cnf: &Cnf, assignment: &[bool]) -> bool {
        cnf.clauses()
            .iter()
            .all(|c| c.iter().any(|l| assignment[l.var().index()] == l.is_pos()))
    }

    #[test]
    fn literal_packing_round_trips() {
        let v = Var(7);
        assert!(Lit::pos(v).is_pos());
        assert!(!Lit::neg(v).is_pos());
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert_eq!(Lit::pos(v).negated(), Lit::neg(v));
        assert_eq!(Lit::neg(v).negated(), Lit::pos(v));
        assert_eq!(Lit::pos(v).index() + 1, Lit::neg(v).index());
    }

    /// The definitional helpers really are equivalences: exhaustively
    /// check every assignment of small definitions.
    #[test]
    fn definitions_are_equivalences() {
        // y <=> a ∧ ¬b
        let mut cnf = Cnf::new();
        let (a, b, y) = (cnf.fresh(), cnf.fresh(), cnf.fresh());
        cnf.define_and(y, &[Lit::pos(a), Lit::neg(b)]);
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let want = asg[0] && !asg[1];
            assert_eq!(eval(&cnf, &asg), asg[y.index()] == want, "{asg:?}");
        }

        // y <=> a ∨ b
        let mut cnf = Cnf::new();
        let (a, b, y) = (cnf.fresh(), cnf.fresh(), cnf.fresh());
        cnf.define_or(y, &[Lit::pos(a), Lit::pos(b)]);
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let want = asg[0] || asg[1];
            assert_eq!(eval(&cnf, &asg), asg[y.index()] == want, "{asg:?}");
        }

        // y <=> a ∧ (b ∨ c)
        let mut cnf = Cnf::new();
        let (a, b, c, y) = (cnf.fresh(), cnf.fresh(), cnf.fresh(), cnf.fresh());
        cnf.define_and_or(y, Lit::pos(a), &[Lit::pos(b), Lit::pos(c)]);
        for bits in 0..16u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            let want = asg[0] && (asg[1] || asg[2]);
            assert_eq!(eval(&cnf, &asg), asg[y.index()] == want, "{asg:?}");
        }
    }

    #[test]
    fn empty_definitions_are_constants() {
        let mut cnf = Cnf::new();
        let y = cnf.fresh();
        cnf.define_and(y, &[]);
        assert_eq!(cnf.clauses(), &[vec![Lit::pos(y)]]);

        let mut cnf = Cnf::new();
        let y = cnf.fresh();
        cnf.define_or(y, &[]);
        assert_eq!(cnf.clauses(), &[vec![Lit::neg(y)]]);
    }
}
