//! An iterative, all-solutions DPLL enumerator with two-watched-literal
//! unit propagation.
//!
//! This is the generalized solver promoted out of `crates/npc` (whose
//! recursive `dpll()` could blow the stack on large formulas). The search
//! is an explicit decision trail with chronological backtracking: on a
//! conflict, pop decision levels until an unflipped decision is found and
//! assert its negation. No recursion anywhere, so depth is bounded only
//! by the variable count.
//!
//! Enumeration branches over a caller-chosen *projection* set of
//! variables first (in the given, deterministic order). When every
//! projection variable is assigned and propagation is conflict-free, any
//! still-unsatisfied clause is branched on directly, so the enumerator is
//! complete for arbitrary CNF — but for definitional encodings (every
//! auxiliary variable functionally determined by the projection, as the
//! fixed-point encoder produces) propagation alone finishes the model.
//! Each model is recorded as its projection, barred from recurring by a
//! blocking clause over the projection literals, and the search restarts;
//! distinct models therefore have distinct projections by construction.
//!
//! Everything is deterministic: branch order is the projection order
//! (value `false` tried first), clause scans are in insertion order, and
//! the only nondeterministic stop is an explicit wall-clock deadline.

use crate::cnf::{Cnf, Lit, Var};
use std::time::Instant;

/// Resource bounds for one enumeration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumBudget {
    /// Cap on branching decisions across the whole enumeration (restarts
    /// included); `None` for unbounded.
    pub max_decisions: Option<u64>,
    /// Stop after this many models; `None` enumerates all.
    pub max_models: Option<usize>,
    /// Absolute wall-clock deadline; `None` for no deadline.
    pub deadline: Option<Instant>,
}

/// Why an enumeration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumStop {
    /// The search space was exhausted: `models` is the complete set.
    Complete,
    /// The decision cap was hit; the model set may be incomplete.
    DecisionCap,
    /// The model cap was hit.
    ModelCap,
    /// The deadline passed.
    Deadline,
}

/// The result of an all-solutions run.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// One entry per model: the values of the projection variables, in
    /// the order they were passed to [`enumerate`].
    pub models: Vec<Vec<bool>>,
    /// Why the run ended. Only [`EnumStop::Complete`] guarantees the
    /// model set is exhaustive.
    pub stop: EnumStop,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts hit (blocking-clause restarts included).
    pub conflicts: u64,
}

/// Enumerate every model of `cnf`, projected onto (and keyed by) the
/// `branch` variables, within `budget`.
pub fn enumerate(cnf: &Cnf, branch: &[Var], budget: &EnumBudget) -> Enumeration {
    Solver::new(cnf).run(branch, budget)
}

/// Decide satisfiability; return one full assignment (unconstrained
/// variables default to `false`) if a model exists.
pub fn solve_one(cnf: &Cnf) -> Option<Vec<bool>> {
    let all: Vec<Var> = (0..cnf.num_vars() as u32).map(Var).collect();
    let budget = EnumBudget {
        max_models: Some(1),
        ..EnumBudget::default()
    };
    enumerate(cnf, &all, &budget).models.into_iter().next()
}

/// How often (in decisions) the deadline is polled.
const DEADLINE_STRIDE: u64 = 256;

struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// Watch lists, indexed by [`Lit::index`]: clauses watching that
    /// literal (i.e. clauses that must be revisited when it goes false...
    /// specifically, watching the literal itself).
    watches: Vec<Vec<usize>>,
    /// Unit clauses, re-asserted at level 0 after every restart.
    units: Vec<Lit>,
    /// Per-variable value: 0 unknown, 1 true, -1 false.
    assign: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Trail length at the start of each decision level.
    level_starts: Vec<usize>,
    /// Whether each decision level's decision has already been flipped.
    level_flipped: Vec<bool>,
    /// An empty clause (or contradictory units) was added: no models.
    root_conflict: bool,
    decisions: u64,
    propagations: u64,
    conflicts: u64,
}

impl Solver {
    fn new(cnf: &Cnf) -> Self {
        let mut s = Solver {
            clauses: Vec::with_capacity(cnf.clauses().len()),
            watches: vec![Vec::new(); 2 * cnf.num_vars()],
            units: Vec::new(),
            assign: vec![0; cnf.num_vars()],
            trail: Vec::new(),
            qhead: 0,
            level_starts: Vec::new(),
            level_flipped: Vec::new(),
            root_conflict: false,
            decisions: 0,
            propagations: 0,
            conflicts: 0,
        };
        for c in cnf.clauses() {
            s.add_clause(c.clone());
        }
        s
    }

    fn value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var().index()];
        if a == 0 {
            0
        } else if (a == 1) == l.is_pos() {
            1
        } else {
            -1
        }
    }

    /// Add a clause to the database (any time, including mid-search;
    /// callers restart afterwards so watch initialization is valid).
    fn add_clause(&mut self, clause: Vec<Lit>) {
        match clause.len() {
            0 => self.root_conflict = true,
            1 => self.units.push(clause[0]),
            _ => {
                let ci = self.clauses.len();
                self.watches[clause[0].index()].push(ci);
                self.watches[clause[1].index()].push(ci);
                self.clauses.push(clause);
            }
        }
    }

    /// Assign `l` true. `false` means it was already false (conflict).
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.value(l) {
            1 => true,
            -1 => false,
            _ => {
                self.assign[l.var().index()] = if l.is_pos() { 1 } else { -1 };
                self.trail.push(l);
                true
            }
        }
    }

    /// Undo everything and re-assert the unit clauses at level 0.
    /// `false` means the units conflict: no (further) models.
    fn restart(&mut self) -> bool {
        for i in 0..self.trail.len() {
            self.assign[self.trail[i].var().index()] = 0;
        }
        self.trail.clear();
        self.qhead = 0;
        self.level_starts.clear();
        self.level_flipped.clear();
        if self.root_conflict {
            return false;
        }
        for i in 0..self.units.len() {
            let l = self.units[i];
            if !self.enqueue(l) {
                return false;
            }
        }
        true
    }

    /// Two-watched-literal unit propagation to fixpoint. `true` on a
    /// conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = p.negated();
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut keep = Vec::with_capacity(ws.len());
            let mut conflict = false;
            let mut k = 0;
            while k < ws.len() {
                let ci = ws[k];
                k += 1;
                // Normalize: the falsified literal sits at slot 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                let other = self.clauses[ci][0];
                if self.value(other) == 1 {
                    keep.push(ci);
                    continue;
                }
                // Look for a non-false replacement watch.
                let mut moved = false;
                for j in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][j]) != -1 {
                        self.clauses[ci].swap(1, j);
                        self.watches[self.clauses[ci][1].index()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit (or conflicting) under this assignment.
                keep.push(ci);
                if !self.enqueue(other) {
                    // Conflict: keep the rest of the watch list intact.
                    keep.extend_from_slice(&ws[k..]);
                    conflict = true;
                    break;
                }
            }
            ws.clear();
            self.watches[false_lit.index()] = keep;
            if conflict {
                return true;
            }
        }
        false
    }

    /// Open a new decision level asserting `l`.
    fn decide(&mut self, l: Lit) {
        self.decisions += 1;
        self.level_starts.push(self.trail.len());
        self.level_flipped.push(false);
        let ok = self.enqueue(l);
        debug_assert!(ok, "decision variable must be unassigned");
    }

    /// Chronological backtracking: pop levels until an unflipped decision
    /// is found, then assert its negation (marked flipped). `false` means
    /// the whole space above level 0 is exhausted.
    fn backtrack_flip(&mut self) -> bool {
        while let Some(start) = self.level_starts.pop() {
            let was_flipped = self.level_flipped.pop().expect("levels in lockstep");
            let decision = self.trail[start];
            for i in start..self.trail.len() {
                self.assign[self.trail[i].var().index()] = 0;
            }
            self.trail.truncate(start);
            self.qhead = self.trail.len();
            if !was_flipped {
                self.level_starts.push(self.trail.len());
                self.level_flipped.push(true);
                let ok = self.enqueue(decision.negated());
                debug_assert!(ok, "flipped decision must be assignable");
                return true;
            }
        }
        false
    }

    /// First unassigned projection variable, in projection order.
    fn next_branch(&self, branch: &[Var]) -> Option<Var> {
        branch.iter().copied().find(|v| self.assign[v.index()] == 0)
    }

    /// With every projection variable assigned and propagation quiet:
    /// `Ok(())` if all clauses are satisfied (a model), otherwise the
    /// first unassigned literal of the first unsatisfied clause to branch
    /// on (`Err(Some)`), or `Err(None)` for a fully-false clause.
    fn leaf_check(&self) -> Result<(), Option<Lit>> {
        for c in &self.clauses {
            if c.iter().any(|&l| self.value(l) == 1) {
                continue;
            }
            match c.iter().find(|&&l| self.value(l) == 0) {
                Some(&l) => return Err(Some(l)),
                None => return Err(None),
            }
        }
        Ok(())
    }

    fn run(mut self, branch: &[Var], budget: &EnumBudget) -> Enumeration {
        let mut models: Vec<Vec<bool>> = Vec::new();
        let finish = |s: Solver, models: Vec<Vec<bool>>, stop: EnumStop| Enumeration {
            models,
            stop,
            decisions: s.decisions,
            propagations: s.propagations,
            conflicts: s.conflicts,
        };
        if !self.restart() {
            return finish(self, models, EnumStop::Complete);
        }
        loop {
            if self.propagate() {
                self.conflicts += 1;
                if !self.backtrack_flip() {
                    return finish(self, models, EnumStop::Complete);
                }
                continue;
            }
            // Budget checks sit at the branch points: propagation between
            // two decisions is finite, so the caps bound the whole run.
            if let Some(cap) = budget.max_decisions {
                if self.decisions >= cap && self.next_branch(branch).is_some() {
                    return finish(self, models, EnumStop::DecisionCap);
                }
            }
            if let Some(deadline) = budget.deadline {
                if self.decisions.is_multiple_of(DEADLINE_STRIDE) && Instant::now() >= deadline {
                    return finish(self, models, EnumStop::Deadline);
                }
            }
            if let Some(v) = self.next_branch(branch) {
                self.decide(Lit::neg(v));
                continue;
            }
            match self.leaf_check() {
                Err(Some(l)) => {
                    if let Some(cap) = budget.max_decisions {
                        if self.decisions >= cap {
                            return finish(self, models, EnumStop::DecisionCap);
                        }
                    }
                    self.decide(l);
                }
                Err(None) => {
                    // A fully-false clause propagation missed (can only be
                    // a freshly-restarted blocking clause edge case).
                    self.conflicts += 1;
                    if !self.backtrack_flip() {
                        return finish(self, models, EnumStop::Complete);
                    }
                }
                Ok(()) => {
                    models.push(branch.iter().map(|v| self.assign[v.index()] == 1).collect());
                    if let Some(cap) = budget.max_models {
                        if models.len() >= cap {
                            return finish(self, models, EnumStop::ModelCap);
                        }
                    }
                    // Bar this projection and restart the descent.
                    let blocking: Vec<Lit> = branch
                        .iter()
                        .map(|&v| {
                            if self.assign[v.index()] == 1 {
                                Lit::neg(v)
                            } else {
                                Lit::pos(v)
                            }
                        })
                        .collect();
                    self.add_clause(blocking);
                    if !self.restart() {
                        return finish(self, models, EnumStop::Complete);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(cnf: &Cnf) -> Vec<Var> {
        (0..cnf.num_vars() as u32).map(Var).collect()
    }

    #[test]
    fn trivial_and_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        cnf.add(vec![Lit::pos(a)]);
        assert_eq!(solve_one(&cnf), Some(vec![true]));
        cnf.add(vec![Lit::neg(a)]);
        assert_eq!(solve_one(&cnf), None);
    }

    #[test]
    fn enumerates_every_model_of_a_disjunction() {
        // (a ∨ b) has exactly three models.
        let mut cnf = Cnf::new();
        let (a, b) = (cnf.fresh(), cnf.fresh());
        cnf.add(vec![Lit::pos(a), Lit::pos(b)]);
        let e = enumerate(&cnf, &vars(&cnf), &EnumBudget::default());
        assert_eq!(e.stop, EnumStop::Complete);
        let mut models = e.models;
        models.sort();
        assert_eq!(
            models,
            vec![vec![false, true], vec![true, false], vec![true, true]]
        );
    }

    /// Projection enumeration: an auxiliary variable defined from the
    /// projection is never branched on, and models are keyed by the
    /// projection alone.
    #[test]
    fn projection_hides_determined_auxiliaries() {
        let mut cnf = Cnf::new();
        let (a, b) = (cnf.fresh(), cnf.fresh());
        let y = cnf.fresh();
        cnf.define_and(y, &[Lit::pos(a), Lit::pos(b)]);
        cnf.add(vec![Lit::neg(y)]); // forbid a ∧ b
        let e = enumerate(&cnf, &[a, b], &EnumBudget::default());
        assert_eq!(e.stop, EnumStop::Complete);
        let mut models = e.models;
        models.sort();
        assert_eq!(
            models,
            vec![vec![false, false], vec![false, true], vec![true, false]]
        );
    }

    /// A clause over non-projection variables still gets decided (the
    /// fallback branch): the enumerator is complete for arbitrary CNF.
    #[test]
    fn falls_back_to_branching_outside_the_projection() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        let (u, w) = (cnf.fresh(), cnf.fresh());
        cnf.add(vec![Lit::pos(u), Lit::pos(w)]); // free choice off-projection
        cnf.add(vec![Lit::pos(a), Lit::neg(u)]);
        let e = enumerate(&cnf, &[a], &EnumBudget::default());
        assert_eq!(e.stop, EnumStop::Complete);
        let mut models = e.models;
        models.sort();
        // a=false forces u false hence w true (possible); a=true possible.
        assert_eq!(models, vec![vec![false], vec![true]]);
    }

    #[test]
    fn empty_formula_has_the_all_false_model() {
        let cnf = Cnf::with_vars(2);
        assert_eq!(solve_one(&cnf), Some(vec![false, false]));
        let e = enumerate(&cnf, &vars(&cnf), &EnumBudget::default());
        assert_eq!(e.models.len(), 4);
        assert_eq!(e.stop, EnumStop::Complete);
    }

    #[test]
    fn decision_cap_reports_incomplete() {
        // 2^8 models; a tiny decision cap cannot finish.
        let cnf = Cnf::with_vars(8);
        let budget = EnumBudget {
            max_decisions: Some(3),
            ..EnumBudget::default()
        };
        let e = enumerate(&cnf, &vars(&cnf), &budget);
        assert_eq!(e.stop, EnumStop::DecisionCap);
        assert!(e.models.len() < 256);
    }

    #[test]
    fn expired_deadline_stops_promptly() {
        let cnf = Cnf::with_vars(12);
        let budget = EnumBudget {
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
            ..EnumBudget::default()
        };
        let e = enumerate(&cnf, &vars(&cnf), &budget);
        assert_eq!(e.stop, EnumStop::Deadline);
    }

    #[test]
    fn model_cap_stops_after_k_models() {
        let cnf = Cnf::with_vars(4);
        let budget = EnumBudget {
            max_models: Some(3),
            ..EnumBudget::default()
        };
        let e = enumerate(&cnf, &vars(&cnf), &budget);
        assert_eq!(e.stop, EnumStop::ModelCap);
        assert_eq!(e.models.len(), 3);
    }

    /// Cross-check against brute force on small random-ish formulas
    /// (deterministically generated — no RNG available or needed).
    #[test]
    fn agrees_with_brute_force_model_counts() {
        for seed in 0u64..40 {
            let n = 4usize;
            let mut cnf = Cnf::with_vars(n as u32);
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let n_clauses = 3 + (seed % 5) as usize;
            for _ in 0..n_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let v = Var(((state >> 33) % n as u64) as u32);
                    let neg = (state >> 11) & 1 == 1;
                    clause.push(if neg { Lit::neg(v) } else { Lit::pos(v) });
                }
                cnf.add(clause);
            }
            let brute: Vec<Vec<bool>> = (0..1u32 << n)
                .map(|bits| (0..n).map(|i| bits >> i & 1 == 1).collect::<Vec<bool>>())
                .filter(|asg: &Vec<bool>| {
                    cnf.clauses()
                        .iter()
                        .all(|c| c.iter().any(|l| asg[l.var().index()] == l.is_pos()))
                })
                .collect();
            let e = enumerate(&cnf, &vars(&cnf), &EnumBudget::default());
            assert_eq!(e.stop, EnumStop::Complete, "seed {seed}");
            let mut models = e.models;
            models.sort();
            let mut brute = brute;
            brute.sort();
            assert_eq!(models, brute, "seed {seed}");
        }
    }
}
