//! # ibgp-solver
//!
//! The constraint-solver stability backend: classify and count the
//! stable routings of the standard I-BGP protocol **without enumerating
//! reachable states**.
//!
//! The reachability engines in `ibgp-analysis` walk the activation-state
//! graph; their stable vectors are the *reachable* fixed points and the
//! walk's cost scales with the reachable space. For the standard
//! protocol the paper's `Choose_best` fixed-point condition is purely
//! combinational in the advertised-exit vector, so stability questions
//! are really constraint-satisfaction questions:
//!
//! * [`encode`] emits a CNF formula whose models are exactly the fixed
//!   points — one selection variable per (router, visible exit path),
//!   with the six selection rules and the reflection visibility relation
//!   unrolled into definitional (Tseitin) layers;
//! * [`dpll`] is the iterative, watched-literal, all-solutions DPLL that
//!   enumerates those models under a decision budget (this is the
//!   generalized engine `ibgp-npc`'s 3-SAT solver now delegates to);
//! * [`cnf`] is the shared formula vocabulary.
//!
//! The headline: instances where direct enumeration needs `(|P|+1)^n`
//! candidates (the `npc-1var` reduction: `6^10` ≈ 60 million) fall out
//! of the solver in milliseconds with an **exact** stable-routing count.
//! What the solver cannot decide alone is reachability — persistent
//! oscillation (no fixed point) and multiplicity are exact, but "which
//! fixed point does the protocol actually reach, and can it cycle?"
//! still belongs to search; `ibgp-analysis` combines both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dpll;
pub mod encode;

pub use cnf::{Cnf, Lit, Var};
pub use dpll::{enumerate, solve_one, EnumBudget, EnumStop, Enumeration};
pub use encode::{enumerate_stable, StableReport};
