//! Seeded random confederations, for property-testing the extension
//! question: does the `Choose_set` discipline converge on arbitrary
//! sub-AS graphs (including *cyclic* confed-link graphs, where a route
//! can reach a sub-AS along several AS_CONFED paths)?

use crate::topology::{ConfedTopology, SubAsId};
use ibgp_topology::PhysicalGraph;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfedConfig {
    /// Member sub-ASes (≥ 1).
    pub sub_ases: usize,
    /// Routers per sub-AS (≥ 1).
    pub routers_per_sub_as: usize,
    /// Extra confed links beyond the connecting tree (may create cycles
    /// in the sub-AS graph).
    pub extra_confed_links: usize,
    /// Injected exit paths.
    pub exits: usize,
    /// Neighboring ASes.
    pub neighbor_ases: usize,
    /// Maximum MED.
    pub max_med: u32,
    /// Maximum IGP link cost.
    pub max_cost: u64,
}

impl Default for RandomConfedConfig {
    fn default() -> Self {
        Self {
            sub_ases: 3,
            routers_per_sub_as: 2,
            extra_confed_links: 2,
            exits: 4,
            neighbor_ases: 2,
            max_med: 10,
            max_cost: 10,
        }
    }
}

/// Generate a random confederation. Deterministic per seed.
pub fn random_confederation(
    cfg: RandomConfedConfig,
    seed: u64,
) -> (ConfedTopology, Vec<ExitPathRef>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = cfg.sub_ases.max(1);
    let per = cfg.routers_per_sub_as.max(1);
    let n = k * per;
    let member: Vec<SubAsId> = (0..n).map(|i| SubAsId((i / per) as u32)).collect();
    let router_of = |sub: usize, idx: usize| RouterId::new((sub * per + idx) as u32);

    // Physical: random tree + chords (shared IGP).
    let mut g = PhysicalGraph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i) as u32;
        g.add_link(
            RouterId::new(parent),
            RouterId::new(i as u32),
            IgpCost::new(rng.gen_range(1..=cfg.max_cost)),
        )
        .unwrap();
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let _ = g.add_link(
                RouterId::new(u),
                RouterId::new(v),
                IgpCost::new(rng.gen_range(1..=cfg.max_cost)),
            );
        }
    }

    // Confed links: a random spanning tree over sub-ASes, plus chords.
    let mut confed_links = Vec::new();
    for s in 1..k {
        let t = rng.gen_range(0..s);
        confed_links.push((
            router_of(s, rng.gen_range(0..per)),
            router_of(t, rng.gen_range(0..per)),
        ));
    }
    for _ in 0..cfg.extra_confed_links {
        let s = rng.gen_range(0..k);
        let t = rng.gen_range(0..k);
        if s != t {
            confed_links.push((
                router_of(s, rng.gen_range(0..per)),
                router_of(t, rng.gen_range(0..per)),
            ));
        }
    }

    let topo = ConfedTopology::new(g, member, confed_links).expect("random confederation is valid");
    let exits = (0..cfg.exits)
        .map(|i| {
            Arc::new(
                ExitPath::builder(ExitPathId::new(i as u32 + 1))
                    .via(AsId::new(1 + rng.gen_range(0..cfg.neighbor_ases as u32)))
                    .med(Med::new(rng.gen_range(0..=cfg.max_med)))
                    .exit_point(RouterId::new(rng.gen_range(0..n as u32)))
                    .build_unchecked(),
            ) as ExitPathRef
        })
        .collect();
    (topo, exits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConfedEngine, ConfedMode};

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..30 {
            let (a, ea) = random_confederation(RandomConfedConfig::default(), seed);
            let (b, eb) = random_confederation(RandomConfedConfig::default(), seed);
            assert_eq!(a.len(), b.len());
            assert_eq!(ea, eb);
            assert_eq!(a.len(), 6);
        }
    }

    /// The extension conjecture for confederations, smoke-tested: the
    /// `Choose_set` discipline converges on random (possibly cyclic)
    /// sub-AS graphs.
    #[test]
    fn set_advertisement_converges_on_random_confederations() {
        for seed in 0..25 {
            let (topo, exits) = random_confederation(RandomConfedConfig::default(), seed);
            let mut eng = ConfedEngine::new(&topo, ConfedMode::SetAdvertisement, exits);
            let out = eng.run_round_robin(200_000);
            assert!(out.converged(), "seed {seed}: {out}");
        }
    }
}
