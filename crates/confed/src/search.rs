//! Exhaustive reachability over activation nondeterminism for the
//! confederation engine (the analog of `ibgp-analysis::explore`).

use crate::engine::{ConfedEngine, ConfedMode};
use crate::topology::ConfedTopology;
use ibgp_types::{ExitPathId, ExitPathRef, RouterId, SearchBudget, StopReason};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct ConfedReachability {
    /// Distinct configurations visited.
    pub states: usize,
    /// Whether the whole reachable space fit under the budget.
    pub complete: bool,
    /// Why the search ended. Always from the search itself — consumers
    /// must not infer a stop reason from `complete` alone.
    pub stop: StopReason,
    /// Distinct stable best-exit vectors found.
    pub stable_vectors: Vec<Vec<Option<ExitPathId>>>,
}

impl ConfedReachability {
    /// Whether a stable configuration is reachable.
    pub fn can_converge(&self) -> bool {
        !self.stable_vectors.is_empty()
    }

    /// Whether persistent oscillation is proven (complete, no stable).
    pub fn persistent_oscillation(&self) -> bool {
        self.complete && self.stable_vectors.is_empty()
    }

    /// The state cap that stopped the search, when one did.
    #[deprecated(note = "read the `stop` field (`StopReason`) instead")]
    pub fn cap(&self) -> Option<usize> {
        self.stop.state_cap()
    }
}

fn digest<T: Hash>(t: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Explore every configuration reachable from the initial state under
/// singleton and full-set activations.
///
/// The budget honors `max_states` and `deadline` (checked between state
/// expansions, so an already-expired deadline stops deterministically at
/// the initial state); this search has no visited-set byte accounting,
/// so `max_bytes` is ignored and callers warn about the dropped flag.
/// A bare `usize` converts to a states-only budget.
pub fn explore_confed(
    topo: &ConfedTopology,
    mode: ConfedMode,
    exits: Vec<ExitPathRef>,
    budget: impl Into<SearchBudget>,
) -> ConfedReachability {
    let budget: SearchBudget = budget.into();
    let max_states = budget.max_states;
    let engine0 = ConfedEngine::new(topo, mode, exits);
    let n = topo.len();
    let mut branches: Vec<Vec<RouterId>> = (0..n as u32).map(|i| vec![RouterId::new(i)]).collect();
    branches.push((0..n as u32).map(RouterId::new).collect());

    let mut visited: HashMap<u64, Vec<(Vec<_>, u64)>> = HashMap::new();
    let mut queue: VecDeque<ConfedEngine> = VecDeque::new();
    let mut stable_vectors = Vec::new();
    let mut states = 0usize;

    let mut try_visit = |eng: &ConfedEngine| -> bool {
        let (key, _) = eng.state_key(0);
        let d = digest(&key);
        let bucket = visited.entry(d).or_default();
        if bucket.iter().any(|(k, _)| *k == key) {
            false
        } else {
            bucket.push((key, 0));
            true
        }
    };

    if try_visit(&engine0) {
        states += 1;
        queue.push_back(engine0);
    }

    while let Some(eng) = queue.pop_front() {
        if budget.expired() {
            return ConfedReachability {
                states,
                complete: false,
                stop: StopReason::Deadline,
                stable_vectors,
            };
        }
        // One synchronous sweep serves both the stability test and every
        // branch: `step` on a clone would recompute the same n updates
        // per branch.
        let updates = eng.update_all();
        if eng.is_fixed_point(&updates) {
            let bv = eng.best_vector();
            if !stable_vectors.contains(&bv) {
                stable_vectors.push(bv);
            }
            continue;
        }
        for branch in &branches {
            let mut next = eng.clone();
            next.apply(branch, &updates);
            if try_visit(&next) {
                states += 1;
                if states > max_states {
                    return ConfedReachability {
                        states,
                        complete: false,
                        stop: StopReason::StateCap(max_states),
                        stable_vectors,
                    };
                }
                queue.push_back(next);
            }
        }
    }

    ConfedReachability {
        states,
        complete: true,
        stop: StopReason::Complete,
        stable_vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SubAsId;
    use ibgp_topology::PhysicalGraph;
    use ibgp_types::{AsId, ExitPath, IgpCost, Med};
    use std::sync::Arc;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    #[test]
    fn trivial_confederation_converges() {
        let mut g = PhysicalGraph::new(2);
        g.add_link(r(0), r(1), IgpCost::new(1)).unwrap();
        let topo =
            ConfedTopology::new(g, vec![SubAsId(0), SubAsId(1)], vec![(r(0), r(1))]).unwrap();
        let exit = Arc::new(
            ExitPath::builder(ExitPathId::new(1))
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(r(0))
                .build_unchecked(),
        );
        let reach = explore_confed(&topo, ConfedMode::SingleBest, vec![exit], 10_000);
        assert!(reach.complete);
        assert_eq!(
            reach.stop,
            StopReason::Complete,
            "complete searches report no budget stop"
        );
        assert!(reach.can_converge());
        assert_eq!(reach.stable_vectors.len(), 1);
        assert!(!reach.persistent_oscillation());
    }

    #[test]
    fn cap_reports_incomplete() {
        let mut g = PhysicalGraph::new(2);
        g.add_link(r(0), r(1), IgpCost::new(1)).unwrap();
        let topo =
            ConfedTopology::new(g, vec![SubAsId(0), SubAsId(1)], vec![(r(0), r(1))]).unwrap();
        let exit = Arc::new(
            ExitPath::builder(ExitPathId::new(1))
                .via(AsId::new(1))
                .exit_point(r(0))
                .build_unchecked(),
        );
        let reach = explore_confed(&topo, ConfedMode::SingleBest, vec![exit.clone()], 1);
        assert!(!reach.complete);
        assert_eq!(
            reach.stop,
            StopReason::StateCap(1),
            "capped searches name the cap that hit"
        );
        assert!(!reach.persistent_oscillation());
        #[allow(deprecated)]
        let shim = reach.cap();
        assert_eq!(shim, Some(1), "the deprecated accessor keeps working");

        // An already-expired deadline stops before any expansion, and the
        // stop reason says so rather than blaming a cap.
        let mut g = PhysicalGraph::new(2);
        g.add_link(r(0), r(1), IgpCost::new(1)).unwrap();
        let topo =
            ConfedTopology::new(g, vec![SubAsId(0), SubAsId(1)], vec![(r(0), r(1))]).unwrap();
        let budget = SearchBudget::states(10_000).deadline(std::time::Instant::now());
        let reach = explore_confed(&topo, ConfedMode::SingleBest, vec![exit], budget);
        assert!(!reach.complete);
        assert_eq!(reach.stop, StopReason::Deadline);
        assert_eq!(reach.states, 1, "only the initial state was visited");
    }
}
