//! The confederation analog of Fig 1(a) — the persistent MED oscillation
//! the Cisco field notice reported for confederation configurations.
//!
//! Sub-AS **X** = {`x0` (border), `x1` (exit `r1`, AS1, MED 0), `x2`
//! (exit `r2`, AS2, MED 10)}; sub-AS **Y** = {`y0` (border), `y1` (exit
//! `r3`, AS2, MED 5)}; one confed-E-BGP session `x0 – y0`. IGP costs:
//! `x0–x1` 2, `x0–x2` 1, `x0–y0` 1, `y0–y1` 10 — so at `x0`:
//! `r2 < r1 < r3` by metric, and at `y0`: `r1 < r3`.
//!
//! The Fig 1(a) cycle transplants exactly: `x0` without `r3` picks `r2`
//! and exports it; `r3` hides `r2` at `y0` (same AS2, lower MED), so
//! `y0` exports `r3`; `r3` hides `r2` at `x0` and `x0` switches to `r1`
//! and exports it; `y0` adopts the closer `r1`, whose confed path
//! already contains X, so `y0`'s export to `x0` becomes a withdrawal of
//! `r3`; `r2` resurfaces at `x0` — no stable configuration exists.
//!
//! The extension experiment: applying the paper's `Choose_set`
//! advertisement to confederations ([`ConfedMode::SetAdvertisement`])
//! stabilizes this instance — evidence that the paper's idea transfers
//! beyond route reflection (their §6/§7 proofs cover reflection only).

use crate::topology::{ConfedTopology, SubAsId};
use ibgp_topology::PhysicalGraph;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// Border router of sub-AS X.
    pub const X0: RouterId = RouterId(0);
    /// Holder of `r1` in sub-AS X.
    pub const X1: RouterId = RouterId(1);
    /// Holder of `r2` in sub-AS X.
    pub const X2: RouterId = RouterId(2);
    /// Border router of sub-AS Y.
    pub const Y0: RouterId = RouterId(3);
    /// Holder of `r3` in sub-AS Y.
    pub const Y1: RouterId = RouterId(4);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// `r1` via AS1, MED 0, at `x1`.
    pub const R1: ExitPathId = ExitPathId(1);
    /// `r2` via AS2, MED 10, at `x2`.
    pub const R2: ExitPathId = ExitPathId(2);
    /// `r3` via AS2, MED 5, at `y1`.
    pub const R3: ExitPathId = ExitPathId(3);
}

/// Build the confederation oscillator.
pub fn confed_fig1a() -> (ConfedTopology, Vec<ExitPathRef>) {
    let mut g = PhysicalGraph::new(5);
    g.add_link(nodes::X0, nodes::X1, IgpCost::new(2)).unwrap();
    g.add_link(nodes::X0, nodes::X2, IgpCost::new(1)).unwrap();
    g.add_link(nodes::X0, nodes::Y0, IgpCost::new(1)).unwrap();
    g.add_link(nodes::Y0, nodes::Y1, IgpCost::new(10)).unwrap();
    let topo = ConfedTopology::new(
        g,
        vec![SubAsId(0), SubAsId(0), SubAsId(0), SubAsId(1), SubAsId(1)],
        vec![(nodes::X0, nodes::Y0)],
    )
    .expect("confed_fig1a topology is valid");
    let mk = |id: ExitPathId, at: RouterId, next_as: u32, med: u32| -> ExitPathRef {
        Arc::new(
            ExitPath::builder(id)
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(at)
                .build_unchecked(),
        )
    };
    let exits = vec![
        mk(routes::R1, nodes::X1, 1, 0),
        mk(routes::R2, nodes::X2, 2, 10),
        mk(routes::R3, nodes::Y1, 2, 5),
    ];
    (topo, exits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConfedEngine, ConfedMode};
    use crate::search::explore_confed;
    use ibgp_proto::selection::MedMode;

    #[test]
    fn geometry_matches_the_derivation() {
        let (topo, _) = confed_fig1a();
        let d = |u, v| topo.igp_cost(u, v).raw();
        assert!(d(nodes::X0, nodes::X2) < d(nodes::X0, nodes::X1));
        assert!(d(nodes::X0, nodes::X1) < d(nodes::X0, nodes::Y1));
        assert!(d(nodes::Y0, nodes::X1) < d(nodes::Y0, nodes::Y1));
    }

    #[test]
    fn single_best_oscillates_persistently() {
        let (topo, exits) = confed_fig1a();
        let reach = explore_confed(&topo, ConfedMode::SingleBest, exits.clone(), 300_000);
        assert!(reach.complete, "search must finish");
        assert!(
            reach.persistent_oscillation(),
            "stable vectors: {:?}",
            reach.stable_vectors
        );
        // And a concrete run provably cycles.
        let mut eng = ConfedEngine::new(&topo, ConfedMode::SingleBest, exits);
        let out = eng.run_round_robin(50_000);
        assert!(out.cycled(), "{out}");
    }

    #[test]
    fn set_advertisement_stabilizes_the_confederation() {
        let (topo, exits) = confed_fig1a();
        let reach = explore_confed(&topo, ConfedMode::SetAdvertisement, exits.clone(), 300_000);
        assert!(reach.complete);
        assert_eq!(reach.stable_vectors.len(), 1, "{:?}", reach.stable_vectors);
        let mut eng = ConfedEngine::new(&topo, ConfedMode::SetAdvertisement, exits);
        let out = eng.run_round_robin(50_000);
        assert!(out.converged(), "{out}");
        // x0 settles on r1 (r2 MED-hidden by the permanently visible r3).
        assert_eq!(eng.best_exit(nodes::X0), Some(routes::R1));
        // y0 settles on the closer r1.
        assert_eq!(eng.best_exit(nodes::Y0), Some(routes::R1));
        // Exit holders keep their own E-BGP routes where they survive
        // rules 1-3; x2's r2 is hidden, so it uses r1 as well.
        assert_eq!(eng.best_exit(nodes::X1), Some(routes::R1));
        assert_eq!(eng.best_exit(nodes::Y1), Some(routes::R3));
    }

    #[test]
    fn the_oscillation_is_med_induced() {
        // With MED comparison disabled, single-best advertisement
        // converges: x0 just keeps the metric-best r2.
        let (topo, exits) = confed_fig1a();
        let mut eng = ConfedEngine::new(&topo, ConfedMode::SingleBest, exits);
        eng_set_med_ignore(&mut eng);
        let out = eng.run_round_robin(50_000);
        assert!(out.converged(), "{out}");
        assert_eq!(eng.best_exit(nodes::X0), Some(routes::R2));
    }

    /// Test-only access to flip the MED mode.
    fn eng_set_med_ignore(eng: &mut ConfedEngine) {
        eng.set_med_mode(MedMode::Ignore);
    }
}
