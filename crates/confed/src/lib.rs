//! # ibgp-confed
//!
//! BGP **confederations** — the other mechanism (besides route
//! reflection) for avoiding the full I-BGP mesh, and the other
//! configuration class in which the Cisco field notice and McPherson et
//! al. observed persistent MED-induced oscillations. The paper's
//! positive results (§6/§7) cover route reflection only; this crate
//! builds the confederation substrate so the same questions can be asked
//! here:
//!
//! * [`topology`] — an AS partitioned into member sub-ASes: full I-BGP
//!   mesh within each sub-AS, explicit confed-E-BGP sessions between
//!   them, one shared IGP (next hops are carried *unchanged* across
//!   sub-AS boundaries, the standard deployment, so IGP metrics remain
//!   comparable everywhere).
//! * [`announcement`] — routes on the wire carry an
//!   `AS_CONFED_SEQUENCE`-style list of visited sub-ASes for loop
//!   prevention, and remember whether they arrived over I-BGP or
//!   confed-E-BGP (selection prefers true E-BGP routes first, then
//!   compares confed-external and internal routes by IGP metric).
//! * [`engine`] — a synchronous pull engine in the style of the paper's
//!   §4 model: within a sub-AS, a router re-announces its best route to
//!   its I-BGP mesh only if it did **not** learn it from an I-BGP peer;
//!   across a confed link the best route is always offered (external
//!   behaviour), extended once with its sender's sub-AS and dropped by
//!   receivers whose own sub-AS already appears in the list.
//! * [`search`] — exhaustive reachability over activation
//!   nondeterminism, as in `ibgp-analysis`, so persistent oscillation is
//!   *proven*, not observed.
//! * [`scenarios`] — the confederation analog of Fig 1(a): the same
//!   MED-hiding cycle transplanted onto two sub-ASes, which this crate's
//!   tests prove persistent under single-best advertisement — and the
//!   extension experiment: the paper's `Choose_set` advertisement
//!   discipline, applied to confederations, stabilizes it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod announcement;
pub mod engine;
pub mod random;
pub mod scenarios;
pub mod search;
pub mod topology;

pub use announcement::{Announcement, RouteSource};
pub use engine::{ConfedEngine, ConfedMode};
pub use ibgp_sim::{Engine, SyncOutcome};
pub use random::{random_confederation, RandomConfedConfig};
pub use search::{explore_confed, ConfedReachability};
pub use topology::{ConfedTopology, SubAsId};
