//! Routes on the confederation wire.
//!
//! An [`Announcement`] is an exit path plus the `AS_CONFED_SEQUENCE`-like
//! list of member sub-ASes it has traversed (loop prevention) and the
//! session kind it was last learned over (selection tiers). NEXT-HOP is
//! carried unchanged across sub-AS boundaries — the standard
//! confederation deployment — so a route's IGP metric at any router is
//! simply the shared-IGP distance to its exit point plus the exit cost.

use crate::topology::SubAsId;
use ibgp_types::{BgpId, ExitPathId, ExitPathRef, IgpCost};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a router learned a route — the confederation selection tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RouteSource {
    /// The router's own E-BGP route (exit point = self). Highest tier.
    Ebgp,
    /// Learned over a confed-E-BGP session from another sub-AS. Compared
    /// with internal routes by IGP metric (next-hop-unchanged).
    ConfedEbgp,
    /// Learned over I-BGP within the sub-AS.
    Ibgp,
}

impl fmt::Display for RouteSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteSource::Ebgp => "eBGP",
            RouteSource::ConfedEbgp => "confed-eBGP",
            RouteSource::Ibgp => "iBGP",
        };
        f.write_str(s)
    }
}

/// An exit path as carried between confederation routers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Announcement {
    /// The underlying E-BGP route.
    pub path: ExitPathRef,
    /// Member sub-ASes already traversed (sender prepends its own when
    /// crossing a confed link; receivers inside a listed sub-AS drop the
    /// announcement).
    pub visited: Vec<SubAsId>,
    /// How the *holder* learned it.
    pub source: RouteSource,
    /// `learnedFrom` at the holder (external peer for own exits, the
    /// announcing router's BGP id otherwise).
    pub learned_from: BgpId,
}

impl Announcement {
    /// A router's own freshly injected E-BGP route.
    pub fn own(path: ExitPathRef) -> Self {
        let learned_from = path.next_hop().bgp_id();
        Self {
            path,
            visited: Vec::new(),
            source: RouteSource::Ebgp,
            learned_from,
        }
    }

    /// The identity of the underlying exit path.
    pub fn id(&self) -> ExitPathId {
        self.path.id()
    }

    /// Whether the announcement may enter the given sub-AS.
    pub fn admissible_in(&self, sub_as: SubAsId) -> bool {
        !self.visited.contains(&sub_as)
    }

    /// The announcement as re-sent across a confed link by a router of
    /// `sender_sub`: visited list extended, source re-stamped at the
    /// receiver as confed-external.
    pub fn across_confed_link(&self, sender_sub: SubAsId, sender: BgpId) -> Self {
        let mut visited = Vec::with_capacity(self.visited.len() + 1);
        visited.push(sender_sub);
        visited.extend_from_slice(&self.visited);
        Self {
            path: self.path.clone(),
            visited,
            source: RouteSource::ConfedEbgp,
            learned_from: sender,
        }
    }

    /// The announcement as received over I-BGP within a sub-AS.
    pub fn within_sub_as(&self, sender: BgpId) -> Self {
        Self {
            path: self.path.clone(),
            visited: self.visited.clone(),
            source: RouteSource::Ibgp,
            learned_from: sender,
        }
    }

    /// The route's metric at a router with the given shared-IGP distance
    /// to the exit point.
    pub fn metric(&self, igp_to_exit: IgpCost) -> IgpCost {
        igp_to_exit.saturating_add(self.path.exit_cost())
    }
}

impl fmt::Display for Announcement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] via", self.path, self.source)?;
        if self.visited.is_empty() {
            write!(f, " ()")?;
        } else {
            write!(f, " (")?;
            for (i, s) in self.visited.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_types::{AsId, ExitPath, Med, RouterId};
    use std::sync::Arc;

    fn path() -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(1))
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(RouterId::new(0))
                .build_unchecked(),
        )
    }

    #[test]
    fn own_announcements_are_ebgp_with_empty_visited() {
        let a = Announcement::own(path());
        assert_eq!(a.source, RouteSource::Ebgp);
        assert!(a.visited.is_empty());
        assert!(a.admissible_in(SubAsId(7)));
    }

    #[test]
    fn crossing_a_confed_link_extends_visited_and_restamps() {
        let a = Announcement::own(path());
        let b = a.across_confed_link(SubAsId(3), BgpId::new(9));
        assert_eq!(b.visited, vec![SubAsId(3)]);
        assert_eq!(b.source, RouteSource::ConfedEbgp);
        assert_eq!(b.learned_from, BgpId::new(9));
        assert!(!b.admissible_in(SubAsId(3)), "loop prevention");
        assert!(b.admissible_in(SubAsId(4)));
        let c = b.across_confed_link(SubAsId(4), BgpId::new(10));
        assert_eq!(c.visited, vec![SubAsId(4), SubAsId(3)]);
    }

    #[test]
    fn ibgp_restamp_keeps_visited() {
        let a = Announcement::own(path()).across_confed_link(SubAsId(1), BgpId::new(5));
        let b = a.within_sub_as(BgpId::new(6));
        assert_eq!(b.source, RouteSource::Ibgp);
        assert_eq!(b.visited, a.visited);
        assert_eq!(b.learned_from, BgpId::new(6));
    }

    #[test]
    fn tier_order_is_ebgp_then_confed_then_ibgp() {
        assert!(RouteSource::Ebgp < RouteSource::ConfedEbgp);
        assert!(RouteSource::ConfedEbgp < RouteSource::Ibgp);
    }
}
