//! The synchronous confederation engine — the §4 pull model transplanted
//! onto sub-AS semantics.
//!
//! When a router activates it rebuilds its candidate set from its own
//! E-BGP exits plus what each peer currently offers:
//!
//! * an **I-BGP peer** (same sub-AS) offers its advertised announcements
//!   *except* those it learned over I-BGP itself (the classic
//!   no-re-advertise rule — confederations replace reflection with
//!   sub-AS E-BGP, not with reflection inside the mesh);
//! * a **confed-E-BGP peer** offers all its advertised announcements,
//!   each extended with the sender's sub-AS; the receiver drops any
//!   announcement that already visited the receiver's sub-AS.
//!
//! Selection follows the paper's rule ordering with the confederation
//! tiers: LOCAL-PREF, AS-PATH length, per-neighbor-AS MED, then *true*
//! E-BGP routes first, then IGP metric over confed-external and internal
//! routes alike (next-hop-unchanged deployment), then `learnedFrom`.
//!
//! [`ConfedMode::SetAdvertisement`] is the extension experiment: the
//! paper's `Choose_set` discipline applied to confederations.

use crate::announcement::{Announcement, RouteSource};
use crate::topology::ConfedTopology;
use ibgp_proto::selection::{choose_set, MedMode};
use ibgp_sim::{Engine, RoundRobin, SyncOutcome};
use ibgp_types::RouterId;
use ibgp_types::{ExitPathId, ExitPathRef, IgpCost};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Advertisement discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ConfedMode {
    /// Classic single-best advertisement.
    #[default]
    SingleBest,
    /// The paper's `Choose_set` survivor set (extension experiment).
    SetAdvertisement,
}

impl fmt::Display for ConfedMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfedMode::SingleBest => write!(f, "single-best"),
            ConfedMode::SetAdvertisement => write!(f, "set-advertisement"),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    my_exits: Vec<ExitPathRef>,
    /// Candidate announcements, keyed by exit-path id.
    possible: BTreeMap<ExitPathId, Announcement>,
    best: Option<Announcement>,
    advertised: Vec<Announcement>,
}

/// Canonical per-node state encoding used for dedup and cycle detection.
pub type NodeKey = (
    Vec<(ExitPathId, Vec<u32>, u8)>,
    Option<ExitPathId>,
    Vec<(ExitPathId, Vec<u32>)>,
);

impl NodeState {
    fn key(&self) -> NodeKey {
        let enc = |a: &Announcement| {
            (
                a.id(),
                a.visited.iter().map(|s| s.0).collect::<Vec<_>>(),
                a.source as u8,
            )
        };
        (
            self.possible.values().map(enc).collect(),
            self.best.as_ref().map(Announcement::id),
            self.advertised
                .iter()
                .map(|a| (a.id(), a.visited.iter().map(|s| s.0).collect()))
                .collect(),
        )
    }
}

/// The confederation pull engine.
#[derive(Clone)]
pub struct ConfedEngine<'a> {
    topo: &'a ConfedTopology,
    mode: ConfedMode,
    med_mode: MedMode,
    nodes: Vec<NodeState>,
    time: u64,
}

impl<'a> ConfedEngine<'a> {
    /// Create with the given injected exits (standard MED semantics).
    pub fn new(topo: &'a ConfedTopology, mode: ConfedMode, exits: Vec<ExitPathRef>) -> Self {
        let n = topo.len();
        let mut nodes = vec![
            NodeState {
                my_exits: Vec::new(),
                possible: BTreeMap::new(),
                best: None,
                advertised: Vec::new(),
            };
            n
        ];
        for p in exits {
            assert!(p.exit_point().index() < n, "exit point out of range");
            nodes[p.exit_point().index()].my_exits.push(p);
        }
        for node in &mut nodes {
            node.my_exits.sort_by_key(|p| p.id());
            for p in &node.my_exits {
                node.possible.insert(p.id(), Announcement::own(p.clone()));
            }
        }
        Self {
            topo,
            mode,
            med_mode: MedMode::PerNeighborAs,
            nodes,
            time: 0,
        }
    }

    /// Override the MED comparison mode (default: per-neighbor-AS).
    pub fn set_med_mode(&mut self, mode: MedMode) {
        self.med_mode = mode;
    }

    /// The best announcement at a router.
    pub fn best(&self, u: RouterId) -> Option<&Announcement> {
        self.nodes[u.index()].best.as_ref()
    }

    /// The best exit id at a router.
    pub fn best_exit(&self, u: RouterId) -> Option<ExitPathId> {
        self.nodes[u.index()].best.as_ref().map(Announcement::id)
    }

    /// The current candidate announcements at `u`, in exit-path-id order.
    pub fn candidates(&self, u: RouterId) -> impl Iterator<Item = &Announcement> {
        self.nodes[u.index()].possible.values()
    }

    /// The currently advertised announcements at `u`.
    pub fn advertised(&self, u: RouterId) -> &[Announcement] {
        &self.nodes[u.index()].advertised
    }

    /// The best-exit vector.
    pub fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        self.nodes
            .iter()
            .map(|s| s.best.as_ref().map(Announcement::id))
            .collect()
    }

    /// Steps applied so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Select the best announcement at `u` from candidates.
    fn select(
        &self,
        u: RouterId,
        candidates: &BTreeMap<ExitPathId, Announcement>,
    ) -> Option<Announcement> {
        if candidates.is_empty() {
            return None;
        }
        // Rules 1-3 operate on exit-path attributes.
        let paths: Vec<ExitPathRef> = candidates.values().map(|a| a.path.clone()).collect();
        let survivors = choose_set(&paths, self.med_mode);
        let mut pool: Vec<&Announcement> = survivors.iter().map(|p| &candidates[&p.id()]).collect();
        // Rule 4: true E-BGP routes first.
        if pool.iter().any(|a| a.source == RouteSource::Ebgp) {
            pool.retain(|a| a.source == RouteSource::Ebgp);
        }
        // Rules 4/5: minimum IGP metric (shared IGP, next-hop-unchanged).
        let metric =
            |a: &Announcement| -> IgpCost { a.metric(self.topo.igp_cost(u, a.path.exit_point())) };
        let best_metric = pool.iter().map(|a| metric(a)).min()?;
        pool.retain(|a| metric(a) == best_metric);
        // Deterministic fallback. This must break the tie on route-level
        // attributes only: `learned_from` is copy metadata and which copy of
        // an exit path a router retains depends on activation order, so a
        // tie-break that consults it can settle on different exits under
        // different (fair) schedules. Exit-path ids are unique, so id alone
        // is a total, schedule-insensitive order.
        pool.sort_by_key(|a| a.id());
        pool.first().map(|a| (*a).clone())
    }

    /// What `v` currently offers `u`.
    fn offers(&self, v: RouterId, u: RouterId) -> Vec<Announcement> {
        let same = self.topo.same_sub_as(v, u);
        let confed = self.topo.is_confed_link(v, u);
        if !same && !confed {
            return Vec::new();
        }
        let sender = self.topo.bgp_id(v);
        self.nodes[v.index()]
            .advertised
            .iter()
            .filter_map(|a| {
                if same {
                    // I-BGP: only non-I-BGP-learned routes are offered, and
                    // never a router's own exit back to it.
                    if a.source == RouteSource::Ibgp || a.path.exit_point() == u {
                        None
                    } else {
                        Some(a.within_sub_as(sender))
                    }
                } else {
                    let out = a.across_confed_link(self.topo.sub_as(v), sender);
                    out.admissible_in(self.topo.sub_as(u)).then_some(out)
                }
            })
            .collect()
    }

    fn compute_update(&self, u: RouterId) -> NodeState {
        let cur = &self.nodes[u.index()];
        let mut gathered: BTreeMap<ExitPathId, Announcement> = BTreeMap::new();
        for p in &cur.my_exits {
            gathered.insert(p.id(), Announcement::own(p.clone()));
        }
        for v in self.topo.peers(u) {
            for a in self.offers(v, u) {
                gathered
                    .entry(a.id())
                    .and_modify(|prev| {
                        // Keep the most preferred copy: lower source tier,
                        // then lower learnedFrom, then shorter visited.
                        let better = (a.source, a.learned_from, a.visited.len())
                            < (prev.source, prev.learned_from, prev.visited.len());
                        if better {
                            *prev = a.clone();
                        }
                    })
                    .or_insert(a);
            }
        }
        let best = self.select(u, &gathered);
        let advertised = match self.mode {
            ConfedMode::SingleBest => best.clone().into_iter().collect(),
            ConfedMode::SetAdvertisement => {
                let paths: Vec<ExitPathRef> = gathered.values().map(|a| a.path.clone()).collect();
                let survivors = choose_set(&paths, self.med_mode);
                survivors
                    .iter()
                    .map(|p| gathered[&p.id()].clone())
                    .collect()
            }
        };
        NodeState {
            my_exits: cur.my_exits.clone(),
            possible: gathered,
            best,
            advertised,
        }
    }

    /// Recompute every router's state from the current (pre-step) global
    /// state — one full synchronous sweep, indexed by router.
    pub(crate) fn update_all(&self) -> Vec<NodeState> {
        self.topo
            .routers()
            .map(|u| self.compute_update(u))
            .collect()
    }

    /// Whether a full sweep's worth of updates changes nothing — i.e. the
    /// current configuration is a fixed point.
    pub(crate) fn is_fixed_point(&self, updates: &[NodeState]) -> bool {
        updates
            .iter()
            .zip(&self.nodes)
            .all(|(new, cur)| new.key() == cur.key())
    }

    /// Install the precomputed updates for the routers in `set` (one
    /// activation step whose sweep was already computed).
    pub(crate) fn apply(&mut self, set: &[RouterId], updates: &[NodeState]) {
        for &u in set {
            self.nodes[u.index()] = updates[u.index()].clone();
        }
        self.time += 1;
    }

    /// Apply one activation step (all members read the pre-step state).
    /// Returns whether the pre-step configuration was already a fixed
    /// point.
    pub fn step(&mut self, set: &[RouterId]) -> bool {
        let updates = self.update_all();
        let stable = self.is_fixed_point(&updates);
        self.apply(set, &updates);
        stable
    }

    /// Whether the configuration is a fixed point.
    pub fn is_stable(&self) -> bool {
        self.topo
            .routers()
            .all(|u| self.compute_update(u).key() == self.nodes[u.index()].key())
    }

    /// Canonical state key for cycle detection / search.
    pub fn state_key(&self, phase: u64) -> (Vec<NodeKey>, u64) {
        (self.nodes.iter().map(NodeState::key).collect(), phase)
    }

    /// Run under round-robin singleton activations until a verdict.
    pub fn run_round_robin(&mut self, max_steps: u64) -> SyncOutcome {
        Engine::run(self, &mut RoundRobin::new(), max_steps)
    }
}

impl Engine for ConfedEngine<'_> {
    type Key = (Vec<NodeKey>, u64);

    fn router_count(&self) -> usize {
        self.topo.len()
    }

    fn step(&mut self, set: &[RouterId]) -> bool {
        ConfedEngine::step(self, set)
    }

    fn is_stable(&self) -> bool {
        ConfedEngine::is_stable(self)
    }

    fn state_key(&self, phase: u64) -> Self::Key {
        ConfedEngine::state_key(self, phase)
    }

    fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        ConfedEngine::best_vector(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SubAsId;
    use ibgp_topology::PhysicalGraph;
    use ibgp_types::{AsId, ExitPath, Med};
    use std::sync::Arc;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn exit(id: u32, next_as: u32, med: u32, at: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(r(at))
                .build_unchecked(),
        )
    }

    /// Two sub-ASes in a line: {0,1} and {2}; confed link 1–2. The 0–1
    /// link costs 2 so that router 1 is strictly closer to router 2.
    fn line_confed() -> ConfedTopology {
        let mut g = PhysicalGraph::new(3);
        g.add_link(r(0), r(1), ibgp_types::IgpCost::new(2)).unwrap();
        g.add_link(r(1), r(2), ibgp_types::IgpCost::new(1)).unwrap();
        ConfedTopology::new(
            g,
            vec![SubAsId(0), SubAsId(0), SubAsId(1)],
            vec![(r(1), r(2))],
        )
        .unwrap()
    }

    #[test]
    fn single_exit_crosses_the_confederation() {
        let topo = line_confed();
        let mut eng = ConfedEngine::new(&topo, ConfedMode::SingleBest, vec![exit(1, 1, 0, 0)]);
        let out = eng.run_round_robin(100);
        assert!(out.converged(), "{out}");
        for u in 0..3 {
            assert_eq!(eng.best_exit(r(u)), Some(ExitPathId::new(1)), "router {u}");
        }
        // Router 2 received it across the confed link with sub-AS 0 listed.
        let a = eng.best(r(2)).unwrap();
        assert_eq!(a.visited, vec![SubAsId(0)]);
        assert_eq!(a.source, RouteSource::ConfedEbgp);
    }

    #[test]
    fn loop_prevention_blocks_reentry() {
        // Router 0's exit goes 0 -> 1 -> 2; router 2's best cannot be
        // advertised back into sub-AS 0.
        let topo = line_confed();
        let mut eng = ConfedEngine::new(&topo, ConfedMode::SingleBest, vec![exit(1, 1, 0, 0)]);
        eng.run_round_robin(100);
        // Offers from 2 to 1: the route already visited sub0 -> dropped.
        assert!(eng.offers(r(2), r(1)).is_empty());
    }

    #[test]
    fn ibgp_learned_routes_are_not_reannounced_within_the_mesh() {
        // Router 1 learns router 0's exit via I-BGP; it must not offer it
        // to other I-BGP members (here there are none besides 0 itself —
        // check the own-exit suppression too).
        let topo = line_confed();
        let mut eng = ConfedEngine::new(&topo, ConfedMode::SingleBest, vec![exit(1, 1, 0, 0)]);
        eng.run_round_robin(100);
        // 1 -> 0 over I-BGP: 1's best was learned over I-BGP -> nothing.
        assert!(eng.offers(r(1), r(0)).is_empty());
        // 1 -> 2 over the confed link: allowed (external behaviour).
        assert_eq!(eng.offers(r(1), r(2)).len(), 1);
    }

    #[test]
    fn ebgp_tier_beats_confed_routes() {
        // Router 2 has its own exit and also hears router 0's; it keeps
        // its own (rule 4) even though the metric is equal.
        let topo = line_confed();
        let mut eng = ConfedEngine::new(
            &topo,
            ConfedMode::SingleBest,
            vec![exit(1, 1, 0, 0), exit(2, 2, 0, 2)],
        );
        let out = eng.run_round_robin(200);
        assert!(out.converged(), "{out}");
        assert_eq!(eng.best_exit(r(2)), Some(ExitPathId::new(2)));
        // Router 1 picks by metric between the two learned routes:
        // distance 2 to exit 1's point, 1 to exit 2's point -> exit 2.
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(2)));
        // Router 0 keeps its own E-BGP route (rule 4).
        assert_eq!(eng.best_exit(r(0)), Some(ExitPathId::new(1)));
    }

    #[test]
    fn med_hiding_works_across_sub_ases() {
        // Exit 1 (AS2, MED 5) in sub1 hides exit 2 (AS2, MED 10) in sub0
        // at any router that sees both.
        let topo = line_confed();
        let mut eng = ConfedEngine::new(
            &topo,
            ConfedMode::SingleBest,
            vec![exit(2, 2, 10, 0), exit(1, 2, 5, 2)],
        );
        let out = eng.run_round_robin(200);
        assert!(out.converged(), "{out}");
        // Router 1 sees both: MED hides exit 2, so it must use exit 1.
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(1)));
        // Rule 3 runs *before* the E-BGP preference: once exit 1 reaches
        // router 0 it hides router 0's own exit 2, so even the exit's
        // owner routes via the remote sub-AS — the MED-hiding effect the
        // whole paper is about.
        assert_eq!(eng.best_exit(r(0)), Some(ExitPathId::new(1)));
    }
}
