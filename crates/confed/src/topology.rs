//! Confederation topology: one physical graph and IGP, routers
//! partitioned into member sub-ASes, explicit confed-E-BGP sessions.

use ibgp_topology::{PhysicalGraph, SpfTable, TopologyError};
use ibgp_types::{BgpId, IgpCost, RouterId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A member sub-AS of the confederation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SubAsId(pub u32);

impl SubAsId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SubAsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// A validated confederation: physical graph + SPF + sub-AS membership +
/// confed-E-BGP sessions.
#[derive(Debug, Clone)]
pub struct ConfedTopology {
    physical: PhysicalGraph,
    spf: SpfTable,
    member: Vec<SubAsId>,
    /// Confed-E-BGP sessions, stored with `u < v`, sorted.
    confed_links: Vec<(RouterId, RouterId)>,
    bgp_ids: Vec<BgpId>,
}

impl ConfedTopology {
    /// Build and validate.
    ///
    /// * `member[i]` — the sub-AS of router `i`;
    /// * `confed_links` — the inter-sub-AS BGP sessions (each must join
    ///   routers of *different* sub-ASes).
    ///
    /// Within a sub-AS the I-BGP full mesh is implicit. BGP identifiers
    /// default to router indices.
    pub fn new(
        physical: PhysicalGraph,
        member: Vec<SubAsId>,
        confed_links: Vec<(RouterId, RouterId)>,
    ) -> Result<Self, TopologyError> {
        let n = physical.len();
        if member.len() != n {
            return Err(TopologyError::NodeCountMismatch {
                physical: n,
                logical: member.len(),
            });
        }
        if !physical.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        let mut links = Vec::with_capacity(confed_links.len());
        for (u, v) in confed_links {
            if u.index() >= n {
                return Err(TopologyError::NodeOutOfRange { node: u, len: n });
            }
            if v.index() >= n {
                return Err(TopologyError::NodeOutOfRange { node: v, len: n });
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            if member[u.index()] == member[v.index()] {
                // Reuse the closest existing error kind: a session that
                // must cross sub-AS boundaries but does not.
                return Err(TopologyError::CrossClusterClientSession(u, v));
            }
            let pair = if u < v { (u, v) } else { (v, u) };
            if !links.contains(&pair) {
                links.push(pair);
            }
        }
        links.sort();
        let spf = SpfTable::compute(&physical);
        let bgp_ids = (0..n as u32).map(BgpId::new).collect();
        Ok(Self {
            physical,
            spf,
            member,
            confed_links: links,
            bgp_ids,
        })
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.physical.len()
    }

    /// True when the confederation has no routers.
    pub fn is_empty(&self) -> bool {
        self.physical.is_empty()
    }

    /// All routers.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.len() as u32).map(RouterId::new)
    }

    /// The sub-AS of a router.
    pub fn sub_as(&self, u: RouterId) -> SubAsId {
        self.member[u.index()]
    }

    /// Whether two routers share a sub-AS.
    pub fn same_sub_as(&self, u: RouterId, v: RouterId) -> bool {
        self.sub_as(u) == self.sub_as(v)
    }

    /// Whether `u`–`v` is a confed-E-BGP session.
    pub fn is_confed_link(&self, u: RouterId, v: RouterId) -> bool {
        let pair = if u < v { (u, v) } else { (v, u) };
        self.confed_links.binary_search(&pair).is_ok()
    }

    /// All BGP peers of `u`: its sub-AS mesh plus its confed links.
    pub fn peers(&self, u: RouterId) -> Vec<RouterId> {
        self.routers()
            .filter(|&v| v != u && (self.same_sub_as(u, v) || self.is_confed_link(u, v)))
            .collect()
    }

    /// IGP distance (shared IGP across the confederation).
    pub fn igp_cost(&self, u: RouterId, v: RouterId) -> IgpCost {
        self.spf.cost(u, v)
    }

    /// The SPF table.
    pub fn spf(&self) -> &SpfTable {
        &self.spf
    }

    /// BGP identifier of a router.
    pub fn bgp_id(&self, u: RouterId) -> BgpId {
        self.bgp_ids[u.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn c(v: u64) -> IgpCost {
        IgpCost::new(v)
    }

    /// Two sub-ASes: {0,1,2} and {3,4}; confed link 0–3.
    fn topo() -> ConfedTopology {
        let mut g = PhysicalGraph::new(5);
        g.add_link(r(0), r(1), c(2)).unwrap();
        g.add_link(r(0), r(2), c(1)).unwrap();
        g.add_link(r(0), r(3), c(1)).unwrap();
        g.add_link(r(3), r(4), c(10)).unwrap();
        ConfedTopology::new(
            g,
            vec![SubAsId(0), SubAsId(0), SubAsId(0), SubAsId(1), SubAsId(1)],
            vec![(r(0), r(3))],
        )
        .unwrap()
    }

    #[test]
    fn membership_and_sessions() {
        let t = topo();
        assert_eq!(t.sub_as(r(1)), SubAsId(0));
        assert!(t.same_sub_as(r(0), r(2)));
        assert!(!t.same_sub_as(r(2), r(3)));
        assert!(t.is_confed_link(r(3), r(0)));
        assert!(!t.is_confed_link(r(1), r(3)));
        // Peers: sub-AS mesh + confed links.
        assert_eq!(t.peers(r(0)), vec![r(1), r(2), r(3)]);
        assert_eq!(t.peers(r(4)), vec![r(3)]);
        assert_eq!(t.peers(r(3)), vec![r(0), r(4)]);
    }

    #[test]
    fn igp_is_shared_across_sub_ases() {
        let t = topo();
        assert_eq!(t.igp_cost(r(1), r(4)), c(13)); // 1-0-3-4
    }

    #[test]
    fn rejects_intra_sub_as_confed_links() {
        let mut g = PhysicalGraph::new(2);
        g.add_link(r(0), r(1), c(1)).unwrap();
        let err =
            ConfedTopology::new(g, vec![SubAsId(0), SubAsId(0)], vec![(r(0), r(1))]).unwrap_err();
        assert_eq!(err, TopologyError::CrossClusterClientSession(r(0), r(1)));
    }

    #[test]
    fn rejects_disconnected_and_mismatched() {
        let g = PhysicalGraph::new(2);
        assert_eq!(
            ConfedTopology::new(g, vec![SubAsId(0), SubAsId(1)], vec![]).unwrap_err(),
            TopologyError::Disconnected
        );
        let mut g = PhysicalGraph::new(2);
        g.add_link(r(0), r(1), c(1)).unwrap();
        assert!(matches!(
            ConfedTopology::new(g, vec![SubAsId(0)], vec![]).unwrap_err(),
            TopologyError::NodeCountMismatch { .. }
        ));
    }
}
