//! The logical graph `G_I = (V, E_I)` — I-BGP peering sessions under route
//! reflection (§2, §4).
//!
//! `V` is partitioned into clusters `C_1 … C_k`; each cluster has a
//! non-empty set of reflectors `R_i` and a (possibly empty) set of clients
//! `N_i = C_i \ R_i`. The edges of `E_I` are exactly:
//!
//! 1. every pair of reflectors (the top-level full mesh),
//! 2. every client to every reflector of its own cluster,
//! 3. *no* edge from a client to any node of a different cluster,
//! 4. optionally, arbitrary pairs of clients within the same cluster.
//!
//! Fully meshed I-BGP is the degenerate case of singleton reflector-only
//! clusters ([`IbgpTopology::full_mesh`]).

use crate::error::TopologyError;
use ibgp_types::{ClusterId, RouterId};
use serde::{Deserialize, Serialize};

/// The role of a node within its cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// A route reflector of the given cluster (member of `R_i`).
    Reflector(ClusterId),
    /// A client of the given cluster (member of `N_i`).
    Client(ClusterId),
}

impl Role {
    /// The cluster this node belongs to.
    pub fn cluster(self) -> ClusterId {
        match self {
            Role::Reflector(c) | Role::Client(c) => c,
        }
    }

    /// True for reflectors.
    pub fn is_reflector(self) -> bool {
        matches!(self, Role::Reflector(_))
    }
}

/// One route-reflection cluster: reflectors plus clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    id: ClusterId,
    reflectors: Vec<RouterId>,
    clients: Vec<RouterId>,
}

impl Cluster {
    /// The cluster id.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// The reflectors `R_i` (non-empty).
    pub fn reflectors(&self) -> &[RouterId] {
        &self.reflectors
    }

    /// The clients `N_i`.
    pub fn clients(&self) -> &[RouterId] {
        &self.clients
    }

    /// All members `C_i = R_i ∪ N_i`.
    pub fn members(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.reflectors.iter().chain(self.clients.iter()).copied()
    }
}

/// An explicit I-BGP session graph, overriding the partition-derived
/// `E_I` (see [`IbgpTopology::explicit`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ExplicitSessions {
    /// Undirected peer sessions, stored with `u < v`, sorted.
    peers: Vec<(RouterId, RouterId)>,
    /// Directed reflector→client edges, sorted.
    clients: Vec<(RouterId, RouterId)>,
}

/// The validated I-BGP session structure of an AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IbgpTopology {
    clusters: Vec<Cluster>,
    /// Role of each node, indexed by router id.
    roles: Vec<Role>,
    /// Intra-cluster client–client sessions (constraint 4), stored with
    /// `u < v`.
    extra_client_sessions: Vec<(RouterId, RouterId)>,
    /// When set, the session graph is the explicit one and the cluster
    /// partition above is a synthetic singleton cover (see
    /// [`IbgpTopology::explicit`]).
    #[serde(default)]
    explicit: Option<ExplicitSessions>,
}

impl IbgpTopology {
    /// Build and validate the cluster structure over `n` routers.
    ///
    /// `clusters` is a list of `(reflectors, clients)` pairs;
    /// `client_sessions` the optional intra-cluster client peerings.
    pub fn new(
        n: usize,
        clusters: Vec<(Vec<RouterId>, Vec<RouterId>)>,
        client_sessions: Vec<(RouterId, RouterId)>,
    ) -> Result<Self, TopologyError> {
        let mut roles: Vec<Option<Role>> = vec![None; n];
        let mut built = Vec::with_capacity(clusters.len());
        for (idx, (reflectors, clients)) in clusters.into_iter().enumerate() {
            let cid = ClusterId::new(idx as u32);
            if reflectors.is_empty() {
                return Err(TopologyError::ClusterWithoutReflector(cid));
            }
            for &u in &reflectors {
                assign(&mut roles, u, Role::Reflector(cid), n)?;
            }
            for &u in &clients {
                assign(&mut roles, u, Role::Client(cid), n)?;
            }
            built.push(Cluster {
                id: cid,
                reflectors,
                clients,
            });
        }
        let mut resolved = Vec::with_capacity(n);
        for (i, role) in roles.into_iter().enumerate() {
            match role {
                Some(r) => resolved.push(r),
                None => return Err(TopologyError::NodeUnclustered(RouterId::new(i as u32))),
            }
        }
        let mut extra = Vec::with_capacity(client_sessions.len());
        for (u, v) in client_sessions {
            if u.index() >= n {
                return Err(TopologyError::NodeOutOfRange { node: u, len: n });
            }
            if v.index() >= n {
                return Err(TopologyError::NodeOutOfRange { node: v, len: n });
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            let (ru, rv) = (resolved[u.index()], resolved[v.index()]);
            if ru.is_reflector() || rv.is_reflector() {
                return Err(TopologyError::ExtraSessionNotBetweenClients(u, v));
            }
            if ru.cluster() != rv.cluster() {
                return Err(TopologyError::CrossClusterClientSession(u, v));
            }
            let pair = if u < v { (u, v) } else { (v, u) };
            if !extra.contains(&pair) {
                extra.push(pair);
            }
        }
        extra.sort();
        Ok(Self {
            clusters: built,
            roles: resolved,
            extra_client_sessions: extra,
            explicit: None,
        })
    }

    /// Build an *explicit* session graph: `peers` are plain (undirected)
    /// I-BGP peerings, `clients` are directed reflector→client edges
    /// (which are also sessions). Nothing else is a session.
    ///
    /// The cluster partition (§2) can only express session graphs where
    /// the reflectors form a full mesh and every client peers with
    /// exactly its own cluster's reflectors. Real configurations — e.g.
    /// the cbgp validation topologies, where a router is a client of one
    /// neighbor and a plain peer of another — need the edge list itself.
    /// Routers are given synthetic singleton `Reflector` roles so the
    /// partition accessors stay total; role-based queries are not
    /// meaningful here, and [`Self::client_edge`] / [`Self::reflects`]
    /// are the authoritative reflection relations.
    pub fn explicit(
        n: usize,
        peers: Vec<(RouterId, RouterId)>,
        clients: Vec<(RouterId, RouterId)>,
    ) -> Result<Self, TopologyError> {
        let check = |u: RouterId, v: RouterId| -> Result<(), TopologyError> {
            for node in [u, v] {
                if node.index() >= n {
                    return Err(TopologyError::NodeOutOfRange { node, len: n });
                }
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            Ok(())
        };
        let mut undirected = Vec::with_capacity(peers.len());
        for (u, v) in peers {
            check(u, v)?;
            let pair = if u < v { (u, v) } else { (v, u) };
            if !undirected.contains(&pair) {
                undirected.push(pair);
            }
        }
        undirected.sort();
        let mut directed = Vec::with_capacity(clients.len());
        for (v, u) in clients {
            check(v, u)?;
            if !directed.contains(&(v, u)) {
                directed.push((v, u));
            }
        }
        directed.sort();
        let mesh = Self::full_mesh(n);
        Ok(Self {
            explicit: Some(ExplicitSessions {
                peers: undirected,
                clients: directed,
            }),
            ..mesh
        })
    }

    /// Fully meshed I-BGP: every router a reflector in its own cluster.
    pub fn full_mesh(n: usize) -> Self {
        let clusters = (0..n)
            .map(|i| (ClusterId::new(i as u32), vec![RouterId::new(i as u32)]))
            .map(|(id, reflectors)| Cluster {
                id,
                reflectors,
                clients: Vec::new(),
            })
            .collect::<Vec<_>>();
        let roles = (0..n)
            .map(|i| Role::Reflector(ClusterId::new(i as u32)))
            .collect();
        Self {
            clusters,
            roles,
            extra_client_sessions: Vec::new(),
            explicit: None,
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True when no routers exist.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// The clusters, in id order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The role of a node.
    pub fn role(&self, u: RouterId) -> Role {
        self.roles[u.index()]
    }

    /// The cluster id of a node.
    pub fn cluster_of(&self, u: RouterId) -> ClusterId {
        self.roles[u.index()].cluster()
    }

    /// True for reflector nodes (members of `R`).
    pub fn is_reflector(&self, u: RouterId) -> bool {
        self.roles[u.index()].is_reflector()
    }

    /// True for client nodes (members of `N`).
    pub fn is_client(&self, u: RouterId) -> bool {
        !self.is_reflector(u)
    }

    /// Whether `u` and `v` are in the same cluster.
    pub fn same_cluster(&self, u: RouterId, v: RouterId) -> bool {
        self.cluster_of(u) == self.cluster_of(v)
    }

    /// Whether `uv ∈ E_I`: an I-BGP session exists between distinct `u`
    /// and `v`.
    pub fn is_session(&self, u: RouterId, v: RouterId) -> bool {
        if u == v {
            return false;
        }
        if let Some(ex) = &self.explicit {
            let pair = if u < v { (u, v) } else { (v, u) };
            return ex.peers.binary_search(&pair).is_ok()
                || ex.clients.binary_search(&(u, v)).is_ok()
                || ex.clients.binary_search(&(v, u)).is_ok();
        }
        match (self.roles[u.index()], self.roles[v.index()]) {
            // Constraint 1: reflector full mesh.
            (Role::Reflector(_), Role::Reflector(_)) => true,
            // Constraint 2: client <-> each reflector of its own cluster.
            (Role::Reflector(cr), Role::Client(cc)) | (Role::Client(cc), Role::Reflector(cr)) => {
                cr == cc
            }
            // Constraint 4: explicit intra-cluster client sessions.
            (Role::Client(_), Role::Client(_)) => {
                let pair = if u < v { (u, v) } else { (v, u) };
                self.extra_client_sessions.binary_search(&pair).is_ok()
            }
        }
    }

    /// The I-BGP peers of `u`, in ascending id order.
    pub fn peers(&self, u: RouterId) -> Vec<RouterId> {
        (0..self.len() as u32)
            .map(RouterId::new)
            .filter(|&v| self.is_session(u, v))
            .collect()
    }

    /// All sessions `(u, v)` with `u < v`.
    pub fn sessions(&self) -> Vec<(RouterId, RouterId)> {
        let n = self.len() as u32;
        let mut out = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let (u, v) = (RouterId::new(u), RouterId::new(v));
                if self.is_session(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// All reflector nodes `R`, ascending.
    pub fn reflectors(&self) -> Vec<RouterId> {
        (0..self.len() as u32)
            .map(RouterId::new)
            .filter(|&u| self.is_reflector(u))
            .collect()
    }

    /// All client nodes `N`, ascending.
    pub fn clients(&self) -> Vec<RouterId> {
        (0..self.len() as u32)
            .map(RouterId::new)
            .filter(|&u| self.is_client(u))
            .collect()
    }

    /// Whether `u` is a *client of* `v` (a directed reflector→client
    /// edge): the relation the message-level reflection rules key on.
    ///
    /// In partition mode, `u` is a client of every reflector of its own
    /// cluster; declared client–client sessions are plain peerings. In
    /// explicit mode the directed edge list is authoritative.
    pub fn client_edge(&self, v: RouterId, u: RouterId) -> bool {
        if let Some(ex) = &self.explicit {
            return ex.clients.binary_search(&(v, u)).is_ok();
        }
        self.is_reflector(v) && self.is_client(u) && self.same_cluster(v, u)
    }

    /// Whether `v` acts as a route reflector — i.e. may re-advertise
    /// learned routes at all. In explicit mode: has at least one client
    /// edge; in partition mode: is a reflector.
    pub fn reflects(&self, v: RouterId) -> bool {
        if let Some(ex) = &self.explicit {
            return ex.clients.iter().any(|&(rr, _)| rr == v);
        }
        self.is_reflector(v)
    }

    /// The declared intra-cluster client–client sessions (constraint 4),
    /// as `(u, v)` pairs with `u < v`, sorted. Exporters (e.g. the
    /// `.ibgp` scenario format) need these separately from the sessions
    /// derived from cluster roles.
    pub fn client_sessions(&self) -> &[(RouterId, RouterId)] {
        &self.extra_client_sessions
    }
}

fn assign(
    roles: &mut [Option<Role>],
    u: RouterId,
    role: Role,
    n: usize,
) -> Result<(), TopologyError> {
    if u.index() >= n {
        return Err(TopologyError::NodeOutOfRange { node: u, len: n });
    }
    let slot = &mut roles[u.index()];
    if slot.is_some() {
        return Err(TopologyError::NodeInMultipleClusters(u));
    }
    *slot = Some(role);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    /// Two clusters: {RR0; clients 1,2} and {RR3; client 4}.
    fn sample() -> IbgpTopology {
        IbgpTopology::new(
            5,
            vec![(vec![r(0)], vec![r(1), r(2)]), (vec![r(3)], vec![r(4)])],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn roles_and_clusters() {
        let t = sample();
        assert!(t.is_reflector(r(0)));
        assert!(t.is_client(r(1)));
        assert_eq!(t.cluster_of(r(4)), ClusterId::new(1));
        assert!(t.same_cluster(r(0), r(2)));
        assert!(!t.same_cluster(r(2), r(4)));
        assert_eq!(t.reflectors(), vec![r(0), r(3)]);
        assert_eq!(t.clients(), vec![r(1), r(2), r(4)]);
    }

    #[test]
    fn session_rules() {
        let t = sample();
        // Reflector mesh.
        assert!(t.is_session(r(0), r(3)));
        // Client to own reflector.
        assert!(t.is_session(r(1), r(0)));
        assert!(t.is_session(r(4), r(3)));
        // No client to foreign reflector or foreign client.
        assert!(!t.is_session(r(1), r(3)));
        assert!(!t.is_session(r(1), r(4)));
        // No intra-cluster client sessions unless declared.
        assert!(!t.is_session(r(1), r(2)));
        // Never self-sessions.
        assert!(!t.is_session(r(0), r(0)));
    }

    #[test]
    fn declared_client_sessions_work() {
        let t =
            IbgpTopology::new(3, vec![(vec![r(0)], vec![r(1), r(2)])], vec![(r(2), r(1))]).unwrap();
        assert!(t.is_session(r(1), r(2)));
        assert!(t.is_session(r(2), r(1)));
    }

    #[test]
    fn rejects_cross_cluster_client_sessions() {
        let err = IbgpTopology::new(
            4,
            vec![(vec![r(0)], vec![r(1)]), (vec![r(2)], vec![r(3)])],
            vec![(r(1), r(3))],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::CrossClusterClientSession(r(1), r(3)));
    }

    #[test]
    fn rejects_extra_sessions_touching_reflectors() {
        let err = IbgpTopology::new(3, vec![(vec![r(0)], vec![r(1), r(2)])], vec![(r(0), r(1))])
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::ExtraSessionNotBetweenClients(r(0), r(1))
        );
    }

    #[test]
    fn rejects_unclustered_and_duplicated_nodes() {
        let err = IbgpTopology::new(3, vec![(vec![r(0)], vec![r(1)])], vec![]).unwrap_err();
        assert_eq!(err, TopologyError::NodeUnclustered(r(2)));
        let err = IbgpTopology::new(
            2,
            vec![(vec![r(0)], vec![r(1)]), (vec![r(1)], vec![])],
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::NodeInMultipleClusters(r(1)));
    }

    #[test]
    fn rejects_reflectorless_cluster() {
        let err = IbgpTopology::new(1, vec![(vec![], vec![r(0)])], vec![]).unwrap_err();
        assert_eq!(
            err,
            TopologyError::ClusterWithoutReflector(ClusterId::new(0))
        );
    }

    #[test]
    fn full_mesh_has_all_pairs() {
        let t = IbgpTopology::full_mesh(4);
        assert_eq!(t.sessions().len(), 6);
        for u in 0..4 {
            assert!(t.is_reflector(r(u)));
        }
        assert!(t.is_session(r(0), r(3)));
    }

    #[test]
    fn peers_are_sorted_and_complete() {
        let t = sample();
        assert_eq!(t.peers(r(0)), vec![r(1), r(2), r(3)]);
        assert_eq!(t.peers(r(1)), vec![r(0)]);
        assert_eq!(t.peers(r(3)), vec![r(0), r(4)]);
    }

    #[test]
    fn sessions_count_matches_structure() {
        let t = sample();
        // RR mesh: (0,3). Clients: (0,1),(0,2),(3,4).
        assert_eq!(
            t.sessions(),
            vec![(r(0), r(1)), (r(0), r(2)), (r(0), r(3)), (r(3), r(4))]
        );
    }

    #[test]
    fn explicit_sessions_are_the_edge_list() {
        // cbgp's `bgp_rr` shape: 0—1 peers, 2—3 peers, 1—4 peers, 2 a
        // client of 1. No partition can express this graph.
        let t = IbgpTopology::explicit(
            5,
            vec![(r(0), r(1)), (r(2), r(3)), (r(1), r(4))],
            vec![(r(1), r(2))],
        )
        .unwrap();
        assert!(t.is_session(r(0), r(1)));
        assert!(t.is_session(r(1), r(2))); // client edge is a session
        assert!(t.is_session(r(2), r(1)));
        assert!(t.is_session(r(2), r(3)));
        assert!(!t.is_session(r(0), r(2)));
        assert!(!t.is_session(r(3), r(4)));
        assert!(!t.is_session(r(1), r(1)));
        assert!(t.client_edge(r(1), r(2)));
        assert!(!t.client_edge(r(2), r(1))); // directed
        assert!(!t.client_edge(r(0), r(1)));
        assert!(t.reflects(r(1)));
        assert!(!t.reflects(r(0)));
        assert_eq!(t.peers(r(1)), vec![r(0), r(2), r(4)]);
    }

    #[test]
    fn explicit_rejects_bad_edges() {
        assert_eq!(
            IbgpTopology::explicit(2, vec![(r(0), r(2))], vec![]).unwrap_err(),
            TopologyError::NodeOutOfRange {
                node: r(2),
                len: 2
            }
        );
        assert_eq!(
            IbgpTopology::explicit(2, vec![], vec![(r(1), r(1))]).unwrap_err(),
            TopologyError::SelfLoop(r(1))
        );
    }

    #[test]
    fn partition_client_edges_follow_roles() {
        let t = sample();
        assert!(t.client_edge(r(0), r(1)));
        assert!(t.client_edge(r(0), r(2)));
        assert!(!t.client_edge(r(0), r(4))); // other cluster
        assert!(!t.client_edge(r(1), r(2))); // clients have no clients
        assert!(!t.client_edge(r(1), r(0))); // directed
        assert!(t.reflects(r(0)));
        assert!(!t.reflects(r(1)));
    }

    #[test]
    fn multi_reflector_cluster_sessions() {
        // One cluster with two reflectors and one client: client peers with
        // both reflectors; reflectors peer with each other.
        let t = IbgpTopology::new(3, vec![(vec![r(0), r(1)], vec![r(2)])], vec![]).unwrap();
        assert!(t.is_session(r(0), r(1)));
        assert!(t.is_session(r(2), r(0)));
        assert!(t.is_session(r(2), r(1)));
    }
}
