//! The physical graph `G_P = (V, E_P)` with IGP link costs.
//!
//! Undirected, simple (no self-loops or parallel links), with positive
//! integer costs, exactly as §4 requires. The graph is adjacency-list based
//! and immutable after construction apart from [`PhysicalGraph::add_link`];
//! the SPF table is computed separately so scenario code can build the
//! graph incrementally.

use crate::error::TopologyError;
use ibgp_types::{IgpCost, RouterId};
use serde::{Deserialize, Serialize};

/// An undirected weighted graph over routers `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalGraph {
    /// `adj[u]` = sorted list of `(neighbor, cost)`.
    adj: Vec<Vec<(RouterId, IgpCost)>>,
}

impl PhysicalGraph {
    /// An edgeless graph over `n` routers.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when there are no routers.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    fn check_node(&self, u: RouterId) -> Result<(), TopologyError> {
        if u.index() >= self.len() {
            Err(TopologyError::NodeOutOfRange {
                node: u,
                len: self.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Add an undirected link `u–v` with the given positive cost.
    pub fn add_link(
        &mut self,
        u: RouterId,
        v: RouterId,
        cost: IgpCost,
    ) -> Result<(), TopologyError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(TopologyError::SelfLoop(u));
        }
        if cost == IgpCost::ZERO || cost.is_infinite() {
            return Err(TopologyError::NonPositiveCost(u, v));
        }
        if self.cost(u, v).is_some() {
            return Err(TopologyError::DuplicateLink(u, v));
        }
        let pos = self.adj[u.index()].partition_point(|&(w, _)| w < v);
        self.adj[u.index()].insert(pos, (v, cost));
        let pos = self.adj[v.index()].partition_point(|&(w, _)| w < u);
        self.adj[v.index()].insert(pos, (u, cost));
        Ok(())
    }

    /// The cost of the direct link `u–v`, if one exists.
    pub fn cost(&self, u: RouterId, v: RouterId) -> Option<IgpCost> {
        self.adj
            .get(u.index())?
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, c)| c)
    }

    /// Neighbors of `u` with link costs, in ascending neighbor order.
    pub fn neighbors(&self, u: RouterId) -> &[(RouterId, IgpCost)] {
        &self.adj[u.index()]
    }

    /// All undirected links `(u, v, cost)` with `u < v`.
    pub fn links(&self) -> impl Iterator<Item = (RouterId, RouterId, IgpCost)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = RouterId::new(u as u32);
            nbrs.iter()
                .filter(move |&&(v, _)| u < v)
                .map(move |&(v, c)| (u, v, c))
        })
    }

    /// Whether the graph is connected (vacuously true when empty).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adj[u] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v.index());
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn c(v: u64) -> IgpCost {
        IgpCost::new(v)
    }

    #[test]
    fn add_link_is_symmetric_and_sorted() {
        let mut g = PhysicalGraph::new(3);
        g.add_link(r(0), r(2), c(5)).unwrap();
        g.add_link(r(0), r(1), c(3)).unwrap();
        assert_eq!(g.cost(r(2), r(0)), Some(c(5)));
        assert_eq!(g.cost(r(0), r(1)), Some(c(3)));
        assert_eq!(g.neighbors(r(0)), &[(r(1), c(3)), (r(2), c(5))]);
        assert_eq!(g.link_count(), 2);
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = PhysicalGraph::new(2);
        assert_eq!(
            g.add_link(r(0), r(0), c(1)),
            Err(TopologyError::SelfLoop(r(0)))
        );
        g.add_link(r(0), r(1), c(1)).unwrap();
        assert_eq!(
            g.add_link(r(1), r(0), c(2)),
            Err(TopologyError::DuplicateLink(r(1), r(0)))
        );
    }

    #[test]
    fn rejects_zero_and_infinite_costs() {
        let mut g = PhysicalGraph::new(2);
        assert_eq!(
            g.add_link(r(0), r(1), IgpCost::ZERO),
            Err(TopologyError::NonPositiveCost(r(0), r(1)))
        );
        assert_eq!(
            g.add_link(r(0), r(1), IgpCost::INFINITY),
            Err(TopologyError::NonPositiveCost(r(0), r(1)))
        );
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let mut g = PhysicalGraph::new(2);
        assert!(matches!(
            g.add_link(r(0), r(5), c(1)),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn connectivity() {
        let mut g = PhysicalGraph::new(3);
        assert!(!g.is_connected());
        g.add_link(r(0), r(1), c(1)).unwrap();
        assert!(!g.is_connected());
        g.add_link(r(1), r(2), c(1)).unwrap();
        assert!(g.is_connected());
        assert!(PhysicalGraph::new(0).is_connected());
        assert!(PhysicalGraph::new(1).is_connected());
    }

    #[test]
    fn links_iterator_lists_each_link_once() {
        let mut g = PhysicalGraph::new(3);
        g.add_link(r(0), r(1), c(1)).unwrap();
        g.add_link(r(1), r(2), c(2)).unwrap();
        let links: Vec<_> = g.links().collect();
        assert_eq!(links, vec![(r(0), r(1), c(1)), (r(1), r(2), c(2))]);
    }
}
