//! Graphviz (DOT) export of topologies, for documentation and debugging.
//!
//! Reflectors render as boxes, clients as ellipses; physical links are solid
//! with their IGP cost, I-BGP sessions that do not coincide with a physical
//! link are dashed.

use crate::Topology;
use std::fmt::Write as _;

/// Render a topology as a DOT graph.
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph as0 {{");
    let _ = writeln!(out, "  layout=neato;");
    for u in topo.routers() {
        let shape = if topo.ibgp().is_reflector(u) {
            "box"
        } else {
            "ellipse"
        };
        let cluster = topo.ibgp().cluster_of(u);
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\", shape={}];",
            u.raw(),
            u,
            cluster,
            shape
        );
    }
    for (u, v, cost) in topo.physical().links() {
        let _ = writeln!(out, "  n{} -- n{} [label=\"{}\"];", u.raw(), v.raw(), cost);
    }
    for (u, v) in topo.ibgp().sessions() {
        if topo.physical().cost(u, v).is_none() {
            let _ = writeln!(
                out,
                "  n{} -- n{} [style=dashed, color=gray];",
                u.raw(),
                v.raw()
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn dot_output_mentions_all_nodes_and_links() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 5)
            .link(1, 2, 7)
            .cluster([0], [1])
            .cluster([2], [])
            .build()
            .unwrap();
        let dot = to_dot(&topo);
        assert!(dot.contains("n0 [label=\"r0"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("n0 -- n1 [label=\"5\"]"));
        // RR session 0–2 has no physical link, so it renders dashed.
        assert!(dot.contains("n0 -- n2 [style=dashed"));
        assert!(dot.starts_with("graph as0 {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
