//! Fluent construction of validated [`Topology`] values.
//!
//! ```
//! use ibgp_topology::TopologyBuilder;
//! use ibgp_types::RouterId;
//!
//! // Two clusters: reflector 0 with clients 1,2; reflector 3 with client 4.
//! let topo = TopologyBuilder::new(5)
//!     .link(0, 1, 1)
//!     .link(0, 2, 1)
//!     .link(0, 3, 10)
//!     .link(3, 4, 1)
//!     .cluster([0], [1, 2])
//!     .cluster([3], [4])
//!     .build()
//!     .unwrap();
//! assert!(topo.ibgp().is_reflector(RouterId::new(0)));
//! ```

use crate::error::TopologyError;
use crate::logical::IbgpTopology;
use crate::physical::PhysicalGraph;
use crate::Topology;
use ibgp_types::{BgpId, IgpCost, RouterId};

/// Builder for [`Topology`]. Nodes are `0..n`; BGP identifiers default to
/// the router index.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    n: usize,
    links: Vec<(u32, u32, u64)>,
    clusters: Vec<(Vec<RouterId>, Vec<RouterId>)>,
    client_sessions: Vec<(RouterId, RouterId)>,
    explicit_peers: Vec<(RouterId, RouterId)>,
    explicit_clients: Vec<(RouterId, RouterId)>,
    bgp_ids: Vec<BgpId>,
    full_mesh: bool,
}

impl TopologyBuilder {
    /// Start a builder over `n` routers.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            links: Vec::new(),
            clusters: Vec::new(),
            client_sessions: Vec::new(),
            explicit_peers: Vec::new(),
            explicit_clients: Vec::new(),
            bgp_ids: (0..n as u32).map(BgpId::new).collect(),
            full_mesh: false,
        }
    }

    /// Add an undirected physical link with the given IGP cost.
    pub fn link(mut self, u: u32, v: u32, cost: u64) -> Self {
        self.links.push((u, v, cost));
        self
    }

    /// Declare a cluster from reflector ids and client ids.
    pub fn cluster(
        mut self,
        reflectors: impl IntoIterator<Item = u32>,
        clients: impl IntoIterator<Item = u32>,
    ) -> Self {
        self.clusters.push((
            reflectors.into_iter().map(RouterId::new).collect(),
            clients.into_iter().map(RouterId::new).collect(),
        ));
        self
    }

    /// Declare an intra-cluster client–client I-BGP session.
    pub fn client_session(mut self, u: u32, v: u32) -> Self {
        self.client_sessions
            .push((RouterId::new(u), RouterId::new(v)));
        self
    }

    /// Declare an explicit (undirected) I-BGP peering. Using this or
    /// [`Self::rr_client`] switches the logical graph to explicit mode
    /// ([`IbgpTopology::explicit`]); declared clusters are then ignored.
    pub fn peer(mut self, u: u32, v: u32) -> Self {
        self.explicit_peers.push((RouterId::new(u), RouterId::new(v)));
        self
    }

    /// Declare an explicit directed reflector→client edge (also a
    /// session). See [`Self::peer`].
    pub fn rr_client(mut self, rr: u32, client: u32) -> Self {
        self.explicit_clients
            .push((RouterId::new(rr), RouterId::new(client)));
        self
    }

    /// Use fully meshed I-BGP (ignores any declared clusters).
    pub fn full_mesh(mut self) -> Self {
        self.full_mesh = true;
        self
    }

    /// Override a router's BGP identifier (defaults to its index).
    pub fn bgp_id(mut self, node: u32, id: u32) -> Self {
        if let Some(slot) = self.bgp_ids.get_mut(node as usize) {
            *slot = BgpId::new(id);
        }
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let mut physical = PhysicalGraph::new(self.n);
        for (u, v, cost) in self.links {
            physical.add_link(RouterId::new(u), RouterId::new(v), IgpCost::new(cost))?;
        }
        let ibgp = if !self.explicit_peers.is_empty() || !self.explicit_clients.is_empty() {
            IbgpTopology::explicit(self.n, self.explicit_peers, self.explicit_clients)?
        } else if self.full_mesh {
            IbgpTopology::full_mesh(self.n)
        } else {
            IbgpTopology::new(self.n, self.clusters, self.client_sessions)?
        };
        Topology::new(physical, ibgp, self.bgp_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_topology() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 2)
            .cluster([0], [1])
            .cluster([2], [])
            .build()
            .unwrap();
        assert_eq!(topo.len(), 3);
        assert_eq!(
            topo.igp_cost(RouterId::new(0), RouterId::new(2)),
            IgpCost::new(3)
        );
        assert_eq!(topo.bgp_id(RouterId::new(1)), BgpId::new(1));
    }

    #[test]
    fn full_mesh_overrides_clusters() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        assert!(topo.ibgp().is_session(RouterId::new(0), RouterId::new(1)));
        assert!(topo.ibgp().is_reflector(RouterId::new(1)));
    }

    #[test]
    fn disconnected_graphs_are_rejected() {
        let err = TopologyBuilder::new(2)
            .cluster([0], [])
            .cluster([1], [])
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::Disconnected);
    }

    #[test]
    fn duplicate_bgp_ids_are_rejected() {
        let err = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .bgp_id(1, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TopologyError::DuplicateBgpId { .. }));
    }

    #[test]
    fn custom_bgp_ids_are_respected() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .bgp_id(0, 100)
            .bgp_id(1, 50)
            .build()
            .unwrap();
        assert_eq!(topo.bgp_id(RouterId::new(0)), BgpId::new(100));
        assert_eq!(topo.bgp_id(RouterId::new(1)), BgpId::new(50));
    }

    #[test]
    fn single_router_topology_is_valid() {
        let topo = TopologyBuilder::new(1).cluster([0], []).build().unwrap();
        assert_eq!(topo.len(), 1);
        assert_eq!(
            topo.igp_cost(RouterId::new(0), RouterId::new(0)),
            IgpCost::ZERO
        );
    }
}
