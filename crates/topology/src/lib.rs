//! # ibgp-topology
//!
//! The graph substrate of the paper's model (§4):
//!
//! * [`PhysicalGraph`] — `G_P = (V, E_P)`: routers of `AS0` and their
//!   physical links with positive IGP costs.
//! * [`SpfTable`] — the deterministic shortest-path function `SP(u, v)`:
//!   all-pairs Dijkstra with a fixed tie-breaking rule, so every simulator
//!   in the workspace sees the *same* selected shortest paths (the paper
//!   requires `SP` to be "chosen deterministically from one of the least
//!   cost paths").
//! * [`IbgpTopology`] — `G_I = (V, E_I)`: the I-BGP peering sessions
//!   induced by a partition of `V` into route-reflection clusters, each
//!   with reflector and client nodes, validated against the four structural
//!   constraints of §4.
//! * [`Topology`] — the bundle of both graphs plus per-router BGP
//!   identifiers, as consumed by `ibgp-proto` and the simulators.
//!
//! Fully meshed I-BGP is the special case where every router is a reflector
//! in a singleton cluster ([`IbgpTopology::full_mesh`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod canon;
pub mod error;
pub mod logical;
pub mod physical;
pub mod spf;
pub mod viz;

pub use builder::TopologyBuilder;
pub use error::TopologyError;
pub use logical::{Cluster, IbgpTopology, Role};
pub use physical::PhysicalGraph;
pub use spf::SpfTable;

use ibgp_types::{BgpId, IgpCost, RouterId};

/// A complete, validated `AS0` topology: physical graph, precomputed SPF,
/// logical session graph, and per-router BGP identifiers.
#[derive(Debug, Clone)]
pub struct Topology {
    physical: PhysicalGraph,
    spf: SpfTable,
    ibgp: IbgpTopology,
    bgp_ids: Vec<BgpId>,
}

impl Topology {
    /// Assemble and validate a topology. Prefer [`TopologyBuilder`] for
    /// construction in application code.
    ///
    /// `bgp_ids[i]` is the BGP identifier of router `i`; it must be unique.
    pub fn new(
        physical: PhysicalGraph,
        ibgp: IbgpTopology,
        bgp_ids: Vec<BgpId>,
    ) -> Result<Self, TopologyError> {
        if physical.len() != ibgp.len() {
            return Err(TopologyError::NodeCountMismatch {
                physical: physical.len(),
                logical: ibgp.len(),
            });
        }
        if bgp_ids.len() != physical.len() {
            return Err(TopologyError::NodeCountMismatch {
                physical: physical.len(),
                logical: bgp_ids.len(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for (i, id) in bgp_ids.iter().enumerate() {
            if !seen.insert(*id) {
                return Err(TopologyError::DuplicateBgpId {
                    node: RouterId::new(i as u32),
                    bgp_id: *id,
                });
            }
        }
        if !physical.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        let spf = SpfTable::compute(&physical);
        Ok(Self {
            physical,
            spf,
            ibgp,
            bgp_ids,
        })
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.physical.len()
    }

    /// True when the topology has no routers (never, post-validation).
    pub fn is_empty(&self) -> bool {
        self.physical.is_empty()
    }

    /// All router ids, in index order.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.len() as u32).map(RouterId::new)
    }

    /// The physical graph.
    pub fn physical(&self) -> &PhysicalGraph {
        &self.physical
    }

    /// The precomputed all-pairs shortest paths.
    pub fn spf(&self) -> &SpfTable {
        &self.spf
    }

    /// The I-BGP session graph.
    pub fn ibgp(&self) -> &IbgpTopology {
        &self.ibgp
    }

    /// The BGP identifier of a router.
    pub fn bgp_id(&self, node: RouterId) -> BgpId {
        self.bgp_ids[node.index()]
    }

    /// `cost(SP(u, v))` — the IGP distance between two routers.
    pub fn igp_cost(&self, u: RouterId, v: RouterId) -> IgpCost {
        self.spf.cost(u, v)
    }
}
