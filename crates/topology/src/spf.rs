//! Deterministic shortest paths — the `SP(u, v)` function of §4.
//!
//! The paper requires the shortest path between two routers to be "chosen
//! (deterministically) from one of the least cost paths". We implement
//! all-pairs Dijkstra with a fixed tie-breaking rule: among equal-cost
//! alternatives, a node's parent in the tree rooted at `s` is the
//! lowest-numbered neighbor that achieves the minimum distance. Every
//! component of the workspace therefore agrees on the selected paths,
//! which matters for forwarding analysis (real routes, §7) and for the
//! IGP-metric comparisons of selection rules 4/5.

use crate::physical::PhysicalGraph;
use ibgp_types::{IgpCost, RouterId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// All-pairs shortest-path distances and deterministic parent pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpfTable {
    n: usize,
    /// `dist[s][v]` = cost of `SP(s, v)`.
    dist: Vec<Vec<IgpCost>>,
    /// `parent[s][v]` = predecessor of `v` on `SP(s, v)`; `None` for `v = s`
    /// or unreachable `v`.
    parent: Vec<Vec<Option<RouterId>>>,
}

impl SpfTable {
    /// Run Dijkstra from every source.
    pub fn compute(g: &PhysicalGraph) -> Self {
        let n = g.len();
        let mut dist = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        for s in 0..n {
            let (d, p) = dijkstra(g, RouterId::new(s as u32));
            dist.push(d);
            parent.push(p);
        }
        Self { n, dist, parent }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table covers no routers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `cost(SP(u, v))`; [`IgpCost::INFINITY`] if unreachable.
    pub fn cost(&self, u: RouterId, v: RouterId) -> IgpCost {
        self.dist[u.index()][v.index()]
    }

    /// The selected shortest path from `u` to `v`, inclusive of both
    /// endpoints. `None` if `v` is unreachable from `u`.
    pub fn path(&self, u: RouterId, v: RouterId) -> Option<Vec<RouterId>> {
        if self.cost(u, v).is_infinite() {
            return None;
        }
        let mut rev = vec![v];
        let mut cur = v;
        while cur != u {
            cur = self.parent[u.index()][cur.index()]?;
            rev.push(cur);
        }
        rev.reverse();
        Some(rev)
    }

    /// The first hop on `SP(u, v)`: the neighbor `u` forwards to when its
    /// best route exits at `v`. `None` when `u == v` or `v` is unreachable.
    pub fn next_hop(&self, u: RouterId, v: RouterId) -> Option<RouterId> {
        if u == v || self.cost(u, v).is_infinite() {
            return None;
        }
        // Walk parent pointers from v back until the node whose parent is u.
        let mut cur = v;
        loop {
            let par = self.parent[u.index()][cur.index()]?;
            if par == u {
                return Some(cur);
            }
            cur = par;
        }
    }
}

/// Single-source Dijkstra with deterministic tie-breaking.
///
/// The priority queue orders by `(distance, node id)`; on equal new
/// distances the parent is only replaced by a strictly lower-numbered
/// candidate. The result is the unique "lexicographically smallest parent"
/// shortest-path tree.
fn dijkstra(g: &PhysicalGraph, s: RouterId) -> (Vec<IgpCost>, Vec<Option<RouterId>>) {
    let n = g.len();
    let mut dist = vec![IgpCost::INFINITY; n];
    let mut parent: Vec<Option<RouterId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(IgpCost, RouterId)>> = BinaryHeap::new();
    dist[s.index()] = IgpCost::ZERO;
    heap.push(Reverse((IgpCost::ZERO, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        debug_assert_eq!(d, dist[u.index()]);
        for &(v, w) in g.neighbors(u) {
            if done[v.index()] {
                continue;
            }
            let nd = d.saturating_add(w);
            let dv = &mut dist[v.index()];
            if nd < *dv {
                *dv = nd;
                parent[v.index()] = Some(u);
                heap.push(Reverse((nd, v)));
            } else if nd == *dv {
                // Deterministic tie-break: keep the lowest-numbered parent.
                if let Some(p) = parent[v.index()] {
                    if u < p {
                        parent[v.index()] = Some(u);
                    }
                }
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TopologyError;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn c(v: u64) -> IgpCost {
        IgpCost::new(v)
    }

    fn line(costs: &[u64]) -> PhysicalGraph {
        let mut g = PhysicalGraph::new(costs.len() + 1);
        for (i, &w) in costs.iter().enumerate() {
            g.add_link(r(i as u32), r(i as u32 + 1), c(w)).unwrap();
        }
        g
    }

    #[test]
    fn line_graph_distances() {
        let g = line(&[1, 2, 3]);
        let spf = SpfTable::compute(&g);
        assert_eq!(spf.cost(r(0), r(3)), c(6));
        assert_eq!(spf.cost(r(3), r(0)), c(6));
        assert_eq!(spf.cost(r(1), r(1)), IgpCost::ZERO);
        assert_eq!(spf.path(r(0), r(3)).unwrap(), vec![r(0), r(1), r(2), r(3)]);
        assert_eq!(spf.next_hop(r(0), r(3)), Some(r(1)));
        assert_eq!(spf.next_hop(r(3), r(0)), Some(r(2)));
        assert_eq!(spf.next_hop(r(2), r(2)), None);
    }

    #[test]
    fn shortcut_wins() {
        // 0-1-2 with costs 1+1, plus direct 0-2 with cost 3: path via 1 wins.
        let mut g = line(&[1, 1]);
        g.add_link(r(0), r(2), c(3)).unwrap();
        let spf = SpfTable::compute(&g);
        assert_eq!(spf.cost(r(0), r(2)), c(2));
        assert_eq!(spf.path(r(0), r(2)).unwrap(), vec![r(0), r(1), r(2)]);
    }

    #[test]
    fn tie_break_prefers_low_numbered_parent() {
        // Diamond: 0–1 and 0–2 cost 1; 1–3 and 2–3 cost 1. Two equal paths
        // 0-1-3 and 0-2-3; the deterministic rule selects parent 1 for node 3.
        let mut g = PhysicalGraph::new(4);
        g.add_link(r(0), r(1), c(1)).unwrap();
        g.add_link(r(0), r(2), c(1)).unwrap();
        g.add_link(r(1), r(3), c(1)).unwrap();
        g.add_link(r(2), r(3), c(1)).unwrap();
        let spf = SpfTable::compute(&g);
        assert_eq!(spf.path(r(0), r(3)).unwrap(), vec![r(0), r(1), r(3)]);
        // And from the other root the same rule applies symmetrically.
        assert_eq!(spf.path(r(3), r(0)).unwrap(), vec![r(3), r(1), r(0)]);
    }

    #[test]
    fn unreachable_nodes_have_infinite_cost() {
        let g = PhysicalGraph::new(2); // no links
        let spf = SpfTable::compute(&g);
        assert!(spf.cost(r(0), r(1)).is_infinite());
        assert_eq!(spf.path(r(0), r(1)), None);
        assert_eq!(spf.next_hop(r(0), r(1)), None);
    }

    #[test]
    fn subpath_property_holds_within_a_tree() {
        // For any u,v: if w is on SP(u,v) then SP(u,v) restricted to w..v is
        // SP from u's tree — verify path costs telescope.
        let mut g = PhysicalGraph::new(5);
        let links = [(0, 1, 2), (1, 2, 2), (0, 3, 1), (3, 4, 1), (4, 2, 1)];
        for (u, v, w) in links {
            g.add_link(r(u), r(v), c(w)).unwrap();
        }
        let spf = SpfTable::compute(&g);
        assert_eq!(spf.cost(r(0), r(2)), c(3)); // via 3,4
        assert_eq!(spf.path(r(0), r(2)).unwrap(), vec![r(0), r(3), r(4), r(2)]);
        let path = spf.path(r(0), r(2)).unwrap();
        let mut acc = IgpCost::ZERO;
        for pair in path.windows(2) {
            acc = acc + g.cost(pair[0], pair[1]).unwrap();
        }
        assert_eq!(acc, spf.cost(r(0), r(2)));
    }

    #[test]
    fn dense_graph_matches_bellman_ford_oracle() {
        // Deterministic pseudo-random graph; compare distances against a
        // simple Bellman-Ford implementation.
        let n = 12usize;
        let mut g = PhysicalGraph::new(n);
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for u in 0..n {
            for v in (u + 1)..n {
                if next() % 3 != 0 {
                    let w = next() % 9 + 1;
                    match g.add_link(r(u as u32), r(v as u32), c(w)) {
                        Ok(()) | Err(TopologyError::DuplicateLink(..)) => {}
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }
        // Ensure connectivity with a cheap ring.
        for u in 0..n {
            let v = (u + 1) % n;
            let _ = g.add_link(r(u as u32), r(v as u32), c(10));
        }
        assert!(g.is_connected());
        let spf = SpfTable::compute(&g);
        for s in 0..n {
            let mut dist = vec![IgpCost::INFINITY; n];
            dist[s] = IgpCost::ZERO;
            for _ in 0..n {
                for (u, v, w) in g.links().collect::<Vec<_>>() {
                    let du = dist[u.index()];
                    let dv = dist[v.index()];
                    if du.saturating_add(w) < dv {
                        dist[v.index()] = du.saturating_add(w);
                    }
                    if dv.saturating_add(w) < du {
                        dist[u.index()] = dv.saturating_add(w);
                    }
                }
            }
            for (v, &expect) in dist.iter().enumerate() {
                assert_eq!(
                    spf.cost(r(s as u32), r(v as u32)),
                    expect,
                    "mismatch s={s} v={v}"
                );
            }
        }
    }
}
