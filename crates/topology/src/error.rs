//! Topology validation errors.

use ibgp_types::{BgpId, ClusterId, RouterId};
use std::fmt;

/// Violations of the structural requirements of §4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node id referenced a router outside `0..n`.
    NodeOutOfRange {
        /// The offending id.
        node: RouterId,
        /// The number of routers.
        len: usize,
    },
    /// A physical link connected a node to itself.
    SelfLoop(RouterId),
    /// The same physical link was added twice.
    DuplicateLink(RouterId, RouterId),
    /// A physical link had cost zero (the paper requires positive integer
    /// costs).
    NonPositiveCost(RouterId, RouterId),
    /// The physical graph is not connected, so some `SP(u, v)` would not
    /// exist.
    Disconnected,
    /// A node was assigned to more than one cluster.
    NodeInMultipleClusters(RouterId),
    /// A node was not assigned to any cluster.
    NodeUnclustered(RouterId),
    /// A cluster had no reflector (clients would have no sessions).
    ClusterWithoutReflector(ClusterId),
    /// An explicit client–client session crossed cluster boundaries,
    /// violating constraint 3 of §4 ("no edges from any node in `N_i` to any
    /// node in `C_j`, `i ≠ j`").
    CrossClusterClientSession(RouterId, RouterId),
    /// An explicit extra session referenced a reflector; reflector sessions
    /// are implied by the hierarchy and cannot be declared manually.
    ExtraSessionNotBetweenClients(RouterId, RouterId),
    /// The physical and logical graphs disagree on the number of routers.
    NodeCountMismatch {
        /// Router count of the physical graph.
        physical: usize,
        /// Router count of the logical graph (or BGP-id table).
        logical: usize,
    },
    /// Two routers were given the same BGP identifier; rule 6 needs them
    /// distinct.
    DuplicateBgpId {
        /// The second router with the identifier.
        node: RouterId,
        /// The duplicated identifier.
        bgp_id: BgpId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, len } => {
                write!(f, "router {node} out of range (have {len} routers)")
            }
            TopologyError::SelfLoop(u) => write!(f, "self-loop at {u}"),
            TopologyError::DuplicateLink(u, v) => write!(f, "duplicate link {u}–{v}"),
            TopologyError::NonPositiveCost(u, v) => {
                write!(f, "link {u}–{v} must have positive cost")
            }
            TopologyError::Disconnected => write!(f, "physical graph is not connected"),
            TopologyError::NodeInMultipleClusters(u) => {
                write!(f, "router {u} assigned to multiple clusters")
            }
            TopologyError::NodeUnclustered(u) => {
                write!(f, "router {u} not assigned to any cluster")
            }
            TopologyError::ClusterWithoutReflector(c) => {
                write!(f, "cluster {c} has no route reflector")
            }
            TopologyError::CrossClusterClientSession(u, v) => {
                write!(f, "client session {u}–{v} crosses cluster boundaries")
            }
            TopologyError::ExtraSessionNotBetweenClients(u, v) => {
                write!(
                    f,
                    "extra session {u}–{v} must connect two clients (reflector sessions are implied)"
                )
            }
            TopologyError::NodeCountMismatch { physical, logical } => {
                write!(
                    f,
                    "node count mismatch: physical has {physical}, logical has {logical}"
                )
            }
            TopologyError::DuplicateBgpId { node, bgp_id } => {
                write!(f, "router {node} reuses BGP identifier {bgp_id}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(TopologyError, &str)> = vec![
            (TopologyError::Disconnected, "not connected"),
            (TopologyError::SelfLoop(RouterId::new(1)), "r1"),
            (
                TopologyError::ClusterWithoutReflector(ClusterId::new(2)),
                "C2",
            ),
            (
                TopologyError::DuplicateBgpId {
                    node: RouterId::new(4),
                    bgp_id: BgpId::new(7),
                },
                "bgp7",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
