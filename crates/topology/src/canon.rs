//! Weisfeiler–Lehman color refinement and capped automorphism
//! enumeration over labeled graphs, shared by every canonicalizer in the
//! workspace.
//!
//! Two consumers sit on top of this module:
//!
//! * `ibgp-hunt`'s structural signatures build a [`ColoredGraph`] from a
//!   scenario spec and take the lexicographically minimal certificate
//!   over [`for_each_perm`] — corpus deduplication.
//! * `ibgp-analysis`'s orbit-pruned reachability search calls
//!   [`automorphisms`] to compute, once per search, the router
//!   permutations that preserve everything the protocol dynamics can
//!   observe of a [`Topology`] — SPF distances, I-BGP sessions,
//!   reflector/client roles, cluster co-membership, and a caller-supplied
//!   per-router color (typically a digest of the exit paths injected at
//!   the router).
//!
//! The refinement is a pruner, not an oracle: candidate permutations
//! consistent with the refined color classes are *verified* against the
//! invariants they must preserve before being reported. WL-equivalence
//! without true equivalence therefore costs enumeration time, never
//! soundness. When the candidate space is larger than [`PERM_CAP`] the
//! enumeration is abandoned (callers fall back to a hash signature or to
//! the trivial group).

use crate::Topology;
use ibgp_types::RouterId;

/// Upper bound on color-consistent permutations a canonicalizer will
/// enumerate before falling back (hash signature / trivial group).
pub const PERM_CAP: u64 = 20_000;

/// FNV-1a offset basis, exposed so callers can fold extra scalars into a
/// signature built from these helpers.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold raw bytes into an FNV-1a accumulator.
pub fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Fold one `u64` (little-endian) into an FNV-1a accumulator.
pub fn fnv_u64(h: &mut u64, v: u64) {
    fnv(h, &v.to_le_bytes());
}

/// Hash a sequence of words into one 64-bit value.
pub fn hash_parts(parts: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &p in parts {
        fnv_u64(&mut h, p);
    }
    h
}

/// Hash a string label into one 64-bit value.
pub fn hash_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    fnv(&mut h, s.as_bytes());
    h
}

/// The labeled (multi)graph the refinement runs on. Consumers put their
/// primary nodes (routers) first and may append auxiliary structure nodes
/// (clusters, sub-ASes) after them.
pub struct ColoredGraph {
    /// Per node: `(edge_label, neighbor)` pairs.
    pub adj: Vec<Vec<(u64, usize)>>,
    /// Current color per node.
    pub colors: Vec<u64>,
}

impl ColoredGraph {
    /// A graph with `n` nodes of the given initial colors and no edges.
    pub fn new(colors: Vec<u64>) -> Self {
        Self {
            adj: vec![Vec::new(); colors.len()],
            colors,
        }
    }

    /// Append a fresh node with the given color, returning its index.
    pub fn add_node(&mut self, color: u64) -> usize {
        self.adj.push(Vec::new());
        self.colors.push(color);
        self.adj.len() - 1
    }

    /// Add an undirected labeled edge.
    pub fn add_edge(&mut self, u: usize, v: usize, label: u64) {
        self.adj[u].push((label, v));
        self.adj[v].push((label, u));
    }

    /// Refine until the partition induced by the colors stops splitting.
    pub fn refine(&mut self) {
        let n = self.adj.len();
        let mut classes = partition(&self.colors);
        loop {
            let mut next = vec![0u64; n];
            for (v, slot) in next.iter_mut().enumerate() {
                let mut sig: Vec<u64> = self.adj[v]
                    .iter()
                    .map(|&(label, u)| hash_parts(&[label, self.colors[u]]))
                    .collect();
                sig.sort_unstable();
                sig.insert(0, self.colors[v]);
                *slot = hash_parts(&sig);
            }
            self.colors = next;
            let refined = partition(&self.colors);
            if refined == classes {
                return;
            }
            classes = refined;
        }
    }
}

/// Map each node to the index of its color class (classes numbered by
/// first appearance), giving a hash-independent view of the partition.
pub fn partition(colors: &[u64]) -> Vec<usize> {
    let mut seen: Vec<u64> = Vec::new();
    colors
        .iter()
        .map(|c| match seen.iter().position(|s| s == c) {
            Some(i) => i,
            None => {
                seen.push(*c);
                seen.len() - 1
            }
        })
        .collect()
}

/// Enumerate every permutation consistent with the color classes, calling
/// `visit` with each complete old→new mapping. Class `ci`'s members are
/// assigned (in every order) to the canonical position block
/// `starts[ci] ..`.
pub fn for_each_perm(classes: &[Vec<usize>], starts: &[u32], visit: &mut impl FnMut(&[u32])) {
    fn assign(
        classes: &[Vec<usize>],
        starts: &[u32],
        ci: usize,
        mi: usize,
        slots: &mut Vec<bool>,
        perm: &mut Vec<u32>,
        visit: &mut impl FnMut(&[u32]),
    ) {
        if ci == classes.len() {
            visit(perm);
            return;
        }
        let class = &classes[ci];
        if mi == class.len() {
            let mut next_slots = vec![false; classes.get(ci + 1).map_or(0, |c| c.len())];
            assign(classes, starts, ci + 1, 0, &mut next_slots, perm, visit);
            return;
        }
        for slot in 0..class.len() {
            if !slots[slot] {
                slots[slot] = true;
                perm[class[mi]] = starts[ci] + slot as u32;
                assign(classes, starts, ci, mi + 1, slots, perm, visit);
                slots[slot] = false;
            }
        }
    }
    let n: usize = classes.iter().map(|c| c.len()).sum();
    let mut perm = vec![u32::MAX; n];
    let mut slots = vec![false; classes.first().map_or(0, |c| c.len())];
    assign(classes, starts, 0, 0, &mut slots, &mut perm, visit);
}

/// Number of permutations the class partition admits, saturating.
pub fn class_symmetry(classes: &[Vec<usize>]) -> u64 {
    let mut symmetry: u64 = 1;
    for c in classes {
        for k in 1..=(c.len() as u64) {
            symmetry = symmetry.saturating_mul(k);
        }
    }
    symmetry
}

/// Compute the router permutations that preserve the routing-relevant
/// structure of `topo`: the full SPF distance matrix, the I-BGP session
/// relation, reflector/client roles, cluster co-membership, and the
/// caller-supplied `router_colors` (one per router — anything else the
/// caller's dynamics can observe, e.g. a digest of the exit-path
/// attributes injected at the router).
///
/// The result always contains the identity and is closed under
/// composition and inverse (every preserved predicate is an equality, so
/// the verified permutations form a subgroup of `S_n`; and because each
/// invariant is WL-expressible, every true automorphism survives
/// refinement and is enumerated). When the refined color classes admit
/// more than [`PERM_CAP`] candidate permutations, the enumeration is
/// skipped and only the identity is returned — a sound (if useless)
/// group.
///
/// Deliberately *not* checked: BGP identifiers and any identifier-order
/// relation. Callers whose dynamics can observe identifier order (e.g.
/// tie-breaking on lowest BGP id) must layer their own guard on top.
pub fn automorphisms(topo: &Topology, router_colors: &[u64]) -> Vec<Vec<u32>> {
    let n = topo.len();
    assert_eq!(router_colors.len(), n, "one color per router");
    let identity: Vec<u32> = (0..n as u32).collect();
    if n <= 1 {
        return vec![identity];
    }

    let r = |i: usize| RouterId::new(i as u32);
    let ibgp = topo.ibgp();

    // Initial colors: caller color + role bits; pairwise structure
    // arrives via labeled edges on the complete graph (SPF distance,
    // session flag, cluster co-membership), which subsumes the physical
    // link structure for everything the protocol observes.
    let mut g = ColoredGraph::new(
        (0..n)
            .map(|u| {
                hash_parts(&[
                    hash_str("router"),
                    router_colors[u],
                    ibgp.is_reflector(r(u)) as u64,
                    ibgp.is_client(r(u)) as u64,
                ])
            })
            .collect(),
    );
    for u in 0..n {
        for v in (u + 1)..n {
            let label = hash_parts(&[
                topo.igp_cost(r(u), r(v)).raw(),
                ibgp.is_session(r(u), r(v)) as u64,
                ibgp.same_cluster(r(u), r(v)) as u64,
            ]);
            g.add_edge(u, v, label);
        }
    }
    g.refine();

    // Group routers into color classes ordered by color value, so the
    // candidate space is label-invariant.
    let mut by_color: std::collections::BTreeMap<u64, Vec<usize>> =
        std::collections::BTreeMap::new();
    for u in 0..n {
        by_color.entry(g.colors[u]).or_default().push(u);
    }
    let classes: Vec<Vec<usize>> = by_color.into_values().collect();
    if class_symmetry(&classes) > PERM_CAP {
        return vec![identity];
    }

    // `for_each_perm` assigns classes to canonical position blocks; remap
    // those blocks back onto router indices so a candidate is a
    // permutation of 0..n in the router numbering.
    let mut starts = Vec::with_capacity(classes.len());
    let mut next = 0u32;
    let mut block_to_router = vec![0u32; n];
    for c in &classes {
        starts.push(next);
        for (k, &member) in c.iter().enumerate() {
            block_to_router[(next as usize) + k] = member as u32;
        }
        next += c.len() as u32;
    }

    let mut found: Vec<Vec<u32>> = Vec::new();
    for_each_perm(&classes, &starts, &mut |blocks| {
        let perm: Vec<u32> = blocks
            .iter()
            .map(|&b| block_to_router[b as usize])
            .collect();
        if verifies(topo, router_colors, &perm) {
            found.push(perm);
        }
    });
    debug_assert!(found.contains(&identity), "identity must verify");
    found
}

/// Verify a candidate automorphism against every preserved invariant.
fn verifies(topo: &Topology, router_colors: &[u64], perm: &[u32]) -> bool {
    let n = topo.len();
    let r = |i: usize| RouterId::new(i as u32);
    let p = |i: usize| RouterId::new(perm[i]);
    let ibgp = topo.ibgp();
    for u in 0..n {
        if router_colors[perm[u] as usize] != router_colors[u]
            || ibgp.is_reflector(p(u)) != ibgp.is_reflector(r(u))
            || ibgp.is_client(p(u)) != ibgp.is_client(r(u))
        {
            return false;
        }
        for v in (u + 1)..n {
            if topo.igp_cost(p(u), p(v)) != topo.igp_cost(r(u), r(v))
                || ibgp.is_session(p(u), p(v)) != ibgp.is_session(r(u), r(v))
                || ibgp.same_cluster(p(u), p(v)) != ibgp.same_cluster(r(u), r(v))
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn refinement_partitions_are_hash_stable() {
        assert_eq!(partition(&[7, 7, 3, 7, 3]), vec![0, 0, 1, 0, 1]);
    }

    #[test]
    fn asymmetric_chain_has_only_the_identity() {
        // Distinct costs everywhere: no non-trivial automorphism.
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 2)
            .full_mesh()
            .build()
            .unwrap();
        let auts = automorphisms(&topo, &[0, 0, 0]);
        assert_eq!(auts, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn uniform_triangle_mesh_has_full_symmetry() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(0, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let auts = automorphisms(&topo, &[0, 0, 0]);
        assert_eq!(auts.len(), 6, "all of S_3: {auts:?}");
        // Caller colors can break the symmetry down to a swap.
        let auts = automorphisms(&topo, &[9, 0, 0]);
        assert_eq!(auts.len(), 2, "{auts:?}");
        assert!(auts.contains(&vec![0, 2, 1]));
    }

    #[test]
    fn clusters_and_roles_are_preserved() {
        // Two identical reflector/client clusters; the only non-trivial
        // automorphism swaps them wholesale.
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 1)
            .link(1, 3, 1)
            .link(0, 1, 5)
            .link(2, 3, 5)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let auts = automorphisms(&topo, &[0, 0, 0, 0]);
        assert_eq!(auts.len(), 2, "{auts:?}");
        assert!(auts.contains(&vec![1, 0, 3, 2]));
        // Reflectors never map onto clients.
        for perm in &auts {
            assert!(perm[0] == 0 || perm[0] == 1);
            assert!(perm[2] == 2 || perm[2] == 3);
        }
    }

    #[test]
    fn oversymmetric_graphs_fall_back_to_identity_only() {
        // 9 indistinguishable routers: 9! > PERM_CAP.
        let mut b = TopologyBuilder::new(9);
        for i in 0..9 {
            for j in (i + 1)..9 {
                b = b.link(i, j, 1);
            }
        }
        let topo = b.full_mesh().build().unwrap();
        let auts = automorphisms(&topo, &[0; 9]);
        assert_eq!(auts, vec![(0..9).collect::<Vec<u32>>()]);
    }
}
