//! Property tests of the deterministic SPF substrate: optimality against
//! a Bellman–Ford oracle, symmetry, triangle inequality, path
//! well-formedness, and next-hop consistency on arbitrary random graphs.

use ibgp_topology::{PhysicalGraph, SpfTable};
use ibgp_types::{IgpCost, RouterId};
use proptest::prelude::*;

/// A connected random graph: ring backbone + random chords.
fn arb_graph() -> impl Strategy<Value = PhysicalGraph> {
    (
        2usize..=12,
        prop::collection::vec((any::<u32>(), any::<u32>(), 1u64..=10), 0..20),
        prop::collection::vec(1u64..=10, 12),
    )
        .prop_map(|(n, chords, ring_costs)| {
            let mut g = PhysicalGraph::new(n);
            for u in 0..n {
                let v = (u + 1) % n;
                if u != v {
                    let _ = g.add_link(
                        RouterId::new(u as u32),
                        RouterId::new(v as u32),
                        IgpCost::new(ring_costs[u % ring_costs.len()]),
                    );
                }
            }
            for (a, b, w) in chords {
                let u = a % n as u32;
                let v = b % n as u32;
                if u != v {
                    let _ = g.add_link(RouterId::new(u), RouterId::new(v), IgpCost::new(w));
                }
            }
            g
        })
}

fn bellman_ford(g: &PhysicalGraph, s: usize) -> Vec<IgpCost> {
    let n = g.len();
    let mut dist = vec![IgpCost::INFINITY; n];
    dist[s] = IgpCost::ZERO;
    for _ in 0..n {
        for (u, v, w) in g.links().collect::<Vec<_>>() {
            let du = dist[u.index()];
            let dv = dist[v.index()];
            if du.saturating_add(w) < dv {
                dist[v.index()] = du.saturating_add(w);
            }
            if dv.saturating_add(w) < du {
                dist[u.index()] = dv.saturating_add(w);
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn distances_match_bellman_ford(g in arb_graph()) {
        let spf = SpfTable::compute(&g);
        for s in 0..g.len() {
            let oracle = bellman_ford(&g, s);
            for (v, &expect) in oracle.iter().enumerate() {
                prop_assert_eq!(
                    spf.cost(RouterId::new(s as u32), RouterId::new(v as u32)),
                    expect,
                    "s={} v={}", s, v
                );
            }
        }
    }

    #[test]
    fn distances_are_symmetric_and_triangle(g in arb_graph()) {
        let spf = SpfTable::compute(&g);
        let n = g.len() as u32;
        for u in 0..n {
            for v in 0..n {
                let duv = spf.cost(RouterId::new(u), RouterId::new(v));
                let dvu = spf.cost(RouterId::new(v), RouterId::new(u));
                prop_assert_eq!(duv, dvu);
                for w in 0..n {
                    let duw = spf.cost(RouterId::new(u), RouterId::new(w));
                    let dwv = spf.cost(RouterId::new(w), RouterId::new(v));
                    prop_assert!(duv <= duw.saturating_add(dwv));
                }
            }
        }
    }

    #[test]
    fn paths_are_wellformed_and_cost_consistent(g in arb_graph()) {
        let spf = SpfTable::compute(&g);
        let n = g.len() as u32;
        for u in 0..n {
            for v in 0..n {
                let (u, v) = (RouterId::new(u), RouterId::new(v));
                let path = spf.path(u, v).expect("connected graph");
                prop_assert_eq!(path[0], u);
                prop_assert_eq!(*path.last().unwrap(), v);
                // Edge-by-edge cost telescopes to the distance.
                let mut acc = IgpCost::ZERO;
                for pair in path.windows(2) {
                    let w = g.cost(pair[0], pair[1]).expect("consecutive = adjacent");
                    acc = acc + w;
                }
                prop_assert_eq!(acc, spf.cost(u, v));
                // No repeated nodes (simple path).
                let mut sorted: Vec<_> = path.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), path.len());
            }
        }
    }

    #[test]
    fn next_hop_is_the_second_node_of_the_path(g in arb_graph()) {
        let spf = SpfTable::compute(&g);
        let n = g.len() as u32;
        for u in 0..n {
            for v in 0..n {
                let (u, v) = (RouterId::new(u), RouterId::new(v));
                let hop = spf.next_hop(u, v);
                if u == v {
                    prop_assert_eq!(hop, None);
                } else {
                    let path = spf.path(u, v).unwrap();
                    prop_assert_eq!(hop, Some(path[1]));
                }
            }
        }
    }
}
