//! Measured effect of the flat fixed-width state encoding on the
//! reachability search: states/sec, wall time, and engine-counter
//! identity, legacy vs flat, at one and several workers. Instances:
//! every paper figure plus the five hunt families at a fixed seed. The
//! committed numbers live in EXPERIMENTS.md; rerun with
//! `cargo run --release -p ibgp-bench --bin encoding` to regenerate.
//! An optional argument filters instances by substring
//! (`... --bin encoding fig13` runs only fig 13 — the CI perf-smoke
//! job's configuration).
//!
//! The bin doubles as a cross-encoding correctness check: every
//! instance's class, state count, completeness, and stable vectors must
//! be identical under both encodings, at every measured worker count,
//! or it aborts.

use ibgp::hunt::Verdict;
use ibgp::hunt::{classify_spec, generate_spec, HuntOptions, ScenarioSpec, ALL_FAMILIES};
use ibgp::scenarios::random::{random_scenario, RandomConfig};
use ibgp::ProtocolVariant;

/// Instances per hunt family.
const PER_FAMILY: u64 = 4;
/// Campaign seed for the family rows.
const SEED: u64 = 5;
/// Worker counts measured for the flat path (legacy is measured at 1).
const JOBS: [usize; 2] = [1, 8];

fn opts(flat: bool, jobs: usize) -> HuntOptions {
    HuntOptions {
        flat,
        jobs,
        ..HuntOptions::default()
    }
}

struct Row {
    name: String,
    class: String,
    states: u64,
    legacy_ms: f64,
    flat_ms: [f64; JOBS.len()],
    /// Explorer throughput from `Metrics::states_per_sec()` — states
    /// over the *search's* wall clock, excluding classification
    /// overhead around it (parsing, convergence replay).
    legacy_rate: f64,
    flat_rate: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.flat_ms[0] > 0.0 {
            self.legacy_ms / self.flat_ms[0]
        } else {
            0.0
        }
    }

    fn explorer_speedup(&self) -> f64 {
        if self.legacy_rate > 0.0 {
            self.flat_rate / self.legacy_rate
        } else {
            0.0
        }
    }
}

fn assert_identical(name: &str, a: &Verdict, b: &Verdict, what: &str) {
    assert_eq!(a.class, b.class, "{name}: class drifted ({what})");
    assert_eq!(a.states, b.states, "{name}: state count drifted ({what})");
    assert_eq!(
        a.complete, b.complete,
        "{name}: completeness drifted ({what})"
    );
    assert_eq!(
        a.stable_vectors, b.stable_vectors,
        "{name}: stable vectors drifted ({what})"
    );
}

/// Classify once per configuration, timing each run. Wall clock comes
/// from one untimed warmup plus the median of three timed runs, which is
/// honest on a busy machine without pretending to criterion rigor.
fn timed_classify(spec: &ScenarioSpec, o: &HuntOptions) -> (Verdict, f64) {
    let mut verdict = classify_spec(spec, o).expect("instance must classify");
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let t = std::time::Instant::now();
        let v = classify_spec(spec, o).expect("instance must classify");
        *s = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(v.states, verdict.states, "nondeterministic search");
        verdict = v; // keep a warm run's metrics, not the cold warmup's
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (verdict, samples[1])
}

fn explorer_rate(v: &Verdict) -> f64 {
    v.metrics.as_ref().map_or(0.0, |m| m.states_per_sec())
}

fn spec_row(name: &str, spec: &ScenarioSpec) -> Row {
    let (legacy, legacy_ms) = timed_classify(spec, &opts(false, 1));
    let mut flat_ms = [0.0f64; JOBS.len()];
    let mut flat_rate = 0.0;
    for (slot, &jobs) in flat_ms.iter_mut().zip(JOBS.iter()) {
        let (flat, ms) = timed_classify(spec, &opts(true, jobs));
        assert_identical(name, &flat, &legacy, &format!("flat jobs={jobs}"));
        *slot = ms;
        if jobs == 1 {
            flat_rate = explorer_rate(&flat);
        }
    }
    Row {
        name: name.to_string(),
        class: legacy.class.to_string(),
        states: legacy.states as u64,
        legacy_ms,
        flat_ms,
        legacy_rate: explorer_rate(&legacy),
        flat_rate,
    }
}

fn main() {
    let filter = std::env::args().nth(1);
    let keep = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));

    let mut rows: Vec<Row> = Vec::new();
    for s in ibgp::scenarios::all_scenarios() {
        let spec = ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard);
        if keep(&spec.name) {
            rows.push(spec_row(&spec.name, &spec));
        }
    }
    // The 12-router random sweep instance from benches/reachability.rs,
    // the larger of the two searches the roadmap's throughput target
    // names (alongside fig 13).
    let random12 = random_scenario(
        RandomConfig {
            clusters: 4,
            clients_per_cluster: 2,
            exits: 5,
            ..RandomConfig::default()
        },
        11,
    );
    let spec = ScenarioSpec::from_scenario(&random12, ProtocolVariant::Standard);
    if keep("random12") {
        rows.push(spec_row("random12", &spec));
    }
    for family in ALL_FAMILIES {
        for index in 0..PER_FAMILY {
            let name = format!("hunt:{}[{index}]", family.keyword());
            if keep(&name) {
                let spec = generate_spec(family, SEED, index);
                rows.push(spec_row(&name, &spec));
            }
        }
    }
    assert!(!rows.is_empty(), "filter matched no instances");

    println!(
        "| instance | class | states | legacy ms | flat ms (j=1) | flat ms (j=8) | classify speedup | legacy states/s | flat states/s | explorer speedup |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.2}x | {:.0} | {:.0} | {:.2}x |",
            r.name,
            r.class,
            r.states,
            r.legacy_ms,
            r.flat_ms[0],
            r.flat_ms[1],
            r.speedup(),
            r.legacy_rate,
            r.flat_rate,
            r.explorer_speedup(),
        );
    }
}
