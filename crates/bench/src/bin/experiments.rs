//! Regenerate every table and figure claim of the paper.
//!
//! Prints a Markdown verdict table (the source of EXPERIMENTS.md) and
//! writes `experiments_output.json` next to the working directory.
//!
//! Run with `cargo run --release -p ibgp-bench --bin experiments`.

use ibgp::npc::{check_equivalence, Formula};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::{fig13, fig14, fig1a, fig1b, fig2, fig3};
use ibgp::sim::{Engine, RoundRobin, SeededJitter, SyncEngine};
use ibgp::theorems::verify_paper_theorems;
use ibgp::{
    render_table, ExperimentRow, ExploreOptions, MedMode, Network, OscillationClass,
    ProtocolVariant, RuleOrder, SelectionPolicy,
};

const MAX_STATES: usize = 500_000;
const MAX_STEPS: u64 = 100_000;

fn classify_of(net: &Network) -> OscillationClass {
    net.classify(ExploreOptions::new().max_states(MAX_STATES)).0
}

fn e1_fig1a() -> Vec<ExperimentRow> {
    let s = fig1a::scenario();
    let std = classify_of(&Network::from_scenario(&s, ProtocolVariant::Standard));
    let wal = classify_of(&Network::from_scenario(&s, ProtocolVariant::Walton));
    let modi = classify_of(&Network::from_scenario(&s, ProtocolVariant::Modified));
    let cycle = {
        let n = Network::from_scenario(&s, ProtocolVariant::Standard);
        n.converge(MAX_STEPS).outcome
    };
    vec![
        ExperimentRow::new(
            "E1",
            "Fig 1(a)",
            "standard I-BGP+RR oscillates persistently (no stable solution)",
            format!("exhaustive search: {std}; round-robin run: {cycle}"),
            std == OscillationClass::Persistent && cycle.cycled(),
        ),
        ExperimentRow::new(
            "E1",
            "Fig 1(a)",
            "Walton et al. converges on this example",
            format!("exhaustive search: {wal}"),
            wal == OscillationClass::Stable,
        ),
        ExperimentRow::new(
            "E1",
            "Fig 1(a)",
            "modified protocol converges",
            format!("exhaustive search: {modi}"),
            modi == OscillationClass::Stable,
        ),
    ]
}

fn e2_fig1b() -> Vec<ExperimentRow> {
    let s = fig1b::scenario();
    let paper_order = Network::from_scenario(&s, ProtocolVariant::Standard);
    let rfc_order = paper_order.with_config(ProtocolConfig {
        variant: ProtocolVariant::Standard,
        policy: SelectionPolicy::RFC1771,
    });
    let med_blind = paper_order.with_config(ProtocolConfig {
        variant: ProtocolVariant::Standard,
        policy: SelectionPolicy {
            med_mode: MedMode::Ignore,
            rule_order: RuleOrder::MinCostFirst,
        },
    });
    let a = classify_of(&paper_order);
    let b = classify_of(&rfc_order);
    let c = classify_of(&med_blind);
    vec![
        ExperimentRow::new(
            "E2",
            "Fig 1(b)",
            "converges under the paper's rule ordering (E-BGP preferred before IGP metric)",
            format!("{a}"),
            a == OscillationClass::Stable,
        ),
        ExperimentRow::new(
            "E2",
            "Fig 1(b)",
            "diverges under the RFC 1771/[11] ordering, even fully meshed",
            format!("{b}"),
            b == OscillationClass::Persistent,
        ),
        ExperimentRow::new(
            "E2",
            "Fig 1(b)",
            "the divergence is MED-induced (gone when MEDs are ignored)",
            format!("{c}"),
            c == OscillationClass::Stable,
        ),
    ]
}

fn e3_fig2() -> Vec<ExperimentRow> {
    let s = fig2::scenario();
    let std_net = Network::from_scenario(&s, ProtocolVariant::Standard);
    let (std_class, reach) = std_net.classify(ExploreOptions::new().max_states(MAX_STATES));
    let stable_count = reach.stable_vectors.len();
    let wal_class = classify_of(&Network::from_scenario(&s, ProtocolVariant::Walton));
    let modi = Network::from_scenario(&s, ProtocolVariant::Modified);
    let det = modi.determinism(12, MAX_STEPS);
    vec![
        ExperimentRow::new(
            "E3",
            "Fig 2",
            "two stable routing configurations exist; oscillation or either outcome, by ordering",
            format!("{stable_count} reachable stable solutions; classification: {std_class}"),
            stable_count == 2 && std_class == OscillationClass::Transient,
        ),
        ExperimentRow::new(
            "E3",
            "Fig 2",
            "Walton et al. behaves exactly like classical I-BGP here (single neighbor AS)",
            format!("{wal_class}"),
            wal_class == OscillationClass::Transient,
        ),
        ExperimentRow::new(
            "E3",
            "Fig 2",
            "modified protocol always converges to the same configuration",
            format!(
                "{} schedules, {} distinct outcomes",
                det.converged_runs + det.unconverged_runs,
                det.distinct_outcomes.len()
            ),
            det.deterministic(),
        ),
    ]
}

fn e4_fig3() -> Vec<ExperimentRow> {
    use ibgp::scenarios::fig3::{routes, run_table1, symmetric_delay};
    let (outcome_std, flips) = run_table1(ProtocolConfig::STANDARD, symmetric_delay(), 2, 5_000);
    let (outcome_mod, _) = run_table1(ProtocolConfig::MODIFIED, symmetric_delay(), 2, 50_000);
    // Outcome dependence on injection timing.
    let s = fig3::scenario();
    let all_at_once = Network::from_scenario(&s, ProtocolVariant::Standard).converge(MAX_STEPS);
    let med1 = vec![Some(routes::R1), Some(routes::R3), Some(routes::R5)];
    vec![
        ExperimentRow::new(
            "E4",
            "Fig 3 + Table 1",
            "a delayed E-BGP injection plus symmetric update timing yields sustained route oscillation",
            format!("standard: {outcome_std} ({flips} flips)"),
            !outcome_std.quiescent() && flips > 200,
        ),
        ExperimentRow::new(
            "E4",
            "Fig 3 + Table 1",
            "the oscillation is transient: it needs the timing coincidence (injection order decides the fixed point)",
            format!(
                "all-routes-at-start converges to the MED-1 solution: {}",
                all_at_once.best_exits == med1
            ),
            all_at_once.best_exits == med1,
        ),
        ExperimentRow::new(
            "E4",
            "Fig 3 + Table 1",
            "the modified protocol is immune to the Table 1 schedule",
            format!("modified: {outcome_mod}"),
            outcome_mod.quiescent(),
        ),
    ]
}

fn e5_npc() -> Vec<ExperimentRow> {
    let mut all_ok = true;
    let mut sat_count = 0;
    let mut unsat_count = 0;
    // Hand-picked + random corpus.
    let mut formulas = vec![Formula::new(
        1,
        vec![
            ibgp::npc::Clause(vec![ibgp::npc::Lit::pos(0)]),
            ibgp::npc::Clause(vec![ibgp::npc::Lit::neg(0)]),
        ],
    )
    .unwrap()];
    for seed in 0..8 {
        formulas.push(Formula::random(seed, 3, 4));
    }
    for f in &formulas {
        let report = check_equivalence(f, 200_000);
        if report.satisfiable {
            sat_count += 1;
        } else {
            unsat_count += 1;
        }
        all_ok &= report.ok();
    }
    vec![ExperimentRow::new(
        "E5",
        "§5 / Figs 7-9",
        "J satisfiable ⟺ SR_J has a stable solution (reduction from 3-SAT)",
        format!(
            "{} formulas ({sat_count} sat, {unsat_count} unsat): routing verdicts all agree with DPLL",
            formulas.len()
        ),
        all_ok,
    )]
}

fn e6_fig13() -> Vec<ExperimentRow> {
    let s = fig13::scenario();
    let wal = classify_of(&Network::from_scenario(&s, ProtocolVariant::Walton));
    let std = classify_of(&Network::from_scenario(&s, ProtocolVariant::Standard));
    let modi = classify_of(&Network::from_scenario(&s, ProtocolVariant::Modified));
    vec![
        ExperimentRow::new(
            "E6",
            "Fig 13 (reconstruction)",
            "a persistent oscillation survives the Walton et al. fix",
            format!("walton: {wal}; standard: {std}"),
            wal == OscillationClass::Persistent,
        ),
        ExperimentRow::new(
            "E6",
            "Fig 13 (reconstruction)",
            "the modified protocol eliminates it",
            format!("modified: {modi}"),
            modi == OscillationClass::Stable,
        ),
    ]
}

fn e7_fig14() -> Vec<ExperimentRow> {
    let s = fig14::scenario();
    let std_loops = Network::from_scenario(&s, ProtocolVariant::Standard)
        .forwarding_loops_after_convergence(MAX_STEPS);
    let wal_loops = Network::from_scenario(&s, ProtocolVariant::Walton)
        .forwarding_loops_after_convergence(MAX_STEPS);
    let mod_loops = Network::from_scenario(&s, ProtocolVariant::Modified)
        .forwarding_loops_after_convergence(MAX_STEPS);
    vec![
        ExperimentRow::new(
            "E7",
            "Fig 14",
            "standard I-BGP reflection creates a client-client forwarding loop",
            format!("{} looping sources", std_loops.len()),
            !std_loops.is_empty(),
        ),
        ExperimentRow::new(
            "E7",
            "Fig 14",
            "Walton et al. does not repair the loop",
            format!("{} looping sources", wal_loops.len()),
            !wal_loops.is_empty(),
        ),
        ExperimentRow::new(
            "E7",
            "Fig 14",
            "the modified protocol removes the loop",
            format!("{} looping sources", mod_loops.len()),
            mod_loops.is_empty(),
        ),
    ]
}

fn e8_e9_e12_theorems() -> Vec<ExperimentRow> {
    use ibgp::scenarios::random::{random_scenario, RandomConfig};
    let mut all = true;
    let mut tested = 0;
    for seed in 0..10 {
        let s = random_scenario(RandomConfig::default(), seed);
        let n = Network::from_scenario(&s, ProtocolVariant::Modified);
        let report = verify_paper_theorems(&n, 5, MAX_STEPS);
        all &= report.all_hold();
        tested += 1;
    }
    for s in ibgp::scenarios::all_scenarios() {
        let n = Network::from_scenario(&s, ProtocolVariant::Modified);
        let report = verify_paper_theorems(&n, 5, MAX_STEPS);
        all &= report.all_hold();
        tested += 1;
    }
    vec![ExperimentRow::new(
        "E8/E9/E12",
        "§7 theorems",
        "modified protocol: converges, unique fixed point S′ for every fair sequence, loop-free forwarding, withdrawn paths flush",
        format!("{tested} configurations (7 paper + 10 random) × 6 schedules: all four checks hold"),
        all,
    )]
}

fn e10_overhead() -> Vec<ExperimentRow> {
    use ibgp_bench::{scale_label, scaled_scenario, SCALE_POINTS, VARIANTS};
    let mut lines = Vec::new();
    let mut monotone_ok = true;
    for &point in &SCALE_POINTS {
        let s = scaled_scenario(point, 7);
        let mut per_variant = Vec::new();
        for v in VARIANTS {
            let n = Network::from_scenario(&s, v);
            let r = n.converge(MAX_STEPS);
            per_variant.push((v, r.metrics.paths_per_message()));
        }
        // standard ≤ walton ≤ modified in paths per message (the paper's
        // stated scalability cost of extra advertisement).
        let std = per_variant[0].1;
        let modi = per_variant[2].1;
        monotone_ok &= std <= modi + 1e-9;
        lines.push(format!(
            "{}: std {:.2}, walton {:.2}, modified {:.2}",
            scale_label(point),
            per_variant[0].1,
            per_variant[1].1,
            per_variant[2].1
        ));
    }
    vec![ExperimentRow::new(
        "E10",
        "§1/§10 discussion",
        "the modified protocol advertises more paths per update than standard I-BGP (its scalability cost)",
        lines.join("; "),
        monotone_ok,
    )]
}

fn e11_convergence_scale() -> Vec<ExperimentRow> {
    use ibgp_bench::{scale_label, scaled_scenario, SCALE_POINTS};
    let mut lines = Vec::new();
    let mut all_converge = true;
    for &point in &SCALE_POINTS {
        let mut steps = Vec::new();
        for seed in 0..5 {
            let s = scaled_scenario(point, seed);
            let n = Network::from_scenario(&s, ProtocolVariant::Modified);
            let mut engine = SyncEngine::new(n.topology(), n.config(), n.exits().to_vec());
            let outcome = engine.run(&mut RoundRobin::new(), MAX_STEPS);
            match outcome {
                ibgp::SyncOutcome::Converged { steps: s } => steps.push(s),
                other => {
                    all_converge = false;
                    steps.push(u64::MAX);
                    eprintln!("unexpected: {other}");
                }
            }
        }
        let avg = steps.iter().sum::<u64>() as f64 / steps.len() as f64;
        lines.push(format!("{}: avg {avg:.0} steps", scale_label(point)));
    }
    vec![ExperimentRow::new(
        "E11",
        "§7 discussion",
        "modified-protocol convergence cost grows with network size but always terminates",
        lines.join("; "),
        all_converge,
    )]
}

fn transient_async_check() -> Vec<ExperimentRow> {
    // Fig 2 under the async engine: jittered timing decides the outcome.
    let s = fig2::scenario();
    let mut outcomes = std::collections::BTreeSet::new();
    for seed in 0..10u64 {
        let n = Network::from_scenario(&s, ProtocolVariant::Standard);
        let mut sim = n.async_sim(Box::new(SeededJitter::new(seed, 1, 9)));
        sim.set_mrai(16);
        sim.set_mrai_jitter(seed);
        sim.start();
        let out = sim.run(100_000);
        if out.quiescent() {
            outcomes.insert(sim.best_vector());
        }
    }
    vec![ExperimentRow::new(
        "E3b",
        "Fig 2 (async)",
        "message timing selects among the stable solutions",
        format!(
            "{} distinct quiescent outcomes across 10 delay seeds",
            outcomes.len()
        ),
        outcomes.len() >= 2,
    )]
}

fn e13_confederations() -> Vec<ExperimentRow> {
    use ibgp::confed::scenarios::confed_fig1a;
    use ibgp::confed::{explore_confed, ConfedMode};
    let (topo, exits) = confed_fig1a();
    let single = explore_confed(&topo, ConfedMode::SingleBest, exits.clone(), 300_000);
    let set = explore_confed(&topo, ConfedMode::SetAdvertisement, exits, 300_000);
    vec![
        ExperimentRow::new(
            "E13",
            "Confederations (extension)",
            "the Fig 1(a) MED oscillation also occurs in confederation configurations (field notice / abstract)",
            format!(
                "single-best: {} states, {} stable -> persistent={}",
                single.states,
                single.stable_vectors.len(),
                single.persistent_oscillation()
            ),
            single.persistent_oscillation(),
        ),
        ExperimentRow::new(
            "E13",
            "Confederations (extension)",
            "open question settled empirically: the paper's Choose_set advertisement also stabilizes this confederation instance",
            format!(
                "set-advertisement: {} stable solution(s), complete={}",
                set.stable_vectors.len(),
                set.complete
            ),
            set.complete && set.stable_vectors.len() == 1,
        ),
    ]
}

fn e14_hierarchy() -> Vec<ExperimentRow> {
    use ibgp::hierarchy::scenarios::deep_fig1a;
    use ibgp::hierarchy::{explore_hier, HierMode};
    let (topo, exits) = deep_fig1a();
    let single = explore_hier(&topo, HierMode::SingleBest, exits.clone(), 500_000);
    let set = explore_hier(&topo, HierMode::SetAdvertisement, exits, 500_000);
    vec![
        ExperimentRow::new(
            "E14",
            "Deep hierarchy (extension)",
            "the Fig 1(a) oscillation persists when the oscillating client hangs two reflection levels down (§2's 'arbitrarily deep hierarchy')",
            format!(
                "single-best: {} states, persistent={}",
                single.states,
                single.persistent_oscillation()
            ),
            single.persistent_oscillation(),
        ),
        ExperimentRow::new(
            "E14",
            "Deep hierarchy (extension)",
            "Choose_set advertisement stabilizes it at depth three as well",
            format!(
                "set-advertisement: {} stable solution(s), complete={}",
                set.stable_vectors.len(),
                set.complete
            ),
            set.complete && set.stable_vectors.len() == 1,
        ),
    ]
}

fn e15_adaptive() -> Vec<ExperimentRow> {
    use ibgp::sim::{AdaptivePolicy, FixedDelay};
    let policy = AdaptivePolicy {
        threshold: 8,
        window: 200,
    };
    // Fig 1(a): standard flaps forever; with the trigger it self-heals.
    let s = fig1a::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    let mut plain = n.async_sim(Box::new(FixedDelay(3)));
    plain.start();
    let plain_out = plain.run(20_000);
    let mut healed = n.async_sim(Box::new(FixedDelay(3)));
    healed.set_adaptive(policy);
    healed.start();
    let healed_out = healed.run(200_000);
    let upgraded = healed.upgraded_routers().len();
    // Fig 14 is quiet: nobody may upgrade.
    let quiet = Network::from_scenario(&fig14::scenario(), ProtocolVariant::Standard);
    let mut quiet_sim = quiet.async_sim(Box::new(FixedDelay(3)));
    quiet_sim.set_adaptive(policy);
    quiet_sim.start();
    let quiet_out = quiet_sim.run(100_000);
    let quiet_upgrades = quiet_sim.upgraded_routers().len();
    vec![
        ExperimentRow::new(
            "E15",
            "§10 trigger (extension)",
            "extra-path advertisement only when oscillation is detected: flapping regions self-heal",
            format!(
                "fig1a plain: {plain_out}; with detector: {healed_out}, {upgraded} router(s) upgraded"
            ),
            !plain_out.quiescent() && healed_out.quiescent() && upgraded > 0,
        ),
        ExperimentRow::new(
            "E15",
            "§10 trigger (extension)",
            "quiet configurations never pay the extra advertisement cost",
            format!("fig14 with detector: {quiet_out}, {quiet_upgrades} upgrades"),
            quiet_out.quiescent() && quiet_upgrades == 0,
        ),
    ]
}

fn main() {
    let mut rows = Vec::new();
    eprintln!("running E1 (Fig 1a)…");
    rows.extend(e1_fig1a());
    eprintln!("running E2 (Fig 1b)…");
    rows.extend(e2_fig1b());
    eprintln!("running E3 (Fig 2)…");
    rows.extend(e3_fig2());
    rows.extend(transient_async_check());
    eprintln!("running E4 (Fig 3 / Table 1)…");
    rows.extend(e4_fig3());
    eprintln!("running E5 (NP-completeness)…");
    rows.extend(e5_npc());
    eprintln!("running E6 (Fig 13)…");
    rows.extend(e6_fig13());
    eprintln!("running E7 (Fig 14)…");
    rows.extend(e7_fig14());
    eprintln!("running E8/E9/E12 (§7 theorems)…");
    rows.extend(e8_e9_e12_theorems());
    eprintln!("running E13 (confederations)…");
    rows.extend(e13_confederations());
    eprintln!("running E14 (deep hierarchy)…");
    rows.extend(e14_hierarchy());
    eprintln!("running E15 (adaptive trigger)…");
    rows.extend(e15_adaptive());
    eprintln!("running E10 (overhead)…");
    rows.extend(e10_overhead());
    eprintln!("running E11 (convergence scale)…");
    rows.extend(e11_convergence_scale());

    println!("{}", render_table(&rows));
    let failed = rows.iter().filter(|r| !r.pass).count();
    println!(
        "\n{} claims checked, {} reproduced, {} diverged",
        rows.len(),
        rows.len() - failed,
        failed
    );
    let json = serde_json::to_string_pretty(&rows).expect("serializable");
    std::fs::write("experiments_output.json", json).expect("writable cwd");
    if failed > 0 {
        std::process::exit(1);
    }
}
