//! Measured effect of orbit pruning (`--symmetry`) on the reachability
//! search: states visited, accounted peak visited-set bytes, and wall
//! time, off vs on. Instances: every paper figure, a §5 routing gadget
//! from the 3-SAT reduction, and the five hunt families at a fixed
//! seed. The committed numbers live in EXPERIMENTS.md; rerun with
//! `cargo run --release -p ibgp-bench --bin symmetry` to regenerate.

use ibgp::analysis::classify;
use ibgp::hunt::{classify_spec, generate_spec, HuntOptions, ScenarioSpec, ALL_FAMILIES};
use ibgp::npc::{reduce, Clause, Formula, Lit};
use ibgp::{ExploreOptions, ProtocolConfig, ProtocolVariant};

/// Instances per hunt family (aggregated per row).
const PER_FAMILY: u64 = 6;
/// Campaign seed for the family rows.
const SEED: u64 = 5;

struct Row {
    name: String,
    class: String,
    group: u64,
    states_off: u64,
    states_on: u64,
    bytes_on: u64,
    ms_off: f64,
    ms_on: f64,
}

impl Row {
    fn reduction(&self) -> f64 {
        if self.states_on == 0 {
            1.0
        } else {
            self.states_off as f64 / self.states_on as f64
        }
    }
}

fn opts(symmetry: bool) -> HuntOptions {
    HuntOptions {
        symmetry,
        ..HuntOptions::default()
    }
}

fn spec_row(name: &str, spec: &ScenarioSpec) -> Row {
    let t = std::time::Instant::now();
    let off = classify_spec(spec, &opts(false)).expect("instance must classify");
    let ms_off = t.elapsed().as_secs_f64() * 1e3;
    let t = std::time::Instant::now();
    let on = classify_spec(spec, &opts(true)).expect("instance must classify");
    let ms_on = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(off.class, on.class, "{name}: class drifted under symmetry");
    assert_eq!(
        off.stable_vectors, on.stable_vectors,
        "{name}: stable vectors drifted under symmetry"
    );
    assert_eq!(off.complete, on.complete, "{name}: completeness drifted");
    Row {
        name: name.to_string(),
        class: off.class.to_string(),
        group: on.metrics.as_ref().map_or(0, |m| m.group_order),
        states_off: off.states as u64,
        states_on: on.states as u64,
        bytes_on: on.metrics.as_ref().map_or(0, |m| m.visited_bytes),
        ms_off,
        ms_on,
    }
}

/// The smallest §5 routing gadget: SR_J for the one-variable,
/// one-clause formula J = (x0). Its variable gadget names the positive
/// and negative literal routers symmetrically, so parts of the search
/// space collapse even on this satisfiable instance. Larger gadgets are
/// out of reach of *exhaustive* search with or without pruning (the
/// repo verifies them schedule-driven instead).
fn npc_row() -> Row {
    let formula = Formula::new(1, vec![Clause(vec![Lit::pos(0)])]).expect("well-formed formula");
    let sr = reduce(&formula);
    let explore_opts =
        |symmetry: bool| ExploreOptions::new().max_states(200_000).symmetry(symmetry);

    let t = std::time::Instant::now();
    let (class_off, off) = classify(
        &sr.topology,
        ProtocolConfig::STANDARD,
        &sr.exits,
        explore_opts(false),
    );
    let ms_off = t.elapsed().as_secs_f64() * 1e3;
    let t = std::time::Instant::now();
    let (class_on, on) = classify(
        &sr.topology,
        ProtocolConfig::STANDARD,
        &sr.exits,
        explore_opts(true),
    );
    let ms_on = t.elapsed().as_secs_f64() * 1e3;
    // Pruning can only complete *more* searches under the same cap, so a
    // complete plain search forces full agreement; a capped plain search
    // may legitimately be resolved by the pruned one.
    if off.complete {
        assert_eq!(
            class_off, class_on,
            "npc gadget: class drifted under symmetry"
        );
        assert_eq!(
            off.stable_vectors, on.stable_vectors,
            "npc gadget: stable vectors drifted under symmetry"
        );
    }
    Row {
        name: "npc-1var".into(),
        class: class_on.to_string(),
        group: on.metrics.group_order,
        states_off: off.states as u64,
        states_on: on.states as u64,
        bytes_on: on.metrics.visited_bytes,
        ms_off,
        ms_on,
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // Every paper figure from the catalog. fig 2 and fig 14 carry an
    // order-2 reflector swap, fig 13 the order-3 cluster rotation.
    for s in ibgp::scenarios::all_scenarios() {
        let spec = ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard);
        rows.push(spec_row(&spec.name, &spec));
    }

    rows.push(npc_row());

    // The five hunt families at a fixed seed, aggregated per family.
    for family in ALL_FAMILIES {
        let mut agg: Option<Row> = None;
        for index in 0..PER_FAMILY {
            let spec = generate_spec(family, SEED, index);
            let name = format!("{}[{index}]", family.keyword());
            let r = spec_row(&name, &spec);
            agg = Some(match agg {
                None => Row {
                    name: format!("hunt:{} (x{PER_FAMILY})", family.keyword()),
                    class: "-".into(),
                    ..r
                },
                Some(mut a) => {
                    a.group = a.group.max(r.group);
                    a.states_off += r.states_off;
                    a.states_on += r.states_on;
                    a.bytes_on = a.bytes_on.max(r.bytes_on);
                    a.ms_off += r.ms_off;
                    a.ms_on += r.ms_on;
                    a
                }
            });
        }
        rows.push(agg.expect("PER_FAMILY > 0"));
    }

    println!(
        "| instance | class | max group | states off | states on | reduction | peak bytes on | ms off | ms on |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {:.2}x | {} | {:.1} | {:.1} |",
            r.name,
            r.class,
            r.group,
            r.states_off,
            r.states_on,
            r.reduction(),
            r.bytes_on,
            r.ms_off,
            r.ms_on
        );
    }
}
