//! Loop-prevention on/off verdict sweep: every paper figure plus a
//! 1,000+-topology hunt over the three reflection families, classified
//! twice — under the paper's `Transfer` relation and under the
//! message-level reflection mechanics (`--loop-prevention`) — with every
//! verdict flip tallied and the first flipping spec printed verbatim so
//! it can be committed as a corpus specimen. The committed numbers live
//! in EXPERIMENTS.md; rerun with
//! `cargo run --release -p ibgp-bench --bin lp_sweep`.

use ibgp::analysis::{classify, ExploreOptions, OscillationClass};
use ibgp::hunt::{classify_spec, generate_spec, print, Family, HuntOptions, SpecKind};
use ibgp::ProtocolConfig;

/// Topologies per reflection family (3 families -> 1,002 total).
const PER_FAMILY: u64 = 334;
/// Campaign seed.
const SEED: u64 = 20260809;

fn short(class: OscillationClass) -> &'static str {
    match class {
        OscillationClass::Stable => "stable",
        OscillationClass::Transient => "transient",
        OscillationClass::Persistent => "persistent",
        OscillationClass::Unknown => "unknown",
    }
}

fn main() {
    // Paper figures: engine-level classification, both modes.
    println!("## Paper figures");
    println!();
    println!("| figure | class (off) | class (on) | states off | states on | flip |");
    println!("|---|---|---|---:|---:|---|");
    for s in ibgp::scenarios::all_scenarios() {
        let (off_class, off) = classify(
            &s.topology,
            ProtocolConfig::STANDARD,
            &s.exits,
            ExploreOptions::new(),
        );
        let (on_class, on) = classify(
            &s.topology,
            ProtocolConfig::STANDARD,
            &s.exits,
            ExploreOptions::new().loop_prevention(true),
        );
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            s.name,
            short(off_class),
            short(on_class),
            off.states,
            on.states,
            if off_class == on_class { "" } else { "**yes**" },
        );
    }

    // The hunt sweep: reflection-kind families only (the mechanics are a
    // reflection concept; confed/hierarchy specs have no sessions to
    // stamp).
    let families = [Family::Reflection, Family::MultiReflector, Family::FullMesh];
    let opts = HuntOptions::default();
    let mut first_flip: Option<(String, String, String)> = None;
    println!();
    println!("## Hunt sweep ({} topologies)", PER_FAMILY * families.len() as u64);
    println!();
    println!("| family | topologies | agree | flips | off->on transitions |");
    println!("|---|---:|---:|---:|---|");
    for family in families {
        let mut agree = 0u64;
        let mut transitions: Vec<(String, u64)> = Vec::new();
        for index in 0..PER_FAMILY {
            let mut spec = generate_spec(family, SEED, index);
            let off = classify_spec(&spec, &opts).expect("classifies");
            match &mut spec.kind {
                SpecKind::Reflection(r) => r.loop_prevention = true,
                _ => unreachable!("reflection families only"),
            }
            let on = classify_spec(&spec, &opts).expect("classifies");
            if off.class == on.class {
                agree += 1;
                continue;
            }
            let key = format!("{} -> {}", short(off.class), short(on.class));
            match transitions.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => transitions.push((key, 1)),
            }
            if first_flip.is_none() {
                // Print the *bare* spec (loop prevention off) so the
                // specimen classifies both ways from one file.
                let mut bare = spec.clone();
                match &mut bare.kind {
                    SpecKind::Reflection(r) => r.loop_prevention = false,
                    _ => unreachable!(),
                }
                first_flip = Some((
                    format!("{}[{index}] ({})", family.keyword(), bare.name),
                    format!("{} -> {}", short(off.class), short(on.class)),
                    print(&bare),
                ));
            }
        }
        let flips = PER_FAMILY - agree;
        let detail = transitions
            .iter()
            .map(|(k, n)| format!("{k} x{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "| {} | {} | {} | {} | {} |",
            family.keyword(),
            PER_FAMILY,
            agree,
            flips,
            detail
        );
    }
    println!();
    match first_flip {
        Some((name, flip, text)) => {
            println!("First flipping specimen: {name} ({flip})");
            println!();
            println!("```");
            print!("{text}");
            println!("```");
        }
        None => println!("No verdict flips anywhere in the sweep."),
    }
}
