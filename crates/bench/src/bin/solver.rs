//! Measured comparison of the two classification backends: exhaustive
//! BFS over reachable states vs the `ibgp-solver` constraint backend
//! (`--solver sat`), which enumerates the global fixed points of
//! `Choose_best` from a CNF encoding without visiting a single state.
//! Instances: every paper figure, the smallest §5 routing gadget
//! (`npc-1var`, the headline: BFS caps out at 200k states and direct
//! enumeration would need 6^10 ≈ 60.5M candidates, the solver counts
//! exactly in milliseconds), and the five hunt families at a fixed seed.
//! The committed numbers live in EXPERIMENTS.md; rerun with
//! `cargo run --release -p ibgp-bench --bin solver`.

use ibgp::analysis::{classify, classify_sat, ExploreOptions};
use ibgp::hunt::{classify_spec, generate_spec, HuntOptions, ScenarioSpec, ALL_FAMILIES};
use ibgp::npc::{reduce, Clause, Formula, Lit};
use ibgp::solver::enumerate_stable;
use ibgp::topology::Topology;
use ibgp::types::{ExitPathRef, SearchBudget, SolverMode, VerdictOrigin};
use ibgp::ProtocolConfig;

/// Instances per hunt family (aggregated per row).
const PER_FAMILY: u64 = 6;
/// Campaign seed for the family rows.
const SEED: u64 = 5;
/// The workspace's default search cap.
const CAP: usize = 200_000;

struct Row {
    name: String,
    class: String,
    stable: String,
    vars: u64,
    clauses: u64,
    decisions: u64,
    states_bfs: u64,
    ms_bfs: f64,
    ms_sat: f64,
}

/// One engine-level instance: BFS baseline, solver classification, and
/// encoding statistics, with the cross-backend contract asserted.
fn engine_row(name: &str, topo: &Topology, exits: &[ExitPathRef]) -> Row {
    let opts = ExploreOptions::new().max_states(CAP);

    let t = std::time::Instant::now();
    let (bfs_class, bfs) = classify(topo, ProtocolConfig::STANDARD, exits, opts.clone());
    let ms_bfs = t.elapsed().as_secs_f64() * 1e3;

    let t = std::time::Instant::now();
    let (sat_class, sat) = classify_sat(topo, ProtocolConfig::STANDARD, exits, &opts)
        .expect("standard protocol is always encodable");
    let ms_sat = t.elapsed().as_secs_f64() * 1e3;
    assert!(sat.complete, "{name}: solver failed under the default cap");

    // The cross-backend contract: reachable fixed points are a subset of
    // the global ones; zero global fixed points forces agreement on
    // persistence. (fig3 is the known place where a strictly larger
    // global set legitimately flips the class — see the golden suite.)
    if bfs.complete {
        for v in &bfs.stable_vectors {
            assert!(
                sat.stable_vectors.contains(v),
                "{name}: BFS found a stable vector the solver missed"
            );
        }
        if sat.stable_vectors.is_empty() || bfs.stable_vectors == sat.stable_vectors {
            assert_eq!(
                bfs_class, sat_class,
                "{name}: class drifted across backends"
            );
        }
    }

    let report = enumerate_stable(
        topo,
        ProtocolConfig::STANDARD.policy,
        exits,
        &SearchBudget::states(CAP),
    );
    Row {
        name: name.to_string(),
        class: sat_class.to_string(),
        stable: sat.stable_vectors.len().to_string(),
        vars: report.vars as u64,
        clauses: report.clauses as u64,
        decisions: report.decisions,
        states_bfs: bfs.states as u64,
        ms_bfs,
        ms_sat,
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    for s in ibgp::scenarios::all_scenarios() {
        rows.push(engine_row(s.name, &s.topology, &s.exits));
    }

    // The §5 gadget for J = (x0): 10 routers, 5 exit paths, 6^10 ≈ 60.5M
    // brute-force candidates — the headline row.
    let formula = Formula::new(1, vec![Clause(vec![Lit::pos(0)])]).expect("well-formed formula");
    let sr = reduce(&formula);
    rows.push(engine_row("npc-1var", &sr.topology, &sr.exits));

    // The hunt families mix kinds and variants; the solver takes the
    // reflection+standard specs and transparently falls back to search
    // elsewhere, so these rows aggregate spec-level classification and
    // report how many instances the solver actually handled.
    let hunt_opts = |solver: SolverMode| HuntOptions {
        solver,
        ..HuntOptions::default()
    };
    for family in ALL_FAMILIES {
        let (mut solved, mut states_bfs, mut ms_bfs, mut ms_sat) = (0u64, 0u64, 0.0f64, 0.0f64);
        for index in 0..PER_FAMILY {
            let spec: ScenarioSpec = generate_spec(family, SEED, index);
            let t = std::time::Instant::now();
            let bfs = classify_spec(&spec, &hunt_opts(SolverMode::Search)).expect("classifies");
            ms_bfs += t.elapsed().as_secs_f64() * 1e3;
            let t = std::time::Instant::now();
            let sat = classify_spec(&spec, &hunt_opts(SolverMode::Sat)).expect("classifies");
            ms_sat += t.elapsed().as_secs_f64() * 1e3;
            states_bfs += bfs.states as u64;
            if sat.origin == VerdictOrigin::Solver {
                solved += 1;
                if bfs.complete {
                    for v in &bfs.stable_vectors {
                        assert!(
                            sat.stable_vectors.contains(v),
                            "{}[{index}]: BFS found a stable vector the solver missed",
                            family.keyword()
                        );
                    }
                }
            } else {
                assert_eq!(
                    sat.origin,
                    VerdictOrigin::Search,
                    "{}[{index}]: fallback must be marked",
                    family.keyword()
                );
            }
        }
        rows.push(Row {
            name: format!("hunt:{} (x{PER_FAMILY})", family.keyword()),
            class: "-".into(),
            stable: format!("{solved}/{PER_FAMILY} solved"),
            vars: 0,
            clauses: 0,
            decisions: 0,
            states_bfs,
            ms_bfs,
            ms_sat,
        });
    }

    println!(
        "| instance | class (sat) | stable | vars | clauses | decisions | BFS states | ms BFS | ms sat |"
    );
    println!("|---|---|---|---:|---:|---:|---:|---:|---:|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {:.1} |",
            r.name,
            r.class,
            r.stable,
            r.vars,
            r.clauses,
            r.decisions,
            r.states_bfs,
            r.ms_bfs,
            r.ms_sat
        );
    }
}
