//! Measured effect of partial-order reduction (`--por`) on the
//! reachability search: states visited off vs on, the ample/full
//! expansion split, and wall time. Instances: every paper figure, the
//! smallest §5 routing gadget (`npc-1var`, the headline: it completes
//! under the default cap only with the reduction), and the five hunt
//! families at a fixed seed as negative controls. The committed numbers
//! live in EXPERIMENTS.md; rerun with
//! `cargo run --release -p ibgp-bench --bin por` to regenerate.

use ibgp::analysis::classify;
use ibgp::hunt::{classify_spec, generate_spec, HuntOptions, ScenarioSpec, ALL_FAMILIES};
use ibgp::npc::{reduce, Clause, Formula, Lit};
use ibgp::{ExploreOptions, ProtocolConfig, ProtocolVariant};

/// Instances per hunt family (aggregated per row).
const PER_FAMILY: u64 = 6;
/// Campaign seed for the family rows.
const SEED: u64 = 5;

struct Row {
    name: String,
    class: String,
    states_off: u64,
    states_on: u64,
    ample: u64,
    full: u64,
    ms_off: f64,
    ms_on: f64,
}

impl Row {
    fn reduction(&self) -> f64 {
        if self.states_on == 0 {
            1.0
        } else {
            self.states_off as f64 / self.states_on as f64
        }
    }
}

fn opts(por: bool) -> HuntOptions {
    HuntOptions {
        por,
        ..HuntOptions::default()
    }
}

fn spec_row(name: &str, spec: &ScenarioSpec) -> Row {
    let t = std::time::Instant::now();
    let off = classify_spec(spec, &opts(false)).expect("instance must classify");
    let ms_off = t.elapsed().as_secs_f64() * 1e3;
    let t = std::time::Instant::now();
    let on = classify_spec(spec, &opts(true)).expect("instance must classify");
    let ms_on = t.elapsed().as_secs_f64() * 1e3;
    // The reduction is exact: a complete unpruned search forces full
    // agreement, and pruning can only complete *more* searches under the
    // same cap.
    if off.complete {
        assert_eq!(off.class, on.class, "{name}: class drifted under POR");
        assert_eq!(
            off.stable_vectors, on.stable_vectors,
            "{name}: stable vectors drifted under POR"
        );
        assert!(on.complete, "{name}: POR lost completeness");
    }
    Row {
        name: name.to_string(),
        class: on.class.to_string(),
        states_off: off.states as u64,
        states_on: on.states as u64,
        ample: on.metrics.as_ref().map_or(0, |m| m.por_ample),
        full: on.metrics.as_ref().map_or(0, |m| m.por_full),
        ms_off,
        ms_on,
    }
}

/// The smallest §5 routing gadget: SR_J for the one-variable,
/// one-clause formula J = (x0). Interleaving explosion, not symmetry, is
/// what holds this instance above the default cap — the POR table's
/// headline row.
fn npc_row() -> Row {
    let formula = Formula::new(1, vec![Clause(vec![Lit::pos(0)])]).expect("well-formed formula");
    let sr = reduce(&formula);
    let explore_opts = |por: bool| ExploreOptions::new().max_states(200_000).por(por);

    let t = std::time::Instant::now();
    let (class_off, off) = classify(
        &sr.topology,
        ProtocolConfig::STANDARD,
        &sr.exits,
        explore_opts(false),
    );
    let ms_off = t.elapsed().as_secs_f64() * 1e3;
    let t = std::time::Instant::now();
    let (class_on, on) = classify(
        &sr.topology,
        ProtocolConfig::STANDARD,
        &sr.exits,
        explore_opts(true),
    );
    let ms_on = t.elapsed().as_secs_f64() * 1e3;
    if off.complete {
        assert_eq!(class_off, class_on, "npc gadget: class drifted under POR");
        assert_eq!(
            off.stable_vectors, on.stable_vectors,
            "npc gadget: stable vectors drifted under POR"
        );
    }
    Row {
        name: "npc-1var".into(),
        class: class_on.to_string(),
        states_off: off.states as u64,
        states_on: on.states as u64,
        ample: on.metrics.por_ample,
        full: on.metrics.por_full,
        ms_off,
        ms_on,
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    for s in ibgp::scenarios::all_scenarios() {
        let spec = ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard);
        rows.push(spec_row(&spec.name, &spec));
    }

    rows.push(npc_row());

    for family in ALL_FAMILIES {
        let mut agg: Option<Row> = None;
        for index in 0..PER_FAMILY {
            let spec = generate_spec(family, SEED, index);
            let name = format!("{}[{index}]", family.keyword());
            let r = spec_row(&name, &spec);
            agg = Some(match agg {
                None => Row {
                    name: format!("hunt:{} (x{PER_FAMILY})", family.keyword()),
                    class: "-".into(),
                    ..r
                },
                Some(mut a) => {
                    a.states_off += r.states_off;
                    a.states_on += r.states_on;
                    a.ample += r.ample;
                    a.full += r.full;
                    a.ms_off += r.ms_off;
                    a.ms_on += r.ms_on;
                    a
                }
            });
        }
        rows.push(agg.expect("PER_FAMILY > 0"));
    }

    println!(
        "| instance | class (por) | states off | states on | reduction | ample | full | ms off | ms on |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {:.2}x | {} | {} | {:.1} | {:.1} |",
            r.name,
            r.class,
            r.states_off,
            r.states_on,
            r.reduction(),
            r.ample,
            r.full,
            r.ms_off,
            r.ms_on
        );
    }
}
