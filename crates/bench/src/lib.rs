//! Shared helpers for the benchmark suite and the `experiments` binary.
//!
//! Each Criterion bench regenerates one paper artifact (see DESIGN.md's
//! experiment index); the helpers here build the standard workloads so
//! benches and the experiments binary agree on exactly what is measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ibgp::scenarios::random::{random_scenario, RandomConfig};
use ibgp::{Network, ProtocolVariant, Scenario};

/// Protocol variants swept by the comparison benches.
pub const VARIANTS: [ProtocolVariant; 3] = [
    ProtocolVariant::Standard,
    ProtocolVariant::Walton,
    ProtocolVariant::Modified,
];

/// Build a network from a scenario + variant (paper policy).
pub fn network_of(scenario: &Scenario, variant: ProtocolVariant) -> Network {
    Network::from_scenario(scenario, variant)
}

/// The random-configuration sizes used by the scaling benches
/// (clusters, clients-per-cluster, exits).
pub const SCALE_POINTS: [(usize, usize, usize); 4] = [(2, 1, 2), (3, 2, 4), (5, 3, 8), (8, 4, 16)];

/// A random scenario at one scale point.
pub fn scaled_scenario(point: (usize, usize, usize), seed: u64) -> Scenario {
    let (clusters, clients, exits) = point;
    random_scenario(
        RandomConfig {
            clusters,
            clients_per_cluster: clients,
            exits,
            neighbor_ases: 3,
            max_med: 10,
            max_cost: 10,
            extra_links: clusters,
        },
        seed,
    )
}

/// Human label for a scale point.
pub fn scale_label(point: (usize, usize, usize)) -> String {
    let n = point.0 * (1 + point.1);
    format!("{}r/{}x", n, point.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_points_grow() {
        let sizes: Vec<usize> = SCALE_POINTS.iter().map(|p| p.0 * (1 + p.1)).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(scale_label(SCALE_POINTS[0]), "4r/2x");
    }

    #[test]
    fn scaled_scenarios_build() {
        for (i, &p) in SCALE_POINTS.iter().enumerate() {
            let s = scaled_scenario(p, i as u64);
            assert!(s.topology.physical().is_connected());
            assert_eq!(s.exits.len(), p.2);
        }
    }
}
