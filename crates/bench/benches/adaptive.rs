//! E15 — the §10 oscillation-triggered upgrade: detection + healing cost
//! on Fig 1(a), and the zero-cost path on a quiet configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::scenarios::{fig14, fig1a};
use ibgp::sim::{AdaptivePolicy, FixedDelay};
use ibgp::{Network, ProtocolVariant};
use std::hint::black_box;

const POLICY: AdaptivePolicy = AdaptivePolicy {
    threshold: 8,
    window: 200,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive");

    group.bench_function("fig1a/detect+heal", |b| {
        let s = fig1a::scenario();
        let n = Network::from_scenario(&s, ProtocolVariant::Standard);
        b.iter(|| {
            let mut sim = black_box(&n).async_sim(Box::new(FixedDelay(3)));
            sim.set_adaptive(POLICY);
            sim.start();
            let out = sim.run(200_000);
            assert!(out.quiescent());
            sim.upgraded_routers().len()
        })
    });

    group.bench_function("fig14/quiet-no-upgrade", |b| {
        let s = fig14::scenario();
        let n = Network::from_scenario(&s, ProtocolVariant::Standard);
        b.iter(|| {
            let mut sim = black_box(&n).async_sim(Box::new(FixedDelay(3)));
            sim.set_adaptive(POLICY);
            sim.start();
            let out = sim.run(100_000);
            assert!(out.quiescent());
            assert!(sim.upgraded_routers().is_empty());
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
