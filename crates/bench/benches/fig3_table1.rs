//! E4 — Fig 3 + Table 1: delay-driven transient oscillation in the
//! message-level engine. Measures the oscillating run (fixed event
//! budget), the MRAI-jittered escape, and the modified protocol's
//! immunity.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::fig3::{self, routes, run_table1, symmetric_delay};
use ibgp::sim::SeededJitter;
use ibgp::ExitPathRef;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_table1");
    group.sample_size(20);

    group.bench_function("standard/oscillating-2000-events", |b| {
        b.iter(|| {
            let (out, flips) = run_table1(
                ProtocolConfig::STANDARD,
                symmetric_delay(),
                black_box(2),
                2_000,
            );
            assert!(!out.quiescent());
            flips
        })
    });

    group.bench_function("standard/mrai-jitter-escape", |b| {
        b.iter(|| {
            let s = fig3::scenario();
            let without_r1: Vec<ExitPathRef> = s
                .exits
                .iter()
                .filter(|p| p.id() != routes::R1)
                .cloned()
                .collect();
            let r1 = s.exits[0].clone();
            let topo = s.topology;
            let mut sim = ibgp::sim::AsyncSim::new(
                &topo,
                ProtocolConfig::STANDARD,
                without_r1,
                Box::new(SeededJitter::new(3, 1, 9)),
            );
            sim.set_mrai(16);
            sim.set_mrai_jitter(0xABCD ^ 3);
            sim.start();
            sim.schedule(2, ibgp::sim::AsyncEvent::Inject { path: r1 });
            let out = sim.run(50_000);
            assert!(out.quiescent());
            sim.metrics().best_changes
        })
    });

    group.bench_function("modified/quiescence", |b| {
        b.iter(|| {
            let (out, _) = run_table1(
                ProtocolConfig::MODIFIED,
                symmetric_delay(),
                black_box(2),
                50_000,
            );
            assert!(out.quiescent());
            out
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
