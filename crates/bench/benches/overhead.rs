//! E10 — §1/§10: advertisement-volume overhead of the three protocols.
//! The modified protocol's cost is more paths per update; this bench
//! measures convergence wall time and reports the paths/message shape
//! via the assertions in the experiments binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::Network;
use ibgp_bench::{scale_label, scaled_scenario, SCALE_POINTS, VARIANTS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");

    for &point in &SCALE_POINTS[..3] {
        let scenario = scaled_scenario(point, 7);
        for variant in VARIANTS {
            // Standard/Walton may oscillate on random scenarios; bound the
            // run instead of asserting convergence.
            let network = Network::from_scenario(&scenario, variant);
            group.bench_with_input(
                BenchmarkId::new(variant.to_string(), scale_label(point)),
                &network,
                |b, n| {
                    b.iter(|| {
                        let r = black_box(n).converge(5_000);
                        (r.metrics.messages, r.metrics.paths_advertised)
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
