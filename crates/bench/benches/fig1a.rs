//! E1 — Fig 1(a): the canonical persistent MED oscillation.
//!
//! Measures (a) how fast the engine proves the cycle on the standard
//! protocol, (b) the exhaustive persistent-oscillation proof, and (c)
//! convergence of the two fixes.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::scenarios::fig1a;
use ibgp::{ExploreOptions, Network, OscillationClass, ProtocolVariant};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = fig1a::scenario();
    let mut group = c.benchmark_group("fig1a");

    group.bench_function("standard/cycle-detection", |b| {
        b.iter(|| {
            let n = Network::from_scenario(black_box(&scenario), ProtocolVariant::Standard);
            let out = n.converge(10_000).outcome;
            assert!(out.cycled());
            out
        })
    });

    group.bench_function("standard/exhaustive-persistence-proof", |b| {
        b.iter(|| {
            let n = Network::from_scenario(black_box(&scenario), ProtocolVariant::Standard);
            let (class, _) = n.classify(ExploreOptions::new().max_states(500_000));
            assert_eq!(class, OscillationClass::Persistent);
            class
        })
    });

    group.bench_function("walton/convergence", |b| {
        b.iter(|| {
            let n = Network::from_scenario(black_box(&scenario), ProtocolVariant::Walton);
            let r = n.converge(10_000);
            assert!(r.converged());
            r.metrics
        })
    });

    group.bench_function("modified/convergence", |b| {
        b.iter(|| {
            let n = Network::from_scenario(black_box(&scenario), ProtocolVariant::Modified);
            let r = n.converge(10_000);
            assert!(r.converged());
            r.metrics
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
