//! Microbench: the IGP substrate — all-pairs deterministic Dijkstra on
//! random connected graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::topology::{PhysicalGraph, SpfTable};
use ibgp::{IgpCost, RouterId};
use std::hint::black_box;

fn random_graph(n: usize, seed: u64) -> PhysicalGraph {
    let mut g = PhysicalGraph::new(n);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Ring for connectivity.
    for u in 0..n {
        let v = (u + 1) % n;
        let _ = g.add_link(
            RouterId::new(u as u32),
            RouterId::new(v as u32),
            IgpCost::new(next() % 10 + 1),
        );
    }
    // Chords, ~3 per node.
    for _ in 0..3 * n {
        let u = (next() % n as u64) as u32;
        let v = (next() % n as u64) as u32;
        if u != v {
            let _ = g.add_link(
                RouterId::new(u),
                RouterId::new(v),
                IgpCost::new(next() % 10 + 1),
            );
        }
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("spf");

    for n in [16usize, 64, 256] {
        let g = random_graph(n, 0x5EED);
        group.bench_with_input(BenchmarkId::new("all-pairs", n), &g, |b, g| {
            b.iter(|| SpfTable::compute(black_box(g)))
        });
        let spf = SpfTable::compute(&g);
        group.bench_with_input(BenchmarkId::new("path-extraction", n), &spf, |b, spf| {
            b.iter(|| {
                let mut total = 0usize;
                for u in 0..8.min(n) {
                    for v in 0..n {
                        if let Some(p) = spf.path(RouterId::new(u as u32), RouterId::new(v as u32))
                        {
                            total += p.len();
                        }
                    }
                }
                total
            })
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
