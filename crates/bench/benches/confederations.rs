//! E13 — confederations (extension): the Fig 1(a) oscillation in sub-AS
//! form, and the Choose_set fix applied to it.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::confed::scenarios::confed_fig1a;
use ibgp::confed::{explore_confed, ConfedEngine, ConfedMode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("confederations");

    group.bench_function("single-best/cycle-detection", |b| {
        b.iter(|| {
            let (topo, exits) = confed_fig1a();
            let mut eng = ConfedEngine::new(black_box(&topo), ConfedMode::SingleBest, exits);
            let out = eng.run_round_robin(50_000);
            assert!(out.cycled());
            out
        })
    });

    group.bench_function("single-best/exhaustive-persistence-proof", |b| {
        b.iter(|| {
            let (topo, exits) = confed_fig1a();
            let reach = explore_confed(black_box(&topo), ConfedMode::SingleBest, exits, 300_000);
            assert!(reach.persistent_oscillation());
            reach.states
        })
    });

    group.bench_function("set-advertisement/convergence", |b| {
        b.iter(|| {
            let (topo, exits) = confed_fig1a();
            let mut eng = ConfedEngine::new(black_box(&topo), ConfedMode::SetAdvertisement, exits);
            let out = eng.run_round_robin(50_000);
            assert!(out.converged());
            out
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
