//! Microbench: the decision process itself — `Choose_best` and
//! `Choose_set` over candidate sets of increasing size. These sit on the
//! hot path of every simulator step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::proto::{choose_best, choose_set, MedMode, SelectionPolicy};
use ibgp::{AsId, BgpId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, Route, RouterId};
use std::hint::black_box;
use std::sync::Arc;

fn candidates(n: usize) -> (Vec<ExitPathRef>, Vec<Route>) {
    let paths: Vec<ExitPathRef> = (0..n)
        .map(|i| {
            Arc::new(
                ExitPath::builder(ExitPathId::new(i as u32 + 1))
                    .via(AsId::new(1 + (i % 3) as u32))
                    .med(Med::new((i % 5) as u32))
                    .exit_point(RouterId::new(i as u32))
                    .build_unchecked(),
            ) as ExitPathRef
        })
        .collect();
    let routes = paths
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Route::new(
                p.clone(),
                RouterId::new(999),
                IgpCost::new((i as u64 * 7) % 23 + 1),
                BgpId::new(i as u32),
            )
        })
        .collect();
    (paths, routes)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");

    for n in [2usize, 8, 32, 128] {
        let (paths, routes) = candidates(n);
        group.bench_with_input(BenchmarkId::new("choose_best", n), &routes, |b, rs| {
            b.iter(|| choose_best(SelectionPolicy::PAPER, black_box(rs)))
        });
        group.bench_with_input(BenchmarkId::new("choose_set", n), &paths, |b, ps| {
            b.iter(|| choose_set(black_box(ps), MedMode::PerNeighborAs))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
