//! E2 — Fig 1(b): the rule-ordering experiment. Convergence under the
//! paper's ordering vs. provable divergence under RFC 1771's.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::fig1b;
use ibgp::{ExploreOptions, Network, ProtocolVariant, SelectionPolicy};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = fig1b::scenario();
    let paper = Network::from_scenario(&scenario, ProtocolVariant::Standard);
    let rfc = paper.with_config(ProtocolConfig {
        variant: ProtocolVariant::Standard,
        policy: SelectionPolicy::RFC1771,
    });
    let mut group = c.benchmark_group("fig1b");

    group.bench_function("paper-order/convergence", |b| {
        b.iter(|| {
            let r = black_box(&paper).converge(10_000);
            assert!(r.converged());
            r.metrics
        })
    });

    group.bench_function("rfc1771-order/cycle-detection", |b| {
        b.iter(|| {
            let out = black_box(&rfc).converge(10_000).outcome;
            assert!(out.cycled());
            out
        })
    });

    group.bench_function("rfc1771-order/exhaustive-persistence-proof", |b| {
        b.iter(|| {
            let (class, _) = black_box(&rfc).classify(ExploreOptions::new().max_states(100_000));
            class
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
