//! E9 — Lemmas 7.6/7.7: loop-free forwarding after convergence of the
//! modified protocol, across random topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::{Network, ProtocolVariant};
use ibgp_bench::{scale_label, scaled_scenario, SCALE_POINTS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("loop_freedom");

    for &point in &SCALE_POINTS {
        let scenario = scaled_scenario(point, 23);
        let network = Network::from_scenario(&scenario, ProtocolVariant::Modified);
        group.bench_with_input(
            BenchmarkId::new("converge+full-walk", scale_label(point)),
            &network,
            |b, n| {
                b.iter(|| {
                    let loops = black_box(n).forwarding_loops_after_convergence(100_000);
                    assert!(loops.is_empty());
                    loops.len()
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
