//! E5 — §5: the 3-SAT reduction. Measures reduction construction scaling
//! (it is polynomial), DPLL, and the full sat ⟺ stable equivalence check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::npc::{check_equivalence, reduce, solve, Formula};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("npc_reduction");

    // Construction scales polynomially with formula size.
    for (vars, clauses) in [(3usize, 4usize), (6, 10), (12, 24), (24, 48)] {
        let formula = Formula::random(42, vars, clauses);
        group.bench_with_input(
            BenchmarkId::new("reduce", format!("{vars}v{clauses}c")),
            &formula,
            |b, f| {
                b.iter(|| {
                    let sr = reduce(black_box(f));
                    assert_eq!(sr.node_count(), 1 + 4 * vars + 5 * clauses);
                    sr.exits.len()
                })
            },
        );
    }

    // DPLL ground truth.
    let formula = Formula::random(7, 12, 40);
    group.bench_function("dpll/12v40c", |b| b.iter(|| solve(black_box(&formula))));

    // Full equivalence check on a small satisfiable instance.
    group.sample_size(10);
    let small = Formula::random(0, 3, 4);
    group.bench_function("equivalence-check/3v4c", |b| {
        b.iter(|| {
            let report = check_equivalence(black_box(&small), 200_000);
            assert!(report.ok());
            report.schedules_tried
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
