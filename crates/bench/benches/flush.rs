//! E12 — Lemma 7.2: flushing withdrawn exit paths. Measures
//! withdraw-to-clean time across scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::analysis::flush_report;
use ibgp::proto::variants::ProtocolConfig;
use ibgp::sim::RoundRobin;
use ibgp_bench::{scale_label, scaled_scenario, SCALE_POINTS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("flush");

    for &point in &SCALE_POINTS[..3] {
        let scenario = scaled_scenario(point, 5);
        let victim = scenario.exits[0].id();
        group.bench_with_input(
            BenchmarkId::new("withdraw+flush", scale_label(point)),
            &scenario,
            |b, s| {
                b.iter(|| {
                    let report = flush_report(
                        black_box(&s.topology),
                        ProtocolConfig::MODIFIED,
                        &s.exits,
                        victim,
                        &mut RoundRobin::new(),
                        100_000,
                    );
                    assert!(report.flushed);
                    report.steps_to_flush
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
