//! E11 — modified-protocol convergence cost vs. network size, in both
//! engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::sim::FixedDelay;
use ibgp::{Network, ProtocolVariant};
use ibgp_bench::{scale_label, scaled_scenario, SCALE_POINTS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_scale");

    for &point in &SCALE_POINTS {
        let scenario = scaled_scenario(point, 3);
        let network = Network::from_scenario(&scenario, ProtocolVariant::Modified);
        group.bench_with_input(
            BenchmarkId::new("sync-round-robin", scale_label(point)),
            &network,
            |b, n| {
                b.iter(|| {
                    let r = black_box(n).converge(100_000);
                    assert!(r.converged());
                    r.metrics.activations
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("async-fixed-delay", scale_label(point)),
            &network,
            |b, n| {
                b.iter(|| {
                    let (out, _, m) = black_box(n).quiesce(Box::new(FixedDelay(2)), 0, 1_000_000);
                    assert!(out.quiescent());
                    m.messages
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
