//! E7 — Fig 14: forwarding-loop detection on the Dube–Scudder
//! configuration, per protocol variant.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::scenarios::fig14;
use ibgp::{Network, ProtocolVariant};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = fig14::scenario();
    let mut group = c.benchmark_group("fig14_loops");

    for (variant, expect_loops) in [
        (ProtocolVariant::Standard, true),
        (ProtocolVariant::Walton, true),
        (ProtocolVariant::Modified, false),
    ] {
        group.bench_function(format!("{variant}/converge+walk"), |b| {
            b.iter(|| {
                let n = Network::from_scenario(black_box(&scenario), variant);
                let loops = n.forwarding_loops_after_convergence(10_000);
                assert_eq!(!loops.is_empty(), expect_loops);
                loops
            })
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
