//! E14 — arbitrarily deep route reflection (extension): the Fig 1(a)
//! oscillation at depth three, and the Choose_set fix.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::hierarchy::scenarios::deep_fig1a;
use ibgp::hierarchy::{explore_hier, HierEngine, HierMode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");

    group.bench_function("single-best/cycle-detection", |b| {
        b.iter(|| {
            let (topo, exits) = deep_fig1a();
            let mut eng = HierEngine::new(black_box(&topo), HierMode::SingleBest, exits);
            let out = eng.run_round_robin(100_000);
            assert!(out.cycled());
            out
        })
    });

    group.bench_function("single-best/exhaustive-persistence-proof", |b| {
        b.iter(|| {
            let (topo, exits) = deep_fig1a();
            let reach = explore_hier(black_box(&topo), HierMode::SingleBest, exits, 500_000);
            assert!(reach.persistent_oscillation());
            reach.states
        })
    });

    group.bench_function("set-advertisement/convergence", |b| {
        b.iter(|| {
            let (topo, exits) = deep_fig1a();
            let mut eng = HierEngine::new(black_box(&topo), HierMode::SetAdvertisement, exits);
            let out = eng.run_round_robin(100_000);
            assert!(out.converged());
            out
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
