//! E3 — Fig 2: transient oscillation, two stable solutions. Measures
//! stable-solution enumeration, the ordering-dependent outcomes, and the
//! modified protocol's deterministic convergence.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::scenarios::fig2;
use ibgp::sim::{AllAtOnce, Scripted};
use ibgp::{Network, ProtocolVariant};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = fig2::scenario();
    let std = Network::from_scenario(&scenario, ProtocolVariant::Standard);
    let modi = Network::from_scenario(&scenario, ProtocolVariant::Modified);
    let mut group = c.benchmark_group("fig2");

    group.bench_function("standard/stable-solution-enumeration", |b| {
        b.iter(|| {
            let fps = black_box(&std).stable_solutions(10_000_000).unwrap();
            assert_eq!(fps.len(), 2);
            fps
        })
    });

    group.bench_function("standard/simultaneous-cycle", |b| {
        b.iter(|| {
            let out = black_box(&std)
                .converge_with(&mut AllAtOnce, 10_000)
                .outcome;
            assert!(out.cycled());
            out
        })
    });

    group.bench_function("standard/lucky-ordering-convergence", |b| {
        b.iter(|| {
            let mut sched = Scripted::singletons([2, 0, 1, 3]);
            let r = black_box(&std).converge_with(&mut sched, 1_000);
            assert!(r.converged());
            r.best_exits
        })
    });

    group.bench_function("modified/determinism-sweep-12-seeds", |b| {
        b.iter(|| {
            let report = black_box(&modi).determinism(12, 10_000);
            assert!(report.deterministic());
            report
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
