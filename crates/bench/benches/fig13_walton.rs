//! E6 — Fig 13 (reconstruction): the metric preference ring where the
//! Walton et al. vector still oscillates persistently.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::scenarios::fig13;
use ibgp::{ExploreOptions, Network, OscillationClass, ProtocolVariant};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = fig13::scenario();
    let mut group = c.benchmark_group("fig13_walton");

    group.bench_function("walton/cycle-detection", |b| {
        b.iter(|| {
            let n = Network::from_scenario(black_box(&scenario), ProtocolVariant::Walton);
            let out = n.converge(100_000).outcome;
            assert!(out.cycled());
            out
        })
    });

    group.bench_function("walton/exhaustive-persistence-proof", |b| {
        b.iter(|| {
            let n = Network::from_scenario(black_box(&scenario), ProtocolVariant::Walton);
            let (class, _) = n.classify(ExploreOptions::new().max_states(500_000));
            assert_eq!(class, OscillationClass::Persistent);
            class
        })
    });

    group.bench_function("modified/convergence", |b| {
        b.iter(|| {
            let n = Network::from_scenario(black_box(&scenario), ProtocolVariant::Modified);
            let r = n.converge(10_000);
            assert!(r.converged());
            r.metrics
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
