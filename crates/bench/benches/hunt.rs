//! E15 — oscillation hunting (extension): seeded campaign throughput and
//! delta-debugging minimization of a padded Fig 1(a).

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::hunt::generate::{generate_spec, ALL_FAMILIES};
use ibgp::hunt::spec::{ScenarioSpec, SpecKind};
use ibgp::hunt::{classify_spec, minimize, parse, print, HuntOptions};
use ibgp::ProtocolVariant;
use std::hint::black_box;

fn opts() -> HuntOptions {
    HuntOptions {
        max_states: 200_000,
        jobs: 1,
        ..HuntOptions::default()
    }
}

/// Fig 1(a) with two idle padding clients, the minimizer's benchmark prey.
fn padded_fig1a() -> ScenarioSpec {
    let s = ibgp::scenarios::by_name("fig1a").unwrap();
    let mut spec = ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard);
    let first = spec.routers as u32;
    let second = first + 1;
    spec.routers += 2;
    spec.links.push((0, first, 3));
    spec.links.push((3, second, 2));
    match &mut spec.kind {
        SpecKind::Reflection(r) => {
            r.clusters[0].1.push(first);
            r.clusters[1].1.push(second);
        }
        _ => unreachable!(),
    }
    spec
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hunt");

    group.bench_function("generate+classify/one-per-family", |b| {
        b.iter(|| {
            let mut states = 0usize;
            for (i, family) in ALL_FAMILIES.into_iter().enumerate() {
                let spec = generate_spec(family, black_box(7), i as u64);
                let verdict = classify_spec(&spec, &opts()).unwrap();
                states += verdict.states;
            }
            states
        })
    });

    group.bench_function("format/print-parse-fig1a", |b| {
        let spec = padded_fig1a();
        b.iter(|| {
            let text = print(black_box(&spec));
            parse(&text).unwrap()
        })
    });

    group.bench_function("minimize/padded-fig1a", |b| {
        b.iter(|| {
            let out = minimize(black_box(&padded_fig1a()), &opts()).unwrap();
            assert_eq!(out.removed_routers, 2);
            out.reclassifications
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
