//! E8 — §7 determinism: many fair schedules, one fixed point. Measures
//! the full theorem-verification harness across scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibgp::theorems::verify_paper_theorems;
use ibgp::{Network, ProtocolVariant};
use ibgp_bench::{scale_label, scaled_scenario, SCALE_POINTS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinism");
    group.sample_size(10);

    for &point in &SCALE_POINTS[..3] {
        let scenario = scaled_scenario(point, 11);
        let network = Network::from_scenario(&scenario, ProtocolVariant::Modified);
        group.bench_with_input(
            BenchmarkId::new("verify-theorems", scale_label(point)),
            &network,
            |b, n| {
                b.iter(|| {
                    let report = verify_paper_theorems(black_box(n), 4, 100_000);
                    assert!(report.all_hold());
                    report.schedules
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("determinism-sweep", scale_label(point)),
            &network,
            |b, n| {
                b.iter(|| {
                    let report = black_box(n).determinism(6, 100_000);
                    assert!(report.deterministic());
                    report.converged_runs
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
