//! Incremental reachability engine: memoized vs naive exploration on the
//! fig2 and fig13 classification paths (the 500k-state budget the
//! persistence proofs run with). Prints the one-shot speedup together
//! with the cache hit rate and states/sec reported by `Metrics`.

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::analysis::reachability::explore_memoized;
use ibgp::scenarios::{fig13, fig2};
use ibgp::ProtocolConfig;
use std::hint::black_box;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let fig2 = fig2::scenario();
    let fig13 = fig13::scenario();
    let cases: [(&str, &ibgp::Scenario, ProtocolConfig); 2] = [
        ("fig2/standard", &fig2, ProtocolConfig::STANDARD),
        ("fig13/walton", &fig13, ProtocolConfig::WALTON),
    ];
    const MAX_STATES: usize = 500_000;

    for (label, s, config) in cases {
        // One-shot comparison against the naive reference engine; the
        // timed groups below re-measure each side in isolation.
        let t0 = Instant::now();
        let fast = explore_memoized(&s.topology, config, s.exits(), MAX_STATES, true);
        let t_fast = t0.elapsed();
        let t0 = Instant::now();
        let slow = explore_memoized(&s.topology, config, s.exits(), MAX_STATES, false);
        let t_slow = t0.elapsed();
        assert_eq!(fast.states, slow.states, "{label}: engines disagree");
        assert_eq!(fast.stable_vectors, slow.stable_vectors);
        println!(
            "{label}: {} states; memoized {:.0} states/sec vs naive {:.0} \
             ({:.2}x speedup); cache hit rate {:.1}%",
            fast.states,
            fast.metrics.states_per_sec(),
            slow.metrics.states_per_sec(),
            t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9),
            100.0 * fast.metrics.cache_hit_rate(),
        );

        let mut group = c.benchmark_group(label);
        group.bench_function("explore-memoized", |b| {
            b.iter(|| explore_memoized(black_box(&s.topology), config, s.exits(), MAX_STATES, true))
        });
        group.bench_function("explore-naive", |b| {
            b.iter(|| {
                explore_memoized(black_box(&s.topology), config, s.exits(), MAX_STATES, false)
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(3)
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
