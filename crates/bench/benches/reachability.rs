//! Reachability exploration benchmarks.
//!
//! Two axes:
//!
//! * memoized vs naive update evaluation on the fig2 and fig13
//!   classification paths (the 500k-state budget the persistence proofs
//!   run with), printed as a one-shot speedup with the cache hit rate
//!   and states/sec reported by `Metrics`;
//! * thread scaling of the batch-frontier explorer (shard-owned visited
//!   sets, flat state encoding) at `jobs` ∈ {1, 2, 4, 8} on the
//!   fig13/walton search and on a 12-router random sweep, with a
//!   determinism cross-check at every thread count.
//!
//! For the flat-vs-legacy encoding A/B comparison, see the `encoding`
//! bin (`cargo run --release -p ibgp-bench --bin encoding`).

use criterion::{criterion_group, criterion_main, Criterion};
use ibgp::analysis::reachability::{explore, ExploreOptions};
use ibgp::scenarios::random::{random_scenario, RandomConfig};
use ibgp::scenarios::{fig13, fig2};
use ibgp::ProtocolConfig;
use std::hint::black_box;
use std::time::Instant;

const MAX_STATES: usize = 500_000;
const JOBS: [usize; 4] = [1, 2, 4, 8];

fn opts(jobs: usize, memoized: bool) -> ExploreOptions {
    ExploreOptions::new()
        .max_states(MAX_STATES)
        .memoized(memoized)
        .jobs(jobs)
}

/// 12 routers (4 clusters × 2 clients), enough exits to disagree over.
fn random_sweep_scenario() -> ibgp::Scenario {
    let cfg = RandomConfig {
        clusters: 4,
        clients_per_cluster: 2,
        exits: 5,
        ..RandomConfig::default()
    };
    random_scenario(cfg, 11)
}

fn bench_memoization(c: &mut Criterion) {
    let fig2 = fig2::scenario();
    let fig13 = fig13::scenario();
    let cases: [(&str, &ibgp::Scenario, ProtocolConfig); 2] = [
        ("fig2/standard", &fig2, ProtocolConfig::STANDARD),
        ("fig13/walton", &fig13, ProtocolConfig::WALTON),
    ];

    for (label, s, config) in cases {
        // One-shot comparison against the naive reference engine; the
        // timed groups below re-measure each side in isolation.
        let t0 = Instant::now();
        let fast = explore(&s.topology, config, s.exits(), opts(1, true));
        let t_fast = t0.elapsed();
        let t0 = Instant::now();
        let slow = explore(&s.topology, config, s.exits(), opts(1, false));
        let t_slow = t0.elapsed();
        assert_eq!(fast.states, slow.states, "{label}: engines disagree");
        assert_eq!(fast.stable_vectors, slow.stable_vectors);
        println!(
            "{label}: {} states; memoized {:.0} states/sec vs naive {:.0} \
             ({:.2}x speedup); cache hit rate {:.1}%",
            fast.states,
            fast.metrics.states_per_sec(),
            slow.metrics.states_per_sec(),
            t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9),
            100.0 * fast.metrics.cache_hit_rate(),
        );

        let mut group = c.benchmark_group(label);
        group.bench_function("explore-memoized", |b| {
            b.iter(|| explore(black_box(&s.topology), config, s.exits(), opts(1, true)))
        });
        group.bench_function("explore-naive", |b| {
            b.iter(|| explore(black_box(&s.topology), config, s.exits(), opts(1, false)))
        });
        group.finish();
    }
}

fn bench_thread_scaling(c: &mut Criterion) {
    let fig13 = fig13::scenario();
    let random = random_sweep_scenario();
    let cases: [(&str, &ibgp::Scenario, ProtocolConfig); 2] = [
        ("fig13/walton/scaling", &fig13, ProtocolConfig::WALTON),
        (
            "random12/standard/scaling",
            &random,
            ProtocolConfig::STANDARD,
        ),
    ];

    for (label, s, config) in cases {
        let reference = explore(&s.topology, config, s.exits(), opts(1, true));
        let base = reference.metrics.elapsed_nanos.max(1) as f64;
        println!(
            "{label}: {} states at jobs=1 ({:.0} states/sec)",
            reference.states,
            reference.metrics.states_per_sec()
        );
        let mut group = c.benchmark_group(label);
        for jobs in JOBS {
            // Determinism cross-check: every thread count must reproduce
            // the sequential result bit for bit.
            let parallel = explore(&s.topology, config, s.exits(), opts(jobs, true));
            assert_eq!(parallel.states, reference.states, "{label} jobs={jobs}");
            assert_eq!(parallel.complete, reference.complete);
            assert_eq!(parallel.stable_vectors, reference.stable_vectors);
            println!(
                "{label}: jobs={jobs} -> {:.2}x vs jobs=1 ({} handoffs, peak shard {})",
                base / parallel.metrics.elapsed_nanos.max(1) as f64,
                parallel.metrics.handoffs,
                parallel.metrics.peak_shard,
            );
            group.bench_function(format!("jobs-{jobs}"), |b| {
                b.iter(|| explore(black_box(&s.topology), config, s.exits(), opts(jobs, true)))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(3)
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_memoization, bench_thread_scaling
}
criterion_main!(benches);
