//! Scalar route attributes: LOCAL-PREF, MED, and IGP cost.
//!
//! These are deliberately distinct newtypes. The *direction* of preference
//! (higher LOCAL-PREF wins, lower MED wins, lower cost wins) is applied by
//! the selection procedures in `ibgp-proto`; here each type simply carries a
//! totally ordered value.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// The LOCAL-PREF attribute ("degree of preference", selection rule 1).
///
/// The paper assumes LOCAL-PREF is used as the degree of preference for
/// I-BGP-learned routes (§2). Higher values are preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LocalPref(pub u32);

impl LocalPref {
    /// A conventional default preference (100, as in common router defaults).
    pub const DEFAULT: LocalPref = LocalPref(100);

    /// Construct from a raw value.
    pub const fn new(v: u32) -> Self {
        Self(v)
    }

    /// The raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl Default for LocalPref {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl fmt::Display for LocalPref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lp{}", self.0)
    }
}

/// The MULTI-EXIT-DISCRIMINATOR attribute (selection rule 3).
///
/// A non-negative integer; **lower** values are preferred, and MEDs are only
/// comparable between routes whose `nextAS` is the same neighboring AS. That
/// restriction — the source of the oscillations the paper studies — is
/// enforced in the selection procedure, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Med(pub u32);

impl Med {
    /// The conventional "missing MED" value: zero, the most preferred.
    pub const ZERO: Med = Med(0);

    /// Construct from a raw value.
    pub const fn new(v: u32) -> Self {
        Self(v)
    }

    /// The raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl Default for Med {
    fn default() -> Self {
        Self::ZERO
    }
}

impl fmt::Display for Med {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "med{}", self.0)
    }
}

/// An IGP path cost (the paper's `cost(uv)` on physical edges, `cost(p)` on
/// paths, and `exitCost(p)` on exit links). Lower is better.
///
/// Costs add when concatenating paths, so `IgpCost` implements [`Add`] and
/// [`Sum`]. The value is a `u64` so that summing many `u32`-scale edge costs
/// cannot overflow in practice.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct IgpCost(pub u64);

impl IgpCost {
    /// Zero cost (the trivial single-node path).
    pub const ZERO: IgpCost = IgpCost(0);

    /// A cost larger than any real path cost; used as "unreachable".
    pub const INFINITY: IgpCost = IgpCost(u64::MAX);

    /// Construct from a raw value.
    pub const fn new(v: u64) -> Self {
        Self(v)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating addition, so `INFINITY + x == INFINITY`.
    pub fn saturating_add(self, rhs: IgpCost) -> IgpCost {
        IgpCost(self.0.saturating_add(rhs.0))
    }

    /// True if this cost denotes an unreachable destination.
    pub fn is_infinite(self) -> bool {
        self == Self::INFINITY
    }
}

impl Add for IgpCost {
    type Output = IgpCost;

    fn add(self, rhs: IgpCost) -> IgpCost {
        self.saturating_add(rhs)
    }
}

impl Sum for IgpCost {
    fn sum<I: Iterator<Item = IgpCost>>(iter: I) -> IgpCost {
        iter.fold(IgpCost::ZERO, Add::add)
    }
}

impl fmt::Display for IgpCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_pref_orders_ascending() {
        assert!(LocalPref::new(200) > LocalPref::new(100));
        assert_eq!(LocalPref::default(), LocalPref::new(100));
    }

    #[test]
    fn med_orders_ascending() {
        assert!(Med::new(0) < Med::new(10));
        assert_eq!(Med::default(), Med::ZERO);
    }

    #[test]
    fn cost_addition_saturates() {
        assert_eq!(IgpCost::new(2) + IgpCost::new(3), IgpCost::new(5));
        assert_eq!(IgpCost::INFINITY + IgpCost::new(1), IgpCost::INFINITY);
        assert!(IgpCost::INFINITY.is_infinite());
        assert!(!IgpCost::ZERO.is_infinite());
    }

    #[test]
    fn cost_sums_over_iterators() {
        let total: IgpCost = [1u64, 2, 3].iter().map(|&c| IgpCost::new(c)).sum();
        assert_eq!(total, IgpCost::new(6));
        let empty: IgpCost = std::iter::empty::<IgpCost>().sum();
        assert_eq!(empty, IgpCost::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LocalPref::new(100).to_string(), "lp100");
        assert_eq!(Med::new(5).to_string(), "med5");
        assert_eq!(IgpCost::new(7).to_string(), "7");
        assert_eq!(IgpCost::INFINITY.to_string(), "inf");
    }
}
