//! The NEXT-HOP attribute.
//!
//! In practice the NEXT-HOP of an E-BGP route is the address of a border
//! router in the neighboring AS (footnote 5 of the paper). The paper relies
//! on a one-to-one correspondence between a route's NEXT-HOP and its exit
//! point inside `AS0` (footnote 6); we model the NEXT-HOP as a synthetic
//! address plus the BGP identifier of the external peer, which selection
//! rule 6 uses for E-BGP-learned routes.

use crate::ids::BgpId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A NEXT-HOP: the external peer a packet is handed to when it leaves `AS0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NextHop {
    /// Synthetic IPv4-style address of the remote end of the exit link.
    addr: u32,
    /// BGP identifier of the external peer (used as `learnedFrom` for
    /// E-BGP-learned routes).
    bgp_id: BgpId,
}

impl NextHop {
    /// Construct a next hop with the given synthetic address and peer id.
    pub const fn new(addr: u32, bgp_id: BgpId) -> Self {
        Self { addr, bgp_id }
    }

    /// A next hop whose address and BGP identifier share one raw value —
    /// convenient for scenarios where only distinctness matters.
    pub const fn synthetic(raw: u32) -> Self {
        Self {
            addr: raw,
            bgp_id: BgpId::new(raw),
        }
    }

    /// The synthetic address.
    pub const fn addr(self) -> u32 {
        self.addr
    }

    /// The external peer's BGP identifier.
    pub const fn bgp_id(self) -> BgpId {
        self.bgp_id
    }
}

impl fmt::Display for NextHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.addr.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_as_dotted_quad() {
        let nh = NextHop::new(0x0A00_0001, BgpId::new(1));
        assert_eq!(nh.to_string(), "10.0.0.1");
    }

    #[test]
    fn synthetic_shares_raw_value() {
        let nh = NextHop::synthetic(42);
        assert_eq!(nh.addr(), 42);
        assert_eq!(nh.bgp_id(), BgpId::new(42));
    }

    #[test]
    fn equality_covers_both_fields() {
        assert_ne!(
            NextHop::new(1, BgpId::new(1)),
            NextHop::new(1, BgpId::new(2))
        );
        assert_eq!(
            NextHop::new(1, BgpId::new(1)),
            NextHop::new(1, BgpId::new(1))
        );
    }
}
