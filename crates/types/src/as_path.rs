//! The AS-PATH attribute.
//!
//! For an exit path `p` injected into `AS0`, `AS-Path(p) = AS1, …, ASn` is
//! the sequence of autonomous systems the announcement traversed, **not**
//! including `AS0` itself. The first element is `nextAS(p)`, the neighboring
//! AS the route was learned from — the AS whose MED values are comparable.

use crate::ids::AsId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An AS-PATH: a non-empty ordered list of AS numbers, nearest first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<AsId>,
}

impl AsPath {
    /// Build an AS-PATH from the given segments (nearest AS first).
    ///
    /// Returns `None` for an empty list: an exit path always traverses at
    /// least the neighboring AS it was learned from.
    pub fn new(segments: Vec<AsId>) -> Option<Self> {
        if segments.is_empty() {
            None
        } else {
            Some(Self { segments })
        }
    }

    /// A path through a single neighboring AS followed by `len - 1` further
    /// hops with synthetic AS numbers. Convenient for scenarios where only
    /// `nextAS` and the length matter (which is all the selection procedure
    /// looks at).
    pub fn synthetic(next_as: AsId, len: usize) -> Self {
        assert!(len >= 1, "AS-PATH length must be at least 1");
        let mut segments = Vec::with_capacity(len);
        segments.push(next_as);
        // Synthetic filler ASes use the high end of the 32-bit space so they
        // cannot collide with scenario-assigned neighbor AS numbers.
        for i in 1..len {
            segments.push(AsId::new(u32::MAX - i as u32));
        }
        Self { segments }
    }

    /// `nextAS(p)`: the neighboring AS the route was learned from.
    pub fn next_as(&self) -> AsId {
        self.segments[0]
    }

    /// `AS-path-length(p)`.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// AS paths are never empty; provided for clippy-idiomatic completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The segments, nearest AS first.
    pub fn segments(&self) -> &[AsId] {
        &self.segments
    }

    /// Whether the path visits the given AS (E-BGP's loop-detection check;
    /// unused inside `AS0` but part of the vocabulary).
    pub fn contains(&self, as_id: AsId) -> bool {
        self.segments.contains(&as_id)
    }

    /// A copy of this path with `as_id` prepended, as an AS would produce
    /// when propagating the announcement onward.
    pub fn prepend(&self, as_id: AsId) -> Self {
        let mut segments = Vec::with_capacity(self.segments.len() + 1);
        segments.push(as_id);
        segments.extend_from_slice(&self.segments);
        Self { segments }
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{seg}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_paths() {
        assert!(AsPath::new(vec![]).is_none());
    }

    #[test]
    fn next_as_is_first_segment() {
        let p = AsPath::new(vec![AsId::new(1), AsId::new(2)]).unwrap();
        assert_eq!(p.next_as(), AsId::new(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn synthetic_paths_have_requested_length_and_next_as() {
        let p = AsPath::synthetic(AsId::new(7), 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.next_as(), AsId::new(7));
        // Filler segments must not collide with the real neighbor.
        assert_eq!(
            p.segments().iter().filter(|&&a| a == AsId::new(7)).count(),
            1
        );
    }

    #[test]
    fn prepend_grows_path_at_front() {
        let p = AsPath::synthetic(AsId::new(2), 1).prepend(AsId::new(1));
        assert_eq!(p.next_as(), AsId::new(1));
        assert_eq!(p.len(), 2);
        assert!(p.contains(AsId::new(2)));
    }

    #[test]
    fn display_is_space_separated() {
        let p = AsPath::new(vec![AsId::new(1), AsId::new(2)]).unwrap();
        assert_eq!(p.to_string(), "AS1 AS2");
    }

    #[test]
    #[should_panic(expected = "AS-PATH length must be at least 1")]
    fn synthetic_zero_length_panics() {
        let _ = AsPath::synthetic(AsId::new(1), 0);
    }
}
