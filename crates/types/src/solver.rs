//! Which engine a classification request should use, and which one a
//! verdict actually came from.
//!
//! The workspace has two independent classification backends: exhaustive
//! reachability **search** (BFS over activation interleavings, the
//! historical default) and the constraint **solver** (the `Choose_best`
//! fixed-point condition encoded as CNF and enumerated by DPLL, which
//! counts stable routings without visiting any reachable state).
//! [`SolverMode`] is the request-side knob (`--solver sat`);
//! [`VerdictOrigin`] is the result-side marker every verdict carries so
//! front ends and the verdict store can tell the two kinds of evidence
//! apart.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which backend a classification request asks for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverMode {
    /// Exhaustive reachability search (the default).
    #[default]
    Search,
    /// Constraint solving: enumerate the fixed points of `Choose_best`
    /// directly via CNF + DPLL. Falls back to search where the encoding
    /// does not apply (non-standard protocol variants, confederations,
    /// hierarchies).
    Sat,
}

impl SolverMode {
    /// Stable machine keyword (`search` / `sat`) used by the CLI flag and
    /// the serve wire protocol.
    pub fn token(&self) -> &'static str {
        match self {
            SolverMode::Search => "search",
            SolverMode::Sat => "sat",
        }
    }
}

impl FromStr for SolverMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "search" => Ok(SolverMode::Search),
            "sat" => Ok(SolverMode::Sat),
            other => Err(format!("unknown solver mode `{other}` (want sat|search)")),
        }
    }
}

impl fmt::Display for SolverMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Which engine produced a verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VerdictOrigin {
    /// Exhaustive reachability search: `states` counts visited
    /// configurations and stable vectors are the *reachable* fixed points.
    #[default]
    Search,
    /// The constraint solver: stable vectors are **all** fixed points of
    /// the standard protocol (reachable or not) and no configuration was
    /// ever enumerated.
    Solver,
}

impl VerdictOrigin {
    /// Stable machine keyword (`search` / `solver`) used by the verdict
    /// store log and the wire protocol.
    pub fn token(&self) -> &'static str {
        match self {
            VerdictOrigin::Search => "search",
            VerdictOrigin::Solver => "solver",
        }
    }

    /// Parse a [`Self::token`] back. `None` for unrecognized input.
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "search" => Some(VerdictOrigin::Search),
            "solver" => Some(VerdictOrigin::Solver),
            _ => None,
        }
    }
}

impl fmt::Display for VerdictOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_mode_parses_and_round_trips() {
        assert_eq!("sat".parse::<SolverMode>(), Ok(SolverMode::Sat));
        assert_eq!("search".parse::<SolverMode>(), Ok(SolverMode::Search));
        assert!("smt".parse::<SolverMode>().is_err());
        for m in [SolverMode::Search, SolverMode::Sat] {
            assert_eq!(m.token().parse::<SolverMode>(), Ok(m));
        }
        assert_eq!(SolverMode::default(), SolverMode::Search);
    }

    #[test]
    fn origin_tokens_round_trip() {
        for o in [VerdictOrigin::Search, VerdictOrigin::Solver] {
            assert_eq!(VerdictOrigin::from_token(o.token()), Some(o));
        }
        assert_eq!(VerdictOrigin::from_token("bfs"), None);
        assert_eq!(VerdictOrigin::default(), VerdictOrigin::Search);
    }
}
