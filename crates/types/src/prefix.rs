//! Destination prefixes.
//!
//! The paper analyzes routes for a single external destination prefix `d`;
//! all simulators in this workspace run one prefix at a time. The type is
//! still a real CIDR prefix so that scenario descriptions, traces, and
//! multi-prefix extensions stay well-typed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An IPv4 CIDR destination prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// The conventional destination `d` used throughout the paper's
    /// examples: a documentation prefix.
    pub const D: Prefix = Prefix {
        addr: 0xC000_0200, // 192.0.2.0
        len: 24,
    };

    /// Construct a prefix, masking the address down to `len` bits.
    ///
    /// Returns `None` if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Option<Self> {
        if len > 32 {
            return None;
        }
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Some(Self {
            addr: addr & mask,
            len,
        })
    }

    /// The (masked) network address.
    pub const fn addr(self) -> u32 {
        self.addr
    }

    /// The prefix length in bits.
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(self, addr: u32) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.len);
        (addr & mask) == self.addr
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.addr.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}/{}", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_destination_displays() {
        assert_eq!(Prefix::D.to_string(), "192.0.2.0/24");
    }

    #[test]
    fn new_masks_host_bits() {
        let p = Prefix::new(0xC000_02FF, 24).unwrap();
        assert_eq!(p, Prefix::D);
    }

    #[test]
    fn rejects_overlong_prefixes() {
        assert!(Prefix::new(0, 33).is_none());
        assert!(Prefix::new(0, 32).is_some());
    }

    #[test]
    fn containment() {
        assert!(Prefix::D.contains(0xC000_0201));
        assert!(!Prefix::D.contains(0xC000_0301));
        let default = Prefix::new(0, 0).unwrap();
        assert!(default.contains(0xFFFF_FFFF));
        assert!(default.is_empty());
    }
}
