//! # ibgp-types
//!
//! Strongly-typed vocabulary for modeling I-BGP with route reflection, as
//! formalized in *Route Oscillations in I-BGP with Route Reflection*
//! (Basu, Ong, Rasala, Shepherd, Wilfong — SIGCOMM 2002).
//!
//! The paper models an autonomous system `AS0` whose routers exchange
//! externally-learned routes for a single destination prefix `d`. The two
//! central objects are:
//!
//! * [`ExitPath`] — an E-BGP route injected into `AS0` at a particular
//!   border router (its *exit point*), carrying the BGP attributes relevant
//!   to route selection (LOCAL-PREF, AS-PATH, MED, NEXT-HOP, exit cost).
//! * [`Route`] — an exit path *as seen from* a particular router `u`: the
//!   pair `(SP(u, exitPoint(p)), p)` of §4, with its derived IGP metric and
//!   the identifier of the peer it was learned from.
//!
//! Everything is a newtype so that LOCAL-PREF values cannot be confused with
//! MED values, router ids with AS numbers, and so on. All route-selection
//! semantics ("higher LOCAL-PREF wins", "lower MED wins") live in
//! `ibgp-proto`; this crate only defines the data and total orders on the
//! raw values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as_path;
pub mod attrs;
pub mod error;
pub mod exit_path;
pub mod ids;
pub mod next_hop;
pub mod prefix;
pub mod route;
pub mod solver;
pub mod stop;

pub use as_path::AsPath;
pub use attrs::{IgpCost, LocalPref, Med};
pub use error::TypeError;
pub use exit_path::{ExitPath, ExitPathBuilder, ExitPathRef};
pub use ids::{AsId, BgpId, ClusterId, ExitPathId, RouterId};
pub use next_hop::NextHop;
pub use prefix::Prefix;
pub use route::{Route, RouteKind};
pub use solver::{SolverMode, VerdictOrigin};
pub use stop::{SearchBudget, StopReason};
