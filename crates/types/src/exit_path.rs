//! Exit paths — the paper's representation of injected E-BGP routes (§4).
//!
//! An exit path `p` stands for a BGP route `b_p` to destination `d` that
//! some border router of `AS0` (`exitPoint(p)`) learned over E-BGP. It
//! carries exactly the attributes the route selection procedure consults:
//! `localPref(p)`, `AS-Path(p)` (hence `AS-path-length(p)` and `nextAS(p)`),
//! `MED(p)`, `nextHop(p)`, and `exitCost(p)`.

use crate::as_path::AsPath;
use crate::attrs::{IgpCost, LocalPref, Med};
use crate::error::TypeError;
use crate::ids::{AsId, ExitPathId, RouterId};
use crate::next_hop::NextHop;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An E-BGP route injected into `AS0`, keyed by [`ExitPathId`].
///
/// Exit paths are compared **by identity** in the simulators (two distinct
/// announcements with identical attributes remain distinct routes); the
/// attribute accessors feed the selection procedures. Exit paths are
/// immutable once built — cheaply shareable via [`Arc`] in the engines.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExitPath {
    id: ExitPathId,
    local_pref: LocalPref,
    as_path: AsPath,
    med: Med,
    next_hop: NextHop,
    exit_point: RouterId,
    exit_cost: IgpCost,
}

impl ExitPath {
    /// Start building an exit path with the given identity.
    pub fn builder(id: ExitPathId) -> ExitPathBuilder {
        ExitPathBuilder::new(id)
    }

    /// The unique identity of this announcement.
    pub fn id(&self) -> ExitPathId {
        self.id
    }

    /// `localPref(p)` — the degree of preference assigned on injection.
    pub fn local_pref(&self) -> LocalPref {
        self.local_pref
    }

    /// `AS-Path(p)`.
    pub fn as_path(&self) -> &AsPath {
        &self.as_path
    }

    /// `AS-path-length(p)`.
    pub fn as_path_length(&self) -> usize {
        self.as_path.len()
    }

    /// `nextAS(p)` — the neighboring AS this route was learned from. MED
    /// values are only comparable between exit paths with equal `nextAS`.
    pub fn next_as(&self) -> AsId {
        self.as_path.next_as()
    }

    /// `MED(p)`.
    pub fn med(&self) -> Med {
        self.med
    }

    /// `nextHop(p)` — the external peer address.
    pub fn next_hop(&self) -> NextHop {
        self.next_hop
    }

    /// `exitPoint(p)` — the router in `AS0` that learned this route via
    /// E-BGP. Uniquely determined by the NEXT-HOP (paper footnote 6).
    pub fn exit_point(&self) -> RouterId {
        self.exit_point
    }

    /// `exitCost(p)` — cost of the link from the exit point to the next hop
    /// (usually 0 in practice).
    pub fn exit_cost(&self) -> IgpCost {
        self.exit_cost
    }
}

impl fmt::Display for ExitPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} via {} ({}, {}, len{})",
            self.id,
            self.exit_point,
            self.next_as(),
            self.local_pref,
            self.med,
            self.as_path_length()
        )
    }
}

/// Builder for [`ExitPath`]. `id`, `exit_point`, and `next_as` (via
/// [`ExitPathBuilder::as_path`] or [`ExitPathBuilder::via`]) are required;
/// everything else has the conventional default (LOCAL-PREF 100, MED 0,
/// exit cost 0, synthetic next hop derived from the id).
#[derive(Debug, Clone)]
pub struct ExitPathBuilder {
    id: ExitPathId,
    local_pref: LocalPref,
    as_path: Option<AsPath>,
    med: Med,
    next_hop: Option<NextHop>,
    exit_point: Option<RouterId>,
    exit_cost: IgpCost,
}

impl ExitPathBuilder {
    fn new(id: ExitPathId) -> Self {
        Self {
            id,
            local_pref: LocalPref::DEFAULT,
            as_path: None,
            med: Med::ZERO,
            next_hop: None,
            exit_point: None,
            exit_cost: IgpCost::ZERO,
        }
    }

    /// Set `localPref(p)`.
    pub fn local_pref(mut self, lp: LocalPref) -> Self {
        self.local_pref = lp;
        self
    }

    /// Set the full AS-PATH.
    pub fn as_path(mut self, path: AsPath) -> Self {
        self.as_path = Some(path);
        self
    }

    /// Set a synthetic AS-PATH of length 1 through the given neighboring AS.
    /// Shorthand for the common case where only `nextAS` matters.
    pub fn via(mut self, next_as: AsId) -> Self {
        self.as_path = Some(AsPath::synthetic(next_as, 1));
        self
    }

    /// Set a synthetic AS-PATH of the given length through `next_as`.
    pub fn via_with_length(mut self, next_as: AsId, len: usize) -> Self {
        self.as_path = Some(AsPath::synthetic(next_as, len));
        self
    }

    /// Set `MED(p)`.
    pub fn med(mut self, med: Med) -> Self {
        self.med = med;
        self
    }

    /// Set `nextHop(p)` explicitly. When omitted, a synthetic next hop
    /// derived from the exit-path id is used (each announcement then has a
    /// distinct external peer, matching footnote 6's NEXT-HOP/exit-point
    /// correspondence).
    pub fn next_hop(mut self, nh: NextHop) -> Self {
        self.next_hop = Some(nh);
        self
    }

    /// Set `exitPoint(p)` — required.
    pub fn exit_point(mut self, node: RouterId) -> Self {
        self.exit_point = Some(node);
        self
    }

    /// Set `exitCost(p)`.
    pub fn exit_cost(mut self, cost: IgpCost) -> Self {
        self.exit_cost = cost;
        self
    }

    /// Finish, validating required fields.
    pub fn build(self) -> Result<ExitPath, TypeError> {
        let as_path = self
            .as_path
            .ok_or(TypeError::MissingField { field: "as_path" })?;
        let exit_point = self.exit_point.ok_or(TypeError::MissingField {
            field: "exit_point",
        })?;
        let next_hop = self
            .next_hop
            .unwrap_or_else(|| NextHop::synthetic(0x0A00_0000 + self.id.raw()));
        Ok(ExitPath {
            id: self.id,
            local_pref: self.local_pref,
            as_path,
            med: self.med,
            next_hop,
            exit_point,
            exit_cost: self.exit_cost,
        })
    }

    /// Finish, panicking on missing fields. For scenario construction code
    /// where the fields are statically known to be set.
    pub fn build_unchecked(self) -> ExitPath {
        self.build().expect("exit path builder misused")
    }
}

/// Shared, immutable handle to an exit path as passed around the engines.
pub type ExitPathRef = Arc<ExitPath>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExitPath {
        ExitPath::builder(ExitPathId::new(1))
            .via(AsId::new(10))
            .med(Med::new(5))
            .local_pref(LocalPref::new(200))
            .exit_point(RouterId::new(3))
            .exit_cost(IgpCost::new(1))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_attributes() {
        let p = sample();
        assert_eq!(p.id(), ExitPathId::new(1));
        assert_eq!(p.next_as(), AsId::new(10));
        assert_eq!(p.as_path_length(), 1);
        assert_eq!(p.med(), Med::new(5));
        assert_eq!(p.local_pref(), LocalPref::new(200));
        assert_eq!(p.exit_point(), RouterId::new(3));
        assert_eq!(p.exit_cost(), IgpCost::new(1));
    }

    #[test]
    fn missing_as_path_is_an_error() {
        let err = ExitPath::builder(ExitPathId::new(1))
            .exit_point(RouterId::new(0))
            .build()
            .unwrap_err();
        assert_eq!(err, TypeError::MissingField { field: "as_path" });
    }

    #[test]
    fn missing_exit_point_is_an_error() {
        let err = ExitPath::builder(ExitPathId::new(1))
            .via(AsId::new(1))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TypeError::MissingField {
                field: "exit_point"
            }
        );
    }

    #[test]
    fn default_next_hop_is_distinct_per_id() {
        let a = ExitPath::builder(ExitPathId::new(1))
            .via(AsId::new(1))
            .exit_point(RouterId::new(0))
            .build_unchecked();
        let b = ExitPath::builder(ExitPathId::new(2))
            .via(AsId::new(1))
            .exit_point(RouterId::new(0))
            .build_unchecked();
        assert_ne!(a.next_hop(), b.next_hop());
    }

    #[test]
    fn via_with_length_sets_as_path_length() {
        let p = ExitPath::builder(ExitPathId::new(1))
            .via_with_length(AsId::new(4), 3)
            .exit_point(RouterId::new(0))
            .build_unchecked();
        assert_eq!(p.as_path_length(), 3);
        assert_eq!(p.next_as(), AsId::new(4));
    }

    #[test]
    fn display_mentions_identity_and_exit() {
        let s = sample().to_string();
        assert!(s.contains("p1"), "{s}");
        assert!(s.contains("r3"), "{s}");
        assert!(s.contains("AS10"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: ExitPath = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
