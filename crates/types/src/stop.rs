//! Why a bounded search stopped, and the budgets that bound it.
//!
//! Every exhaustive search in the workspace (flat reflection,
//! confederation, hierarchy) is resource-bounded, and callers need to
//! know *why* a search ended to report an inconclusive verdict honestly.
//! Historically each result type carried a parallel pair of
//! `cap: Option<usize>` / `memory: Option<usize>` fields; [`StopReason`]
//! collapses them into one enum so a search has exactly one stop reason
//! and new reasons (deadlines) extend every consumer at once.
//!
//! [`SearchBudget`] is the matching request-side bundle: the state cap,
//! the optional visited-set byte budget, and the optional wall-clock
//! deadline a caller grants one search.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Why a bounded exhaustive search ended.
///
/// `Complete` is the only reason that yields a conclusive verdict; every
/// other variant means the reachable space was *not* fully explored and
/// absence results prove nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopReason {
    /// The whole reachable space was explored.
    Complete,
    /// The state cap was hit; carries the cap that stopped the search.
    StateCap(usize),
    /// The visited-set byte budget was exhausted (even after digest
    /// compaction); carries the budget in bytes.
    MemoryBudget(usize),
    /// The wall-clock deadline passed before the search finished.
    Deadline,
}

impl StopReason {
    /// Whether the search explored its whole reachable space.
    pub fn is_complete(&self) -> bool {
        matches!(self, StopReason::Complete)
    }

    /// The state cap that stopped the search, when one did. The shape of
    /// the pre-`StopReason` `cap` field, for callers migrating off it.
    pub fn state_cap(&self) -> Option<usize> {
        match self {
            StopReason::StateCap(n) => Some(*n),
            _ => None,
        }
    }

    /// The byte budget that stopped the search, when one did. The shape
    /// of the pre-`StopReason` `memory` field.
    pub fn memory_budget(&self) -> Option<usize> {
        match self {
            StopReason::MemoryBudget(n) => Some(*n),
            _ => None,
        }
    }

    /// The one user-facing hint line for an inconclusive search — the
    /// wording every front end (CLI verdict block, campaign summaries,
    /// the serve protocol) must share so it cannot drift. `None` for a
    /// complete search.
    pub fn hint(&self) -> Option<String> {
        match self {
            StopReason::Complete => None,
            StopReason::StateCap(n) => Some(format!(
                "inconclusive: state cap {n} reached (raise --max-states)"
            )),
            StopReason::MemoryBudget(n) => Some(format!(
                "inconclusive: memory budget {n} bytes exhausted (raise --max-bytes)"
            )),
            StopReason::Deadline => {
                Some("inconclusive: deadline exceeded (raise the deadline)".into())
            }
        }
    }

    /// Compact machine-readable token (`complete`, `cap:N`, `mem:N`,
    /// `deadline`) used by the verdict store log and the wire protocol.
    pub fn token(&self) -> String {
        match self {
            StopReason::Complete => "complete".into(),
            StopReason::StateCap(n) => format!("cap:{n}"),
            StopReason::MemoryBudget(n) => format!("mem:{n}"),
            StopReason::Deadline => "deadline".into(),
        }
    }

    /// Parse a [`Self::token`] back. `None` for unrecognized input.
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "complete" => Some(StopReason::Complete),
            "deadline" => Some(StopReason::Deadline),
            _ => {
                let (kind, n) = s.split_once(':')?;
                let n: usize = n.parse().ok()?;
                match kind {
                    "cap" => Some(StopReason::StateCap(n)),
                    "mem" => Some(StopReason::MemoryBudget(n)),
                    _ => None,
                }
            }
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Complete => f.write_str("complete"),
            StopReason::StateCap(n) => write!(f, "state cap {n} reached"),
            StopReason::MemoryBudget(n) => write!(f, "memory budget {n} bytes exhausted"),
            StopReason::Deadline => f.write_str("deadline exceeded"),
        }
    }
}

/// The resource budget one search request is granted.
///
/// Bundles the knobs every search honors (`max_states`, `deadline`) with
/// the one only the instrumented flat-reflection search implements
/// (`max_bytes`); searches without a byte-budget mechanism ignore that
/// field, and their callers warn about the dropped flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Cap on distinct configurations visited.
    pub max_states: usize,
    /// Visited-set byte budget; `None` for unbounded.
    pub max_bytes: Option<usize>,
    /// Absolute wall-clock deadline; `None` for no deadline. Checked
    /// between expansions, so a deadline already in the past stops a
    /// search deterministically after visiting only the initial state.
    pub deadline: Option<Instant>,
}

impl SearchBudget {
    /// An unbounded-memory, no-deadline budget with the given state cap.
    pub fn states(max_states: usize) -> Self {
        Self {
            max_states,
            max_bytes: None,
            deadline: None,
        }
    }

    /// Replace the byte budget.
    pub fn max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Replace the deadline.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A bare state cap is the historical search-budget shape; lifting it
/// keeps `explore_*(…, max_states)` call sites working verbatim.
impl From<usize> for SearchBudget {
    fn from(max_states: usize) -> Self {
        SearchBudget::states(max_states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn accessors_match_variants() {
        assert!(StopReason::Complete.is_complete());
        assert_eq!(StopReason::Complete.state_cap(), None);
        assert_eq!(StopReason::StateCap(7).state_cap(), Some(7));
        assert_eq!(StopReason::StateCap(7).memory_budget(), None);
        assert_eq!(StopReason::MemoryBudget(64).memory_budget(), Some(64));
        assert!(!StopReason::Deadline.is_complete());
    }

    #[test]
    fn hints_exist_exactly_for_inconclusive_reasons() {
        assert_eq!(StopReason::Complete.hint(), None);
        assert_eq!(
            StopReason::StateCap(10).hint().unwrap(),
            "inconclusive: state cap 10 reached (raise --max-states)"
        );
        assert!(StopReason::MemoryBudget(64)
            .hint()
            .unwrap()
            .contains("64 bytes"));
        assert!(StopReason::Deadline.hint().unwrap().contains("deadline"));
    }

    #[test]
    fn tokens_round_trip() {
        for r in [
            StopReason::Complete,
            StopReason::StateCap(123),
            StopReason::MemoryBudget(1 << 20),
            StopReason::Deadline,
        ] {
            assert_eq!(StopReason::from_token(&r.token()), Some(r));
        }
        assert_eq!(StopReason::from_token("cap:x"), None);
        assert_eq!(StopReason::from_token("bogus"), None);
    }

    #[test]
    fn budget_expiry_is_about_the_deadline_only() {
        let b = SearchBudget::states(100);
        assert!(!b.expired());
        let past = Instant::now() - Duration::from_secs(1);
        assert!(b.deadline(past).expired());
        let future = Instant::now() + Duration::from_secs(3600);
        assert!(!SearchBudget::states(1).deadline(future).expired());
    }
}
