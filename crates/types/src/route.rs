//! Routes — exit paths as seen from a particular router (§4).
//!
//! A route `r` from node `u` is the pair `(q, p)` of an exit path `p` and
//! the selected shortest path `q = SP(u, exitPoint(p))` in the physical
//! graph. The route inherits all attributes of its external part, and adds:
//!
//! * `metric(r)` — `cost(q) + exitCost(p)`, the quantity compared by
//!   selection rules 4/5;
//! * `learnedFrom(r)` — the BGP identifier of the peer `u` learned the
//!   route from, the rule-6 tie-breaker.
//!
//! The internal path `q` itself is *derived* state (the topology crate owns
//! shortest paths); a `Route` stores only the values the decision process
//! needs, which keeps the simulators' configurations small and hashable.

use crate::attrs::{IgpCost, LocalPref, Med};
use crate::exit_path::{ExitPath, ExitPathRef};
use crate::ids::{AsId, BgpId, ExitPathId, RouterId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Whether a route was learned over E-BGP (its exit point *is* the holding
/// node) or over I-BGP (the exit point is elsewhere in `AS0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteKind {
    /// The holding node learned this route directly from the external peer.
    Ebgp,
    /// The route was learned from an I-BGP peer; packets must first cross
    /// `AS0` to the exit point.
    Ibgp,
}

impl fmt::Display for RouteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteKind::Ebgp => write!(f, "eBGP"),
            RouteKind::Ibgp => write!(f, "iBGP"),
        }
    }
}

/// An exit path contextualized at a node, ready for route selection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    exit: ExitPathRef,
    node: RouterId,
    metric: IgpCost,
    learned_from: BgpId,
}

impl Route {
    /// Build a route at `node` for exit path `exit`.
    ///
    /// `igp_cost` is `cost(SP(node, exitPoint(exit)))`; the route's metric
    /// is that plus the exit cost. `learned_from` identifies the announcing
    /// peer (the external peer's BGP id for E-BGP routes, the I-BGP
    /// neighbor's for reflected routes).
    pub fn new(exit: ExitPathRef, node: RouterId, igp_cost: IgpCost, learned_from: BgpId) -> Self {
        let metric = igp_cost.saturating_add(exit.exit_cost());
        Self {
            exit,
            node,
            metric,
            learned_from,
        }
    }

    /// Convenience constructor taking an owned exit path.
    pub fn from_exit(
        exit: ExitPath,
        node: RouterId,
        igp_cost: IgpCost,
        learned_from: BgpId,
    ) -> Self {
        Self::new(Arc::new(exit), node, igp_cost, learned_from)
    }

    /// `exit(r)` — the external part.
    pub fn exit(&self) -> &ExitPathRef {
        &self.exit
    }

    /// Identity of the underlying announcement.
    pub fn exit_id(&self) -> ExitPathId {
        self.exit.id()
    }

    /// The node holding this route.
    pub fn node(&self) -> RouterId {
        self.node
    }

    /// `exitPoint(r)`.
    pub fn exit_point(&self) -> RouterId {
        self.exit.exit_point()
    }

    /// `metric(r)` — IGP cost to the exit point plus `exitCost`.
    pub fn metric(&self) -> IgpCost {
        self.metric
    }

    /// `learnedFrom(r)` — rule-6 tie-breaker.
    pub fn learned_from(&self) -> BgpId {
        self.learned_from
    }

    /// `localPref(r)` (inherited).
    pub fn local_pref(&self) -> LocalPref {
        self.exit.local_pref()
    }

    /// `AS-path-length(r)` (inherited).
    pub fn as_path_length(&self) -> usize {
        self.exit.as_path_length()
    }

    /// `nextAS(r)` (inherited).
    pub fn next_as(&self) -> AsId {
        self.exit.next_as()
    }

    /// `MED(r)` (inherited).
    pub fn med(&self) -> Med {
        self.exit.med()
    }

    /// E-BGP if the exit point is the holding node itself (§4: "If `u = v`,
    /// then `r` corresponds to an E-BGP route").
    pub fn kind(&self) -> RouteKind {
        if self.node == self.exit.exit_point() {
            RouteKind::Ebgp
        } else {
            RouteKind::Ibgp
        }
    }

    /// True for E-BGP routes.
    pub fn is_ebgp(&self) -> bool {
        self.kind() == RouteKind::Ebgp
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} [{}] metric {} from {}",
            self.exit,
            self.node,
            self.kind(),
            self.metric,
            self.learned_from
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exit_path::ExitPath;

    fn exit_at(node: u32) -> ExitPath {
        ExitPath::builder(ExitPathId::new(node))
            .via(AsId::new(1))
            .exit_point(RouterId::new(node))
            .exit_cost(IgpCost::new(2))
            .build_unchecked()
    }

    #[test]
    fn metric_adds_exit_cost() {
        let r = Route::from_exit(
            exit_at(5),
            RouterId::new(0),
            IgpCost::new(10),
            BgpId::new(1),
        );
        assert_eq!(r.metric(), IgpCost::new(12));
    }

    #[test]
    fn kind_depends_on_exit_point() {
        let r = Route::from_exit(exit_at(5), RouterId::new(5), IgpCost::ZERO, BgpId::new(1));
        assert_eq!(r.kind(), RouteKind::Ebgp);
        assert!(r.is_ebgp());
        let r = Route::from_exit(exit_at(5), RouterId::new(0), IgpCost::new(1), BgpId::new(1));
        assert_eq!(r.kind(), RouteKind::Ibgp);
        assert!(!r.is_ebgp());
    }

    #[test]
    fn inherited_attributes_match_exit() {
        let r = Route::from_exit(exit_at(5), RouterId::new(0), IgpCost::new(1), BgpId::new(9));
        assert_eq!(r.next_as(), AsId::new(1));
        assert_eq!(r.local_pref(), LocalPref::DEFAULT);
        assert_eq!(r.med(), Med::ZERO);
        assert_eq!(r.as_path_length(), 1);
        assert_eq!(r.learned_from(), BgpId::new(9));
        assert_eq!(r.exit_id(), ExitPathId::new(5));
        assert_eq!(r.exit_point(), RouterId::new(5));
    }

    #[test]
    fn infinite_igp_cost_saturates_metric() {
        let r = Route::from_exit(
            exit_at(5),
            RouterId::new(0),
            IgpCost::INFINITY,
            BgpId::new(1),
        );
        assert!(r.metric().is_infinite());
    }

    #[test]
    fn display_mentions_kind_and_metric() {
        let r = Route::from_exit(exit_at(5), RouterId::new(0), IgpCost::new(1), BgpId::new(9));
        let s = r.to_string();
        assert!(s.contains("iBGP"), "{s}");
        assert!(s.contains("metric 3"), "{s}");
    }
}
