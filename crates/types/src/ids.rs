//! Identifier newtypes.
//!
//! Each identifier wraps a small integer. They intentionally do **not**
//! implement arithmetic or cross-conversions: a [`RouterId`] is a node of the
//! physical/logical graphs, an [`AsId`] names a neighboring autonomous
//! system, a [`ClusterId`] names a route-reflection cluster, a [`BgpId`] is
//! the BGP identifier used in selection rule 6 (`learnedFrom`), and an
//! [`ExitPathId`] uniquely names an injected E-BGP route.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw integer value.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw value as a `usize`, for indexing dense tables.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// A router (I-BGP speaker) in `AS0`; a node of `V` in the paper's
    /// physical graph `G_P = (V, E_P)` and logical graph `G_I = (V, E_I)`.
    RouterId,
    "r"
);

id_type!(
    /// A neighboring autonomous system (`AS1 … ASm` in §4). MED values are
    /// only comparable between routes with the same `nextAS`.
    AsId,
    "AS"
);

id_type!(
    /// A route-reflection cluster (`C_1 … C_k` in §4).
    ClusterId,
    "C"
);

id_type!(
    /// A BGP identifier, used as the final tie-breaker (selection rule 6:
    /// "the route received from the neighbor with the minimum BGP
    /// identifier is chosen").
    BgpId,
    "bgp"
);

id_type!(
    /// Unique identity of an injected exit path. Two [`crate::ExitPath`]s
    /// with the same id denote the same E-BGP announcement.
    ExitPathId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(RouterId::new(3).to_string(), "r3");
        assert_eq!(AsId::new(1).to_string(), "AS1");
        assert_eq!(ClusterId::new(2).to_string(), "C2");
        assert_eq!(BgpId::new(9).to_string(), "bgp9");
        assert_eq!(ExitPathId::new(0).to_string(), "p0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(BgpId::new(1) < BgpId::new(2));
        assert!(RouterId::new(10) > RouterId::new(9));
    }

    #[test]
    fn round_trips_through_serde() {
        let id = RouterId::new(42);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42");
        let back: RouterId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(ExitPathId::new(7).index(), 7);
        assert_eq!(ExitPathId::new(7).raw(), 7);
    }

    #[test]
    fn from_u32_constructs() {
        let id: AsId = 5u32.into();
        assert_eq!(id, AsId::new(5));
    }
}
