//! Errors for constructing paper objects.

use crate::ids::{ExitPathId, RouterId};
use std::fmt;

/// Validation failures when building typed objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An exit-path builder was finished without a required field.
    MissingField {
        /// Which builder field was absent.
        field: &'static str,
    },
    /// Two distinct exit paths were given the same identity.
    DuplicateExitPath(ExitPathId),
    /// A route was constructed for a node that cannot reach the exit point.
    UnreachableExit {
        /// The node holding the route.
        node: RouterId,
        /// The unreachable exit point.
        exit_point: RouterId,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::MissingField { field } => {
                write!(f, "exit path builder missing required field `{field}`")
            }
            TypeError::DuplicateExitPath(id) => {
                write!(f, "duplicate exit path id {id}")
            }
            TypeError::UnreachableExit { node, exit_point } => {
                write!(f, "node {node} cannot reach exit point {exit_point}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = TypeError::MissingField { field: "med" };
        assert!(e.to_string().contains("med"));
        let e = TypeError::DuplicateExitPath(ExitPathId::new(3));
        assert!(e.to_string().contains("p3"));
        let e = TypeError::UnreachableExit {
            node: RouterId::new(1),
            exit_point: RouterId::new(2),
        };
        assert!(e.to_string().contains("r1"));
        assert!(e.to_string().contains("r2"));
    }
}
