//! Hand-rolled argument parsing (the workspace deliberately uses no CLI
//! dependency).

use ibgp::{ProtocolVariant, SolverMode};

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage: ibgp-cli <command> [args]

commands:
  list                        scenarios in the catalog
  classify <scenario|file>    exhaustive oscillation analysis (catalog name or .ibgp file)
  run <scenario|file>         converge a catalog scenario, or classify a .ibgp file
  gallery                     every scenario x every protocol
  dot <scenario>              Graphviz of the topology
  theorems <scenario>         the paper's §7 checks (modified protocol)
  sat <formula>               3-SAT via the §5 routing reduction
  explain <scenario> <router> converge, then show the router's rule-by-rule decision
  hunt                        seeded oscillation-hunting campaign into a corpus dir
  minimize <file>             delta-debug a .ibgp specimen, preserving its verdict
  corpus stats [dir]          summarize a corpus directory (default ./corpus)
  serve                       classification daemon over a signature-keyed verdict store
  batch <dir>                 classify every .ibgp under a directory through the store
  submit <file>               send one .ibgp to a running `serve` daemon

options:
  --variant standard|walton|modified   protocol (default standard)
  --max-states N                       search cap (default 500000)
  --jobs N                             search worker threads, N >= 1
                                       (default: one per CPU, capped at 8)
  --symmetry                           collapse automorphism orbits during search
  --por                                partial-order reduction: prune provably
                                       commuting activation interleavings (exact)
  --max-bytes N                        visited-set byte budget (default unbounded)
  --deadline-ms N                      per-search wall-clock deadline in milliseconds
  --solver sat|search                  classification backend (default search);
                                       `sat` enumerates all stable routings by
                                       constraint solving, no reachable-state search
  --loop-prevention                    message-level reflection mechanics:
                                       ORIGINATOR_ID/CLUSTER_LIST stamping, cluster-loop
                                       drop, SSLD, the reflect-to-whom matrix (reflection
                                       specs only; forces the legacy encoding, disables
                                       symmetry/POR, and the sat solver falls back)
  --steps N                            step budget (default 100000)
  --seed N                             hunt: campaign seed (default 1)
  --budget N                           hunt: topologies to generate (default 100)
  --out PATH                           hunt: corpus dir (default ./corpus);
                                       minimize: output file; batch: report path
  --families a,b,...                   hunt: reflection,multi-reflector,hierarchy,confed,mesh
  --addr HOST:PORT                     serve/submit: daemon address (default 127.0.0.1:8642)
  --cache PATH                         serve/batch: verdict-store log (default: in-memory only)
  --workers N                          serve/batch: concurrent searches, N >= 1 (default 1)

formula syntax: clauses ';'-separated, literals ','-separated, negative
numbers negate, variables numbered from 1: \"1,2,-3;-1,3,2\"";

/// The search knobs every exploring verb shares (`classify`, `run`,
/// `gallery`, `hunt`, `minimize`), bundled so they travel together from
/// the parser to the search entry points and cannot drift apart
/// verb-by-verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchArgs {
    /// `--max-states N`.
    pub max_states: usize,
    /// `--jobs N` (N ≥ 1). `0` is the parser-internal "auto" sentinel:
    /// one worker per available CPU, capped in the analysis layer. The
    /// parser rejects an *explicit* `--jobs 0`.
    pub jobs: usize,
    /// `--symmetry`.
    pub symmetry: bool,
    /// `--por`.
    pub por: bool,
    /// `--max-bytes N`.
    pub max_bytes: Option<usize>,
    /// `--deadline-ms N` — per-search wall-clock budget, converted to an
    /// absolute deadline when the search starts.
    pub deadline_ms: Option<u64>,
    /// `--solver sat|search`.
    pub solver: SolverMode,
    /// `--loop-prevention`.
    pub loop_prevention: bool,
}

impl Default for SearchArgs {
    fn default() -> Self {
        Self {
            max_states: 500_000,
            jobs: 0,
            symmetry: false,
            por: false,
            max_bytes: None,
            deadline_ms: None,
            solver: SolverMode::Search,
            loop_prevention: false,
        }
    }
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `list`
    List,
    /// `classify <scenario>`
    Classify {
        scenario: String,
        variant: ProtocolVariant,
        search: SearchArgs,
    },
    /// `run <scenario|file>`
    Run {
        scenario: String,
        variant: ProtocolVariant,
        steps: u64,
        search: SearchArgs,
    },
    /// `gallery`
    Gallery { search: SearchArgs },
    /// `dot <scenario>`
    Dot { scenario: String },
    /// `theorems <scenario>`
    Theorems { scenario: String, steps: u64 },
    /// `sat <formula>`
    Sat { formula: String, steps: u64 },
    /// `explain <scenario> <router>`
    Explain {
        scenario: String,
        router: u32,
        variant: ProtocolVariant,
        steps: u64,
    },
    /// `hunt`
    Hunt {
        seed: u64,
        budget: usize,
        out: String,
        families: Option<String>,
        search: SearchArgs,
    },
    /// `minimize <file>`
    Minimize {
        file: String,
        out: Option<String>,
        search: SearchArgs,
    },
    /// `corpus stats [dir]`
    CorpusStats { dir: String },
    /// `serve`
    Serve {
        addr: String,
        cache: Option<String>,
        workers: usize,
        search: SearchArgs,
    },
    /// `batch <dir>`
    Batch {
        dir: String,
        out: Option<String>,
        cache: Option<String>,
        workers: usize,
        search: SearchArgs,
    },
    /// `submit <file>`
    Submit {
        file: String,
        addr: String,
        search: SearchArgs,
    },
}

impl Command {
    /// The search knobs, for the verbs that run a reachability search.
    /// (Exercised by the verb × flag matrix test; the run path
    /// destructures variants directly.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn search_args(&self) -> Option<&SearchArgs> {
        match self {
            Command::Classify { search, .. }
            | Command::Run { search, .. }
            | Command::Gallery { search }
            | Command::Hunt { search, .. }
            | Command::Minimize { search, .. }
            | Command::Serve { search, .. }
            | Command::Batch { search, .. }
            | Command::Submit { search, .. } => Some(search),
            _ => None,
        }
    }
}

/// Parse an argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let cmd = it.next().ok_or("missing command")?.as_str();

    // Split remaining args into positionals and --options.
    let rest: Vec<&String> = it.collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut variant = ProtocolVariant::Standard;
    let mut search = SearchArgs::default();
    let mut steps = 100_000u64;
    let mut seed = 1u64;
    let mut budget = 100usize;
    let mut out: Option<String> = None;
    let mut families: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut cache: Option<String> = None;
    let mut workers = 1usize;
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i].as_str();
        match a {
            "--variant" => {
                i += 1;
                let v = rest.get(i).ok_or("--variant needs a value")?;
                variant = parse_variant(v)?;
            }
            "--max-states" => {
                i += 1;
                let v = rest.get(i).ok_or("--max-states needs a value")?;
                search.max_states = v
                    .parse()
                    .map_err(|_| format!("invalid --max-states value `{v}`"))?;
            }
            "--jobs" => {
                i += 1;
                let v = rest.get(i).ok_or("--jobs needs a value")?;
                search.jobs = v
                    .parse()
                    .map_err(|_| format!("invalid --jobs value `{v}`"))?;
                if search.jobs == 0 {
                    return Err("--jobs must be at least 1; omit --jobs for the default \
                         (one worker per CPU, capped at 8)"
                        .into());
                }
            }
            "--steps" => {
                i += 1;
                let v = rest.get(i).ok_or("--steps needs a value")?;
                steps = v
                    .parse()
                    .map_err(|_| format!("invalid --steps value `{v}`"))?;
            }
            "--seed" => {
                i += 1;
                let v = rest.get(i).ok_or("--seed needs a value")?;
                seed = v
                    .parse()
                    .map_err(|_| format!("invalid --seed value `{v}`"))?;
            }
            "--budget" => {
                i += 1;
                let v = rest.get(i).ok_or("--budget needs a value")?;
                budget = v
                    .parse()
                    .map_err(|_| format!("invalid --budget value `{v}`"))?;
            }
            "--symmetry" => {
                search.symmetry = true;
            }
            "--por" => {
                search.por = true;
            }
            "--max-bytes" => {
                i += 1;
                let v = rest.get(i).ok_or("--max-bytes needs a value")?;
                search.max_bytes = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --max-bytes value `{v}`"))?,
                );
            }
            "--deadline-ms" => {
                i += 1;
                let v = rest.get(i).ok_or("--deadline-ms needs a value")?;
                search.deadline_ms = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --deadline-ms value `{v}`"))?,
                );
            }
            "--solver" => {
                i += 1;
                let v = rest.get(i).ok_or("--solver needs a value")?;
                search.solver = v.parse()?;
            }
            "--loop-prevention" => {
                search.loop_prevention = true;
            }
            "--out" => {
                i += 1;
                let v = rest.get(i).ok_or("--out needs a value")?;
                out = Some(v.to_string());
            }
            "--addr" => {
                i += 1;
                let v = rest.get(i).ok_or("--addr needs a value")?;
                addr = Some(v.to_string());
            }
            "--cache" => {
                i += 1;
                let v = rest.get(i).ok_or("--cache needs a value")?;
                cache = Some(v.to_string());
            }
            "--workers" => {
                i += 1;
                let v = rest.get(i).ok_or("--workers needs a value")?;
                workers = v
                    .parse()
                    .map_err(|_| format!("invalid --workers value `{v}`"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--families" => {
                i += 1;
                let v = rest.get(i).ok_or("--families needs a value")?;
                families = Some(v.to_string());
            }
            _ if a.starts_with("--") => return Err(format!("unknown option `{a}`")),
            _ => positional.push(a),
        }
        i += 1;
    }

    let one_positional = |what: &str| -> Result<String, String> {
        match positional.as_slice() {
            [p] => Ok((*p).to_string()),
            [] => Err(format!("`{cmd}` needs a {what}")),
            _ => Err(format!("`{cmd}` takes exactly one {what}")),
        }
    };

    match cmd {
        "list" => Ok(Command::List),
        "classify" => Ok(Command::Classify {
            scenario: one_positional("scenario name")?,
            variant,
            search,
        }),
        "run" => Ok(Command::Run {
            scenario: one_positional("scenario name or .ibgp file")?,
            variant,
            steps,
            search,
        }),
        "gallery" => Ok(Command::Gallery { search }),
        "dot" => Ok(Command::Dot {
            scenario: one_positional("scenario name")?,
        }),
        "theorems" => Ok(Command::Theorems {
            scenario: one_positional("scenario name")?,
            steps,
        }),
        "sat" => Ok(Command::Sat {
            formula: one_positional("formula")?,
            steps,
        }),
        "explain" => match positional.as_slice() {
            [scenario, router] => Ok(Command::Explain {
                scenario: (*scenario).to_string(),
                router: router
                    .parse()
                    .map_err(|_| format!("invalid router id `{router}`"))?,
                variant,
                steps,
            }),
            _ => Err("`explain` needs a scenario name and a router id".into()),
        },
        "hunt" => {
            if !positional.is_empty() {
                return Err("`hunt` takes no positional arguments".into());
            }
            Ok(Command::Hunt {
                seed,
                budget,
                out: out.unwrap_or_else(|| "corpus".into()),
                families,
                search,
            })
        }
        "minimize" => Ok(Command::Minimize {
            file: one_positional(".ibgp file")?,
            out,
            search,
        }),
        "serve" => {
            if !positional.is_empty() {
                return Err("`serve` takes no positional arguments".into());
            }
            Ok(Command::Serve {
                addr: addr.unwrap_or_else(|| "127.0.0.1:8642".into()),
                cache,
                workers,
                search,
            })
        }
        "batch" => Ok(Command::Batch {
            dir: one_positional("directory")?,
            out,
            cache,
            workers,
            search,
        }),
        "submit" => Ok(Command::Submit {
            file: one_positional(".ibgp file")?,
            addr: addr.unwrap_or_else(|| "127.0.0.1:8642".into()),
            search,
        }),
        "corpus" => match positional.as_slice() {
            ["stats"] => Ok(Command::CorpusStats {
                dir: "corpus".into(),
            }),
            ["stats", dir] => Ok(Command::CorpusStats {
                dir: (*dir).to_string(),
            }),
            _ => Err("`corpus` supports `corpus stats [dir]`".into()),
        },
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_variant(s: &str) -> Result<ProtocolVariant, String> {
    // The accepted spellings live on `ProtocolVariant`'s `FromStr`, shared
    // with the `.ibgp` scenario format so they cannot drift apart.
    s.parse()
}

/// Parse the clause syntax into a formula.
pub fn parse_formula(s: &str) -> Result<ibgp::npc::Formula, String> {
    use ibgp::npc::{Clause, Formula, Lit};
    let mut clauses = Vec::new();
    let mut max_var = 0u32;
    for (ci, chunk) in s.split(';').enumerate() {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            return Err(format!("clause {} is empty", ci + 1));
        }
        let mut lits = Vec::new();
        for tok in chunk.split(',') {
            let v: i64 = tok
                .trim()
                .parse()
                .map_err(|_| format!("invalid literal `{tok}`"))?;
            if v == 0 {
                return Err("variables are numbered from 1".into());
            }
            let var = v.unsigned_abs() as u32 - 1;
            max_var = max_var.max(var + 1);
            lits.push(if v > 0 { Lit::pos(var) } else { Lit::neg(var) });
        }
        clauses.push(Clause(lits));
    }
    Formula::new(max_var as usize, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_list_and_gallery() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert_eq!(
            parse(&argv("gallery --max-states 100")).unwrap(),
            Command::Gallery {
                search: SearchArgs {
                    max_states: 100,
                    ..SearchArgs::default()
                },
            }
        );
    }

    #[test]
    fn parses_classify_with_options() {
        let cmd = parse(&argv(
            "classify fig1a --variant walton --max-states 42 --jobs 4 --symmetry --por --max-bytes 4096 --solver sat",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Classify {
                scenario: "fig1a".into(),
                variant: ProtocolVariant::Walton,
                search: SearchArgs {
                    max_states: 42,
                    jobs: 4,
                    symmetry: true,
                    por: true,
                    max_bytes: Some(4096),
                    deadline_ms: None,
                    solver: SolverMode::Sat,
                    loop_prevention: false,
                },
            }
        );
    }

    #[test]
    fn parses_run_defaults() {
        let cmd = parse(&argv("run fig2")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                scenario: "fig2".into(),
                variant: ProtocolVariant::Standard,
                steps: 100_000,
                search: SearchArgs::default(),
            }
        );
    }

    /// Every search verb accepts the whole search-flag matrix and lands
    /// it in one shared `SearchArgs` — no verb can silently drop a flag
    /// (the historical failure mode this guards: a verb plumbing
    /// `--max-states` but not `--jobs`, or vice versa).
    #[test]
    fn every_search_verb_accepts_the_full_flag_matrix() {
        let flags = "--jobs 3 --max-states 77 --symmetry --por --max-bytes 2048 --deadline-ms 500 \
                     --solver sat --loop-prevention";
        let expected = SearchArgs {
            max_states: 77,
            jobs: 3,
            symmetry: true,
            por: true,
            max_bytes: Some(2048),
            deadline_ms: Some(500),
            solver: SolverMode::Sat,
            loop_prevention: true,
        };
        for verb in [
            "classify fig1a",
            "run fig2",
            "gallery",
            "hunt",
            "minimize a.ibgp",
            "serve",
            "batch corpus",
            "submit a.ibgp",
        ] {
            let cmd = parse(&argv(&format!("{verb} {flags}")))
                .unwrap_or_else(|e| panic!("`{verb}` must accept the search flags: {e}"));
            assert_eq!(
                cmd.search_args(),
                Some(&expected),
                "`{verb}` dropped a search flag"
            );
            // Each flag also works alone on every verb.
            for flag in [
                "--jobs 3",
                "--max-states 77",
                "--symmetry",
                "--por",
                "--max-bytes 2048",
                "--deadline-ms 500",
                "--solver sat",
                "--solver search",
                "--loop-prevention",
            ] {
                assert!(
                    parse(&argv(&format!("{verb} {flag}"))).is_ok(),
                    "`{verb} {flag}` must parse"
                );
            }
        }
        // Non-search verbs report no search args.
        assert_eq!(parse(&argv("list")).unwrap().search_args(), None);
        assert_eq!(parse(&argv("dot fig1a")).unwrap().search_args(), None);
    }

    /// `--jobs 0` is rejected with guidance everywhere, not treated as an
    /// auto sentinel the way the library layer's `jobs = 0` default is.
    #[test]
    fn explicit_jobs_zero_is_rejected_on_every_verb() {
        for verb in [
            "classify fig1a",
            "run fig2",
            "gallery",
            "hunt",
            "minimize a.ibgp",
            "serve",
            "batch corpus",
            "submit a.ibgp",
        ] {
            let err = parse(&argv(&format!("{verb} --jobs 0"))).unwrap_err();
            assert!(
                err.contains("at least 1"),
                "`{verb} --jobs 0` must explain the minimum, got: {err}"
            );
        }
    }

    #[test]
    fn parses_serve_batch_and_submit() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8642".into(),
                cache: None,
                workers: 1,
                search: SearchArgs::default(),
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --addr 127.0.0.1:9000 --cache /tmp/v.log --workers 4"
            ))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:9000".into(),
                cache: Some("/tmp/v.log".into()),
                workers: 4,
                search: SearchArgs::default(),
            }
        );
        assert!(parse(&argv("serve extra")).is_err());
        assert!(parse(&argv("serve --workers 0")).is_err());
        assert_eq!(
            parse(&argv("batch corpus --out report.json --cache /tmp/v.log")).unwrap(),
            Command::Batch {
                dir: "corpus".into(),
                out: Some("report.json".into()),
                cache: Some("/tmp/v.log".into()),
                workers: 1,
                search: SearchArgs::default(),
            }
        );
        assert!(parse(&argv("batch")).is_err());
        assert_eq!(
            parse(&argv("submit a.ibgp --addr 127.0.0.1:9000")).unwrap(),
            Command::Submit {
                file: "a.ibgp".into(),
                addr: "127.0.0.1:9000".into(),
                search: SearchArgs::default(),
            }
        );
        assert!(parse(&argv("submit")).is_err());
        assert!(parse(&argv("batch corpus --workers x")).is_err());
        assert!(parse(&argv("classify fig1a --deadline-ms abc")).is_err());
    }

    #[test]
    fn parses_hunt_minimize_and_corpus() {
        let cmd = parse(&argv(
            "hunt --seed 9 --budget 25 --out /tmp/c --families reflection,confed --jobs 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Hunt {
                seed: 9,
                budget: 25,
                out: "/tmp/c".into(),
                families: Some("reflection,confed".into()),
                search: SearchArgs {
                    jobs: 2,
                    ..SearchArgs::default()
                },
            }
        );
        assert_eq!(
            parse(&argv("hunt")).unwrap(),
            Command::Hunt {
                seed: 1,
                budget: 100,
                out: "corpus".into(),
                families: None,
                search: SearchArgs::default(),
            }
        );
        assert!(parse(&argv("hunt extra")).is_err());
        assert_eq!(
            parse(&argv("minimize a.ibgp --out b.ibgp --symmetry")).unwrap(),
            Command::Minimize {
                file: "a.ibgp".into(),
                out: Some("b.ibgp".into()),
                search: SearchArgs {
                    symmetry: true,
                    ..SearchArgs::default()
                },
            }
        );
        assert!(parse(&argv("minimize")).is_err());
        assert_eq!(
            parse(&argv("corpus stats")).unwrap(),
            Command::CorpusStats {
                dir: "corpus".into()
            }
        );
        assert_eq!(
            parse(&argv("corpus stats /tmp/c")).unwrap(),
            Command::CorpusStats {
                dir: "/tmp/c".into()
            }
        );
        assert!(parse(&argv("corpus")).is_err());
        assert!(parse(&argv("hunt --seed x")).is_err());
        assert!(parse(&argv("hunt --budget x")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("classify")).is_err());
        assert!(parse(&argv("classify a b")).is_err());
        assert!(parse(&argv("classify fig1a --variant nope")).is_err());
        assert!(parse(&argv("classify fig1a --max-states abc")).is_err());
        assert!(parse(&argv("classify fig1a --jobs abc")).is_err());
        assert!(parse(&argv("classify fig1a --mystery")).is_err());
        assert!(parse(&argv("classify fig1a --variant")).is_err());
        assert!(parse(&argv("classify fig1a --max-bytes abc")).is_err());
        assert!(parse(&argv("classify fig1a --max-bytes")).is_err());
        assert!(parse(&argv("classify fig1a --solver smt")).is_err());
        assert!(parse(&argv("classify fig1a --solver")).is_err());
    }

    #[test]
    fn parses_explain() {
        let cmd = parse(&argv("explain fig2 3 --variant modified")).unwrap();
        assert_eq!(
            cmd,
            Command::Explain {
                scenario: "fig2".into(),
                router: 3,
                variant: ProtocolVariant::Modified,
                steps: 100_000,
            }
        );
        assert!(parse(&argv("explain fig2")).is_err());
        assert!(parse(&argv("explain fig2 abc")).is_err());
    }

    #[test]
    fn parses_formulas() {
        let f = parse_formula("1,2,-3;-1,3,2").unwrap();
        assert_eq!(f.num_vars, 3);
        assert_eq!(f.clauses.len(), 2);
        assert_eq!(f.to_string(), "(x0 ∨ x1 ∨ ¬x2) ∧ (¬x0 ∨ x2 ∨ x1)");
        assert!(parse_formula("0").is_err());
        assert!(parse_formula("1,x").is_err());
        assert!(parse_formula("1;;2").is_err());
        // A variable and its negation in one clause is rejected upstream.
        assert!(parse_formula("1,-1").is_err());
    }
}
