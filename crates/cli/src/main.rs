//! `ibgp-cli` — command-line front end for the reproduction.
//!
//! ```text
//! ibgp-cli list                                 scenarios in the catalog
//! ibgp-cli classify <scenario> [options]        exhaustive oscillation analysis
//! ibgp-cli run <scenario> [options]             converge and print the routing table
//! ibgp-cli gallery                              every scenario × every protocol
//! ibgp-cli dot <scenario>                       Graphviz of the topology
//! ibgp-cli theorems <scenario>                  the §7 checks (modified protocol)
//! ibgp-cli sat <formula>                        3-SAT via the §5 routing reduction
//!
//! options:
//!   --variant standard|walton|modified          protocol (default standard)
//!   --max-states N                              search cap (default 500000)
//!   --steps N                                   step budget (default 100000)
//!
//! formula syntax: clauses separated by ';', literals by ',', negative
//! numbers for negations, variables numbered from 1.
//! Example: "1,2,-3;-1,3,2" = (x1∨x2∨¬x3) ∧ (¬x1∨x3∨x2)
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
