//! Command implementations.

use crate::args::{parse_formula, Command, SearchArgs};
use ibgp::npc::{assignment_from_best, reduce, schedule_for, solve};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::{all_scenarios, by_name};
use ibgp::sim::{Engine, SyncEngine};
use ibgp::theorems::verify_paper_theorems;
use ibgp::{ExploreOptions, Network, ProtocolVariant, Scenario};
use ibgp_hunt::{HuntOptions, Verdict};
use std::path::Path;

/// Search-option conversions live here (not in `args`) so the parser
/// stays free of analysis-layer dependencies. `jobs = 0` is the parsed
/// "auto" default; both option types resolve it downstream. The one
/// lowering is `SearchArgs -> HuntOptions`; the explorer's options come
/// from hunt's own `From<&HuntOptions>` impl, so a new knob added there
/// reaches every verb without touching this file.
impl SearchArgs {
    fn hunt_options(&self) -> HuntOptions {
        let mut opts = HuntOptions::new()
            .max_states(self.max_states)
            .jobs(self.jobs)
            .symmetry(self.symmetry)
            .por(self.por)
            .solver(self.solver)
            .loop_prevention(self.loop_prevention);
        if let Some(b) = self.max_bytes {
            opts = opts.max_bytes(b);
        }
        if let Some(ms) = self.deadline_ms {
            opts = opts.deadline(std::time::Instant::now() + std::time::Duration::from_millis(ms));
        }
        opts
    }

    fn explore_options(&self) -> ExploreOptions {
        ExploreOptions::from(&self.hunt_options())
    }
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::List => list(),
        Command::Classify {
            scenario,
            variant,
            search,
        } => {
            if is_spec_path(&scenario) {
                classify_file(&scenario, search)
            } else {
                classify(&scenario, variant, search)
            }
        }
        Command::Run {
            scenario,
            variant,
            steps,
            search,
        } => {
            if is_spec_path(&scenario) {
                classify_file(&scenario, search)
            } else {
                converge(&scenario, variant, steps)
            }
        }
        Command::Gallery { search } => gallery(search),
        Command::Dot { scenario } => dot(&scenario),
        Command::Theorems { scenario, steps } => theorems(&scenario, steps),
        Command::Sat { formula, steps } => sat(&formula, steps),
        Command::Explain {
            scenario,
            router,
            variant,
            steps,
        } => explain(&scenario, router, variant, steps),
        Command::Hunt {
            seed,
            budget,
            out,
            families,
            search,
        } => hunt(seed, budget, &out, families.as_deref(), search)?,
        Command::Minimize { file, out, search } => minimize_file(&file, out.as_deref(), search)?,
        Command::CorpusStats { dir } => corpus_stats(&dir)?,
        Command::Serve {
            addr,
            cache,
            workers,
            search,
        } => serve(&addr, cache.as_deref(), workers, search)?,
        Command::Batch {
            dir,
            out,
            cache,
            workers,
            search,
        } => batch(&dir, out.as_deref(), cache.as_deref(), workers, search)?,
        Command::Submit { file, addr, search } => submit(&file, &addr, search)?,
    }
    Ok(())
}

/// `serve`/`batch`/`submit` carry budgets per request, not one absolute
/// deadline computed at argv-parse time: keep the relative
/// `--deadline-ms` and apply it when each search starts.
fn scheduler_request(args: &SearchArgs) -> ibgp_serve::Request {
    let mut opts = args.hunt_options();
    opts.deadline = None;
    ibgp_serve::Request {
        opts,
        deadline_ms: args.deadline_ms,
    }
}

fn open_store(cache: Option<&str>) -> Result<ibgp_serve::VerdictStore, String> {
    match cache {
        Some(path) => ibgp_serve::VerdictStore::open(Path::new(path))
            .map_err(|e| format!("cannot open verdict store `{path}`: {e}")),
        None => Ok(ibgp_serve::VerdictStore::in_memory()),
    }
}

fn serve(
    addr: &str,
    cache: Option<&str>,
    workers: usize,
    search: SearchArgs,
) -> Result<(), String> {
    if search != SearchArgs::default() {
        eprintln!("note: `serve` ignores search flags — budgets arrive per request");
    }
    let store = open_store(cache)?;
    match cache {
        Some(path) => println!("verdict store: {} entries from {path}", store.len()),
        None => println!("verdict store: in-memory (no --cache)"),
    }
    let sched = std::sync::Arc::new(ibgp_serve::Scheduler::new(store, workers));
    let server =
        ibgp_serve::Server::bind(addr, sched).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    println!(
        "listening on {} ({} worker(s))",
        server.local_addr(),
        workers
    );
    // The daemon runs until killed; the accept loop owns the listener.
    loop {
        std::thread::park();
    }
}

fn batch(
    dir: &str,
    out: Option<&str>,
    cache: Option<&str>,
    workers: usize,
    search: SearchArgs,
) -> Result<(), String> {
    let store = open_store(cache)?;
    let sched = ibgp_serve::Scheduler::new(store, workers);
    let outcome = ibgp_serve::run_batch(Path::new(dir), &sched, scheduler_request(&search))?;
    for e in &outcome.entries {
        let how = if e.cached {
            "cache hit".to_string()
        } else {
            format!("{} states", e.verdict.states)
        };
        println!("{:<32} {} ({how})", e.file, e.verdict.class);
    }
    println!(
        "batch: {} specimen(s), {} search(es) run, {} cache hit(s)",
        outcome.entries.len(),
        outcome.searches_run,
        outcome.cache_hits
    );
    if let Some(dest) = out {
        let report = ibgp_serve::report_json(&outcome.entries);
        std::fs::write(dest, report).map_err(|e| format!("cannot write `{dest}`: {e}"))?;
        println!("wrote {dest}");
    }
    Ok(())
}

fn submit(file: &str, addr: &str, search: SearchArgs) -> Result<(), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let request = scheduler_request(&search);
    let resp = ibgp_serve::submit_text(addr, &text, &request)
        .map_err(|e| format!("cannot reach daemon at `{addr}`: {e}"))?;
    if !resp.is_ok() {
        return Err(resp
            .status
            .strip_prefix("err ")
            .unwrap_or(&resp.status)
            .to_string());
    }
    let parse_field = |key: &str| -> Result<String, String> {
        resp.field(key)
            .map(str::to_string)
            .ok_or_else(|| format!("malformed response: missing `{key}`"))
    };
    let class = ibgp_serve::class_from_keyword(&parse_field("class")?)
        .ok_or("malformed response: bad class")?;
    let states: usize = parse_field("states")?
        .parse()
        .map_err(|_| "malformed response: bad states")?;
    let stop = ibgp::types::StopReason::from_token(&parse_field("stop")?)
        .ok_or("malformed response: bad stop token")?;
    // Daemons predating the solver backend omit `origin`; default search.
    let origin = resp
        .field("origin")
        .map(|t| ibgp::types::VerdictOrigin::from_token(t).ok_or("malformed response: bad origin"))
        .transpose()?
        .unwrap_or_default();
    let mut stable_vectors = Vec::new();
    for line in &resp.body {
        let Some(tok) = line.strip_prefix("vector ") else {
            continue;
        };
        let mut vs =
            ibgp_serve::vectors_from_token(tok).ok_or("malformed response: bad stable vector")?;
        stable_vectors.append(&mut vs);
    }
    let complete = stop.is_complete();
    let stable_count =
        (complete && origin == ibgp::types::VerdictOrigin::Solver).then_some(stable_vectors.len());
    let verdict = Verdict {
        class,
        states,
        complete,
        stop,
        stable_vectors,
        metrics: None,
        origin,
        stable_count,
    };
    print_verdict(&format!("{file} (via {addr})"), &verdict);
    println!("  cached: {}", parse_field("cached")?);
    Ok(())
}

/// Does a `classify`/`run` argument name an on-disk `.ibgp` specimen
/// rather than a catalog scenario? Anything with a path separator or the
/// `.ibgp` extension is treated as a file.
fn is_spec_path(arg: &str) -> bool {
    arg.ends_with(".ibgp") || arg.contains('/') || arg.contains(std::path::MAIN_SEPARATOR)
}

fn lookup(name: &str) -> Scenario {
    by_name(name).unwrap_or_else(|| {
        eprintln!("unknown scenario `{name}`; try `ibgp-cli list`");
        std::process::exit(2);
    })
}

fn list() {
    for s in all_scenarios() {
        println!(
            "{:<8} {:>2} routers, {} exits  {}",
            s.name,
            s.topology.len(),
            s.exits.len(),
            s.description
        );
    }
}

/// The single verdict-printing path shared by `classify` (catalog and
/// file), `run <file>`, and `batch`. All wording lives in
/// [`Verdict::render`] so front ends cannot drift.
fn print_verdict(label: &str, v: &Verdict) {
    print!("{}", v.render(label));
}

fn classify(name: &str, variant: ProtocolVariant, opts: SearchArgs) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, variant);
    let (class, reach) = n.classify(opts.explore_options());
    let solved = reach.origin == ibgp::types::VerdictOrigin::Solver;
    let stable_count = (solved && reach.complete).then_some(reach.stable_vectors.len());
    let verdict = Verdict {
        class,
        states: reach.states,
        complete: reach.complete,
        stop: reach.stop,
        stable_vectors: reach.stable_vectors,
        metrics: (!solved).then_some(reach.metrics),
        origin: reach.origin,
        stable_count,
    };
    print_verdict(&format!("{name} under {variant}"), &verdict);
}

fn load_spec_or_die(path: &str) -> ibgp_hunt::ScenarioSpec {
    ibgp_hunt::load_spec(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot load `{path}`: {e}");
        std::process::exit(2);
    })
}

/// Warn, per flag, when a confederation/hierarchy spec is about to go
/// through its dedicated search — those searches honor only
/// `--max-states` and `--deadline-ms`, and silently dropping the rest has historically made
/// "same flags, different scenario kind" runs incomparable.
fn warn_ignored_flags(kind: &ibgp_hunt::SpecKind, opts: &HuntOptions) {
    if matches!(kind, ibgp_hunt::SpecKind::Reflection(_)) {
        return;
    }
    for flag in opts.reflection_only_flags() {
        eprintln!(
            "warning: {flag} is ignored for {} scenarios (only --max-states and --deadline-ms apply)",
            kind.keyword()
        );
    }
}

fn classify_file(path: &str, opts: SearchArgs) {
    let mut spec = load_spec_or_die(path);
    let opts = opts.hunt_options();
    // Fold `--loop-prevention` into the spec so the verdict label (which
    // shows `protocol_label`) reports the mechanics actually classified
    // under, whichever side turned them on.
    if opts.loop_prevention {
        if let ibgp_hunt::SpecKind::Reflection(r) = &mut spec.kind {
            r.loop_prevention = true;
        }
    }
    warn_ignored_flags(&spec.kind, &opts);
    match ibgp_hunt::classify_spec(&spec, &opts) {
        Ok(verdict) => {
            let label = format!(
                "{} ({}, {})",
                spec.name,
                spec.kind.keyword(),
                spec.protocol_label()
            );
            print_verdict(&label, &verdict);
        }
        Err(e) => {
            eprintln!("invalid scenario `{path}`: {e}");
            std::process::exit(2);
        }
    }
}

fn hunt(
    seed: u64,
    budget: usize,
    out: &str,
    families: Option<&str>,
    opts: SearchArgs,
) -> Result<(), String> {
    let mut cfg = ibgp_hunt::CampaignConfig::new(seed, budget, out.into());
    if let Some(list) = families {
        cfg.families = ibgp_hunt::Family::parse_list(list)?;
        if cfg.families.is_empty() {
            return Err("--families selected no families".into());
        }
    }
    cfg.options = opts.hunt_options();
    // Per-flag warning for the families whose dedicated searches will
    // drop the reflection-only knobs (mirrors `warn_ignored_flags`,
    // keyed on the family since no spec exists yet).
    for family in cfg.families.iter().filter(|f| !f.uses_reflection_search()) {
        for flag in cfg.options.reflection_only_flags() {
            eprintln!(
                "warning: {flag} is ignored for {} scenarios (only --max-states and --deadline-ms apply)",
                family.keyword()
            );
        }
    }
    let report = ibgp_hunt::run_campaign(&cfg).map_err(|e| e.to_string())?;
    println!(
        "hunt: seed {seed}, {} topologies into {out}/",
        report.generated
    );
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>5} {:>7} {:>5}",
        "family", "gen", "osc", "bi", "inc", "stable", "dup"
    );
    for y in &report.yields {
        println!(
            "{:<16} {:>5} {:>5} {:>5} {:>5} {:>7} {:>5}",
            y.family.keyword(),
            y.generated,
            y.oscillating,
            y.bistable,
            y.inconclusive,
            y.stable,
            y.duplicates
        );
    }
    println!(
        "filed {} new specimens ({} duplicates skipped), yield {:.1}%",
        report.filed,
        report.duplicates,
        100.0 * report.yield_rate()
    );
    // Rate off the campaign's own wall clock — never off summed
    // per-search (or per-worker) time, which would overstate it.
    let wall = report.elapsed.as_secs_f64();
    let rate = if wall > 0.0 {
        report.metrics.states_visited as f64 / wall
    } else {
        0.0
    };
    println!(
        "search totals: {} states visited in {:.2}s wall clock ({:.0} states/sec, max {} worker(s))",
        report.metrics.states_visited,
        wall,
        rate,
        report.metrics.workers.max(1)
    );
    Ok(())
}

fn minimize_file(path: &str, out: Option<&str>, opts: SearchArgs) -> Result<(), String> {
    let spec = load_spec_or_die(path);
    let opts = opts.hunt_options();
    warn_ignored_flags(&spec.kind, &opts);
    let result = ibgp_hunt::minimize(&spec, &opts).map_err(|e| e.to_string())?;
    println!(
        "minimize {}: verdict `{}` preserved over {} reclassification(s)",
        spec.name, result.verdict.class, result.reclassifications
    );
    println!(
        "  removed {} router(s), {} session(s), {} exit(s): {} -> {} routers, {} -> {} exits",
        result.removed_routers,
        result.removed_sessions,
        result.removed_exits,
        spec.routers,
        result.spec.routers,
        spec.exits.len(),
        result.spec.exits.len()
    );
    let text = ibgp_hunt::print(&result.spec);
    match out {
        Some(dest) => {
            std::fs::write(dest, &text).map_err(|e| format!("cannot write `{dest}`: {e}"))?;
            println!("  wrote {dest}");
        }
        None => {
            println!("---");
            print!("{text}");
        }
    }
    Ok(())
}

fn corpus_stats(dir: &str) -> Result<(), String> {
    let stats =
        ibgp_hunt::stats(Path::new(dir)).map_err(|e| format!("cannot read `{dir}`: {e}"))?;
    print!("{stats}");
    Ok(())
}

fn converge(name: &str, variant: ProtocolVariant, steps: u64) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, variant);
    let result = n.converge(steps);
    println!("{name} under {variant}: {}", result.outcome);
    println!(
        "  messages {}  paths advertised {}  best changes {}",
        result.metrics.messages, result.metrics.paths_advertised, result.metrics.best_changes
    );
    for (i, route) in result.best_routes.iter().enumerate() {
        match route {
            Some(r) => println!("  r{i}: {r}"),
            None => println!("  r{i}: (no route)"),
        }
    }
}

fn gallery(opts: SearchArgs) {
    println!(
        "{:<8} {:<9} {:>7} {:>7}  class",
        "scenario", "protocol", "states", "stable"
    );
    for s in all_scenarios() {
        for variant in [
            ProtocolVariant::Standard,
            ProtocolVariant::Walton,
            ProtocolVariant::Modified,
        ] {
            let (class, reach) =
                Network::from_scenario(&s, variant).classify(opts.explore_options());
            // Solver-origin rows count *all* stable routings (reachable
            // or not) — tag the provenance so the columns stay honest.
            let stable = if reach.origin == ibgp::types::VerdictOrigin::Solver {
                format!("{} (solver)", reach.stable_vectors.len())
            } else {
                reach.stable_vectors.len().to_string()
            };
            println!(
                "{:<8} {:<9} {:>7} {:>7}  {}",
                s.name,
                variant.to_string(),
                reach.states,
                stable,
                class
            );
        }
    }
}

fn dot(name: &str) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    print!("{}", n.to_dot());
}

fn theorems(name: &str, steps: u64) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, ProtocolVariant::Modified);
    let report = verify_paper_theorems(&n, 6, steps);
    println!(
        "§7 checks on {name} (modified protocol, {} schedules):",
        report.schedules
    );
    println!("  converges under every schedule : {}", report.converges);
    println!(
        "  unique fixed point             : {}",
        report.unique_outcome
    );
    println!(
        "  GoodExits = S' everywhere      : {}",
        report.good_exits_equal_s_prime
    );
    println!("  forwarding loop-free           : {}", report.loop_free);
    match report.flush_ok {
        Some(ok) => println!("  withdrawn path flushes         : {ok}"),
        None => println!("  withdrawn path flushes         : (no exits to withdraw)"),
    }
    println!(
        "  => {}",
        if report.all_hold() {
            "ALL HOLD"
        } else {
            "VIOLATION"
        }
    );
}

fn sat(formula: &str, steps: u64) {
    let formula = match parse_formula(formula) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bad formula: {e}");
            std::process::exit(2);
        }
    };
    println!("J = {formula}");
    let sr = reduce(&formula);
    println!(
        "SR_J: {} routers, {} exit paths",
        sr.node_count(),
        sr.exits.len()
    );
    match solve(&formula) {
        Some(assignment) => {
            println!("DPLL: satisfiable, e.g. {assignment:?}");
            let mut schedule = schedule_for(&sr, &assignment);
            let mut engine =
                SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
            let outcome = engine.run(&mut schedule, steps);
            println!("routing side: {outcome}");
            if let Some(read_back) = assignment_from_best(&sr, &engine.best_vector()) {
                println!(
                    "read back from the stable routing state: {read_back:?} (satisfies J: {})",
                    sr.formula.eval(&read_back)
                );
            }
        }
        None => {
            println!("DPLL: unsatisfiable — SR_J has no stable configuration");
        }
    }
}

fn explain(name: &str, router: u32, variant: ProtocolVariant, steps: u64) {
    use ibgp::proto::choose_best_traced;
    use ibgp::sim::RoundRobin;
    use ibgp::RouterId;
    let s = lookup(name);
    let u = RouterId::new(router);
    if u.index() >= s.topology.len() {
        eprintln!(
            "router {router} out of range (scenario has {} routers)",
            s.topology.len()
        );
        std::process::exit(2);
    }
    let n = Network::from_scenario(&s, variant);
    let mut engine = n.sync_engine();
    let outcome = engine.run(&mut RoundRobin::new(), steps);
    println!("{name} under {variant}: {outcome}");
    let candidates = engine.candidate_routes(u);
    println!("candidates at r{router} ({}):", candidates.len());
    for c in &candidates {
        println!("  {c}");
    }
    let (best, trace) = choose_best_traced(n.config().policy, &candidates);
    println!("decision: {}", trace);
    match (best, trace.deciding_rule()) {
        (Some(b), Some(rule)) => println!("winner: {} (decided by rule `{rule}`)", b.exit()),
        (Some(b), None) => println!("winner: {} (single candidate)", b.exit()),
        (None, _) => println!("no route"),
    }
}
