//! Command implementations.

use crate::args::{parse_formula, Command};
use ibgp::npc::{assignment_from_best, reduce, schedule_for, solve};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::{all_scenarios, by_name};
use ibgp::sim::{Engine, SyncEngine};
use ibgp::theorems::verify_paper_theorems;
use ibgp::{ExploreOptions, Network, ProtocolVariant, Scenario};

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::List => list(),
        Command::Classify {
            scenario,
            variant,
            max_states,
            jobs,
        } => classify(&scenario, variant, max_states, jobs),
        Command::Run {
            scenario,
            variant,
            steps,
        } => converge(&scenario, variant, steps),
        Command::Gallery { max_states, jobs } => gallery(max_states, jobs),
        Command::Dot { scenario } => dot(&scenario),
        Command::Theorems { scenario, steps } => theorems(&scenario, steps),
        Command::Sat { formula, steps } => sat(&formula, steps),
        Command::Explain {
            scenario,
            router,
            variant,
            steps,
        } => explain(&scenario, router, variant, steps),
    }
    Ok(())
}

fn lookup(name: &str) -> Scenario {
    by_name(name).unwrap_or_else(|| {
        eprintln!("unknown scenario `{name}`; try `ibgp-cli list`");
        std::process::exit(2);
    })
}

fn list() {
    for s in all_scenarios() {
        println!(
            "{:<8} {:>2} routers, {} exits  {}",
            s.name,
            s.topology.len(),
            s.exits.len(),
            s.description
        );
    }
}

fn classify(name: &str, variant: ProtocolVariant, max_states: usize, jobs: usize) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, variant);
    let (class, reach) = n.classify(ExploreOptions::new().max_states(max_states).jobs(jobs));
    println!("{name} under {variant}: {class}");
    if let Some(cap) = reach.cap {
        println!("  inconclusive: state cap {cap} reached (raise --max-states)");
    }
    println!(
        "  {} reachable configurations (complete search: {})",
        reach.states, reach.complete
    );
    println!(
        "  explored at {:.0} states/sec on {} worker(s) (frontier depth {}, peak queue {})",
        reach.metrics.states_per_sec(),
        reach.metrics.workers,
        reach.metrics.frontier_depth,
        reach.metrics.peak_queue
    );
    println!(
        "  update cache: {:.1}% hit rate ({} hits / {} misses)",
        100.0 * reach.metrics.cache_hit_rate(),
        reach.metrics.cache_hits,
        reach.metrics.cache_misses
    );
    println!("  {} stable solution(s):", reach.stable_vectors.len());
    for (i, sv) in reach.stable_vectors.iter().enumerate() {
        println!("    #{}: {}", i + 1, fmt_bests(sv));
    }
}

fn converge(name: &str, variant: ProtocolVariant, steps: u64) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, variant);
    let result = n.converge(steps);
    println!("{name} under {variant}: {}", result.outcome);
    println!(
        "  messages {}  paths advertised {}  best changes {}",
        result.metrics.messages, result.metrics.paths_advertised, result.metrics.best_changes
    );
    for (i, route) in result.best_routes.iter().enumerate() {
        match route {
            Some(r) => println!("  r{i}: {r}"),
            None => println!("  r{i}: (no route)"),
        }
    }
}

fn gallery(max_states: usize, jobs: usize) {
    println!(
        "{:<8} {:<9} {:>7} {:>7}  class",
        "scenario", "protocol", "states", "stable"
    );
    for s in all_scenarios() {
        for variant in [
            ProtocolVariant::Standard,
            ProtocolVariant::Walton,
            ProtocolVariant::Modified,
        ] {
            let (class, reach) = Network::from_scenario(&s, variant)
                .classify(ExploreOptions::new().max_states(max_states).jobs(jobs));
            println!(
                "{:<8} {:<9} {:>7} {:>7}  {}",
                s.name,
                variant.to_string(),
                reach.states,
                reach.stable_vectors.len(),
                class
            );
        }
    }
}

fn dot(name: &str) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    print!("{}", n.to_dot());
}

fn theorems(name: &str, steps: u64) {
    let s = lookup(name);
    let n = Network::from_scenario(&s, ProtocolVariant::Modified);
    let report = verify_paper_theorems(&n, 6, steps);
    println!(
        "§7 checks on {name} (modified protocol, {} schedules):",
        report.schedules
    );
    println!("  converges under every schedule : {}", report.converges);
    println!(
        "  unique fixed point             : {}",
        report.unique_outcome
    );
    println!(
        "  GoodExits = S' everywhere      : {}",
        report.good_exits_equal_s_prime
    );
    println!("  forwarding loop-free           : {}", report.loop_free);
    match report.flush_ok {
        Some(ok) => println!("  withdrawn path flushes         : {ok}"),
        None => println!("  withdrawn path flushes         : (no exits to withdraw)"),
    }
    println!(
        "  => {}",
        if report.all_hold() {
            "ALL HOLD"
        } else {
            "VIOLATION"
        }
    );
}

fn sat(formula: &str, steps: u64) {
    let formula = match parse_formula(formula) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bad formula: {e}");
            std::process::exit(2);
        }
    };
    println!("J = {formula}");
    let sr = reduce(&formula);
    println!(
        "SR_J: {} routers, {} exit paths",
        sr.node_count(),
        sr.exits.len()
    );
    match solve(&formula) {
        Some(assignment) => {
            println!("DPLL: satisfiable, e.g. {assignment:?}");
            let mut schedule = schedule_for(&sr, &assignment);
            let mut engine =
                SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
            let outcome = engine.run(&mut schedule, steps);
            println!("routing side: {outcome}");
            if let Some(read_back) = assignment_from_best(&sr, &engine.best_vector()) {
                println!(
                    "read back from the stable routing state: {read_back:?} (satisfies J: {})",
                    sr.formula.eval(&read_back)
                );
            }
        }
        None => {
            println!("DPLL: unsatisfiable — SR_J has no stable configuration");
        }
    }
}

fn explain(name: &str, router: u32, variant: ProtocolVariant, steps: u64) {
    use ibgp::proto::choose_best_traced;
    use ibgp::sim::RoundRobin;
    use ibgp::RouterId;
    let s = lookup(name);
    let u = RouterId::new(router);
    if u.index() >= s.topology.len() {
        eprintln!(
            "router {router} out of range (scenario has {} routers)",
            s.topology.len()
        );
        std::process::exit(2);
    }
    let n = Network::from_scenario(&s, variant);
    let mut engine = n.sync_engine();
    let outcome = engine.run(&mut RoundRobin::new(), steps);
    println!("{name} under {variant}: {outcome}");
    let candidates = engine.candidate_routes(u);
    println!("candidates at r{router} ({}):", candidates.len());
    for c in &candidates {
        println!("  {c}");
    }
    let (best, trace) = choose_best_traced(n.config().policy, &candidates);
    println!("decision: {}", trace);
    match (best, trace.deciding_rule()) {
        (Some(b), Some(rule)) => println!("winner: {} (decided by rule `{rule}`)", b.exit()),
        (Some(b), None) => println!("winner: {} (single candidate)", b.exit()),
        (None, _) => println!("no route"),
    }
}

fn fmt_bests(bv: &[Option<ibgp::ExitPathId>]) -> String {
    bv.iter()
        .map(|b| b.map(|p| p.to_string()).unwrap_or_else(|| "-".into()))
        .collect::<Vec<_>>()
        .join(" ")
}
