//! End-to-end tests of the compiled `ibgp-cli` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ibgp-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_shows_all_scenarios() {
    let (stdout, _, ok) = run(&["list"]);
    assert!(ok);
    for name in ["fig1a", "fig1b", "fig2", "fig3", "fig12", "fig13", "fig14"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn classify_fig1a_reports_persistence() {
    let (stdout, _, ok) = run(&["classify", "fig1a"]);
    assert!(ok);
    assert!(stdout.contains("persistent oscillation"), "{stdout}");
    assert!(stdout.contains("0 stable solution(s)"), "{stdout}");
}

#[test]
fn classify_honors_variant_flag() {
    let (stdout, _, ok) = run(&["classify", "fig1a", "--variant", "modified"]);
    assert!(ok);
    assert!(stdout.contains("stable"), "{stdout}");
    assert!(!stdout.contains("persistent"), "{stdout}");
}

#[test]
fn run_prints_routes() {
    let (stdout, _, ok) = run(&["run", "fig14", "--variant", "modified"]);
    assert!(ok);
    assert!(stdout.contains("converged"), "{stdout}");
    assert!(stdout.contains("r0:"), "{stdout}");
}

#[test]
fn dot_emits_graphviz() {
    let (stdout, _, ok) = run(&["dot", "fig2"]);
    assert!(ok);
    assert!(stdout.starts_with("graph as0 {"), "{stdout}");
}

#[test]
fn theorems_all_hold_on_fig1a() {
    let (stdout, _, ok) = run(&["theorems", "fig1a"]);
    assert!(ok);
    assert!(stdout.contains("ALL HOLD"), "{stdout}");
}

#[test]
fn sat_decides_and_round_trips() {
    let (stdout, _, ok) = run(&["sat", "1,2;-1,2"]);
    assert!(ok);
    assert!(stdout.contains("satisfiable"), "{stdout}");
    assert!(stdout.contains("satisfies J: true"), "{stdout}");

    let (stdout, _, ok) = run(&["sat", "1;-1"]);
    assert!(ok);
    assert!(stdout.contains("unsatisfiable"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (_, stderr, ok) = run(&["bogus-command"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");

    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("missing command"), "{stderr}");
}

#[test]
fn unknown_scenario_exits_nonzero() {
    let (_, stderr, ok) = run(&["classify", "nonexistent"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
}

#[test]
fn explain_shows_the_decision_trace() {
    let (stdout, _, ok) = run(&["explain", "fig1a", "0", "--variant", "modified"]);
    assert!(ok);
    assert!(stdout.contains("candidates at r0"), "{stdout}");
    assert!(stdout.contains("-[min-metric]->"), "{stdout}");
    assert!(stdout.contains("winner:"), "{stdout}");
}

#[test]
fn explain_rejects_bad_router() {
    let (_, stderr, ok) = run(&["explain", "fig1a", "99"]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
}

fn golden(name: &str) -> String {
    format!(
        "{}/../../corpus/paper/{name}.ibgp",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ibgp-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn classify_accepts_a_spec_file() {
    let path = golden("fig1a");
    let (stdout, _, ok) = run(&["classify", &path]);
    assert!(ok);
    assert!(stdout.contains("persistent oscillation"), "{stdout}");
    assert!(stdout.contains("reflection"), "{stdout}");
}

#[test]
fn run_on_a_spec_file_shares_the_verdict_printer() {
    let fig1a = run(&["run", &golden("fig1a")]);
    assert!(fig1a.2);
    assert!(fig1a.0.contains("persistent oscillation"), "{}", fig1a.0);

    // The shared cap hint appears on inconclusive searches from both verbs.
    let capped_run = run(&["run", &golden("fig13"), "--max-states", "10"]);
    let capped_classify = run(&["classify", &golden("fig13"), "--max-states", "10"]);
    for (stdout, _, ok) in [&capped_run, &capped_classify] {
        assert!(*ok);
        assert!(
            stdout.contains("inconclusive: state cap 10 reached"),
            "{stdout}"
        );
    }
}

#[test]
fn hunt_minimize_and_corpus_stats_chain_end_to_end() {
    let out = temp_dir("hunt");
    let out_str = out.to_string_lossy().into_owned();
    let (stdout, _, ok) = run(&[
        "hunt", "--seed", "20260806", "--budget", "30", "--out", &out_str,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("filed 2 new specimens"), "{stdout}");

    // The corpus is on disk where stats can see it.
    let (stats, _, ok) = run(&["corpus", "stats", &out_str]);
    assert!(ok);
    assert!(stats.contains("specimens"), "{stats}");

    // Minimize one filed find (whichever bucket this seed filled); the
    // emitted spec must classify to the same verdict.
    let specimen = ["oscillating", "bistable"]
        .iter()
        .filter_map(|b| std::fs::read_dir(out.join(b)).ok())
        .flatten()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "ibgp"))
        .expect("at least one filed specimen");
    let minimized = out.join("minimized.ibgp");
    let (stdout, _, ok) = run(&[
        "minimize",
        &specimen.to_string_lossy(),
        "--out",
        &minimized.to_string_lossy(),
    ]);
    assert!(ok, "{stdout}");
    let (verdict, _, ok) = run(&["classify", &minimized.to_string_lossy()]);
    assert!(ok);
    assert!(verdict.contains("oscillation"), "{verdict}");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn minimize_shrinks_a_padded_fig1a_spec() {
    use ibgp_hunt::spec::{ScenarioSpec, SpecKind};
    let text = std::fs::read_to_string(golden("fig1a")).unwrap();
    let mut spec: ScenarioSpec = ibgp_hunt::parse(&text).unwrap();
    let first = spec.routers as u32;
    spec.routers += 1;
    spec.links.push((0, first, 3));
    match &mut spec.kind {
        SpecKind::Reflection(r) => r.clusters[0].1.push(first),
        _ => unreachable!(),
    }
    let dir = temp_dir("minimize");
    std::fs::create_dir_all(&dir).unwrap();
    let padded = dir.join("padded.ibgp");
    std::fs::write(&padded, ibgp_hunt::print(&spec)).unwrap();
    let (stdout, _, ok) = run(&["minimize", &padded.to_string_lossy()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("removed 1 router(s)"), "{stdout}");
    assert!(stdout.contains("persistent oscillation"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn classify_with_por_keeps_the_verdict_and_reports_the_split() {
    let (stdout, _, ok) = run(&["classify", "fig1a", "--por"]);
    assert!(ok);
    assert!(stdout.contains("persistent oscillation"), "{stdout}");
    assert!(stdout.contains("por:"), "{stdout}");
    assert!(stdout.contains("ample branch"), "{stdout}");
}

#[test]
fn reflection_only_flags_warn_on_confed_specs() {
    use ibgp_hunt::{generate_spec, Family};
    let dir = temp_dir("warnflags");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = generate_spec(Family::Confed, 1, 0);
    let path = dir.join("confed.ibgp");
    std::fs::write(&path, ibgp_hunt::print(&spec)).unwrap();
    let path = path.to_string_lossy().into_owned();

    // classify: one warning per dropped flag, nothing silent.
    let (_, stderr, ok) = run(&[
        "classify",
        &path,
        "--jobs",
        "2",
        "--symmetry",
        "--por",
        "--max-bytes",
        "1048576",
        "--loop-prevention",
    ]);
    assert!(ok, "{stderr}");
    for flag in [
        "--jobs",
        "--symmetry",
        "--por",
        "--max-bytes",
        "--loop-prevention",
    ] {
        assert!(
            stderr.contains(&format!("warning: {flag} is ignored for confed scenarios")),
            "missing warning for {flag} in:\n{stderr}"
        );
    }

    // run <file> shares the classify path and its warnings.
    let (_, stderr, ok) = run(&["run", &path, "--symmetry"]);
    assert!(ok);
    assert!(
        stderr.contains("warning: --symmetry is ignored for confed scenarios"),
        "{stderr}"
    );

    // minimize warns before reclassifying.
    let (_, stderr, ok) = run(&["minimize", &path, "--por"]);
    assert!(ok, "{stderr}");
    assert!(
        stderr.contains("warning: --por is ignored for confed scenarios"),
        "{stderr}"
    );

    // hunt warns per selected non-reflection family.
    let out = dir.join("hunt-out");
    let (_, stderr, ok) = run(&[
        "hunt",
        "--budget",
        "1",
        "--families",
        "confed",
        "--por",
        "--out",
        &out.to_string_lossy(),
    ]);
    assert!(ok, "{stderr}");
    assert!(
        stderr.contains("warning: --por is ignored for confed scenarios"),
        "{stderr}"
    );

    // The same flags on a reflection spec are honored, not warned about.
    let (_, stderr, ok) = run(&[
        "classify",
        &golden("fig1a"),
        "--jobs",
        "2",
        "--symmetry",
        "--por",
    ]);
    assert!(ok);
    assert!(!stderr.contains("warning"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loop_prevention_labels_the_verdict_and_overrides_the_solver() {
    // The flag is folded into the spec before classification, so the
    // verdict line names the mechanics it was computed under.
    let (stdout, stderr, ok) = run(&["classify", &golden("fig1a"), "--loop-prevention"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("standard+loop-prevention"), "{stdout}");
    assert!(!stderr.contains("warning"), "{stderr}");

    // The SAT backend models plain reflection only; with loop prevention
    // on it must decline and the run falls back to the explicit search,
    // reporting the search origin (reachable-configuration count) rather
    // than pretending the solver answered.
    let (stdout, stderr, ok) = run(&[
        "classify",
        &golden("fig1a"),
        "--loop-prevention",
        "--solver",
        "sat",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("standard+loop-prevention"), "{stdout}");
    assert!(
        stdout.contains("reachable configuration"),
        "search origin missing from:\n{stdout}"
    );
    assert!(!stdout.contains("solver"), "{stdout}");
}

#[test]
fn bad_spec_file_reports_line_numbers() {
    let dir = temp_dir("badspec");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ibgp");
    std::fs::write(&bad, "ibgp 1\nrouters zero\n").unwrap();
    let (_, stderr, ok) = run(&["classify", &bad.to_string_lossy()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
