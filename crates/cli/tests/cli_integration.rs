//! End-to-end tests of the compiled `ibgp-cli` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ibgp-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_shows_all_scenarios() {
    let (stdout, _, ok) = run(&["list"]);
    assert!(ok);
    for name in ["fig1a", "fig1b", "fig2", "fig3", "fig12", "fig13", "fig14"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn classify_fig1a_reports_persistence() {
    let (stdout, _, ok) = run(&["classify", "fig1a"]);
    assert!(ok);
    assert!(stdout.contains("persistent oscillation"), "{stdout}");
    assert!(stdout.contains("0 stable solution(s)"), "{stdout}");
}

#[test]
fn classify_honors_variant_flag() {
    let (stdout, _, ok) = run(&["classify", "fig1a", "--variant", "modified"]);
    assert!(ok);
    assert!(stdout.contains("stable"), "{stdout}");
    assert!(!stdout.contains("persistent"), "{stdout}");
}

#[test]
fn run_prints_routes() {
    let (stdout, _, ok) = run(&["run", "fig14", "--variant", "modified"]);
    assert!(ok);
    assert!(stdout.contains("converged"), "{stdout}");
    assert!(stdout.contains("r0:"), "{stdout}");
}

#[test]
fn dot_emits_graphviz() {
    let (stdout, _, ok) = run(&["dot", "fig2"]);
    assert!(ok);
    assert!(stdout.starts_with("graph as0 {"), "{stdout}");
}

#[test]
fn theorems_all_hold_on_fig1a() {
    let (stdout, _, ok) = run(&["theorems", "fig1a"]);
    assert!(ok);
    assert!(stdout.contains("ALL HOLD"), "{stdout}");
}

#[test]
fn sat_decides_and_round_trips() {
    let (stdout, _, ok) = run(&["sat", "1,2;-1,2"]);
    assert!(ok);
    assert!(stdout.contains("satisfiable"), "{stdout}");
    assert!(stdout.contains("satisfies J: true"), "{stdout}");

    let (stdout, _, ok) = run(&["sat", "1;-1"]);
    assert!(ok);
    assert!(stdout.contains("unsatisfiable"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (_, stderr, ok) = run(&["bogus-command"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");

    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("missing command"), "{stderr}");
}

#[test]
fn unknown_scenario_exits_nonzero() {
    let (_, stderr, ok) = run(&["classify", "nonexistent"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
}

#[test]
fn explain_shows_the_decision_trace() {
    let (stdout, _, ok) = run(&["explain", "fig1a", "0", "--variant", "modified"]);
    assert!(ok);
    assert!(stdout.contains("candidates at r0"), "{stdout}");
    assert!(stdout.contains("-[min-metric]->"), "{stdout}");
    assert!(stdout.contains("winner:"), "{stdout}");
}

#[test]
fn explain_rejects_bad_router() {
    let (_, stderr, ok) = run(&["explain", "fig1a", "99"]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
}
