//! The general-hierarchy pull engine.
//!
//! Provenance-based reflection (the RFC 4456 rule the paper's two-level
//! `Transfer` relation encodes): a router may offer a route
//!
//! * to **everyone** if it originated the route (E-BGP) or learned it
//!   over a `Down` session (from a client);
//! * only over **`Down` sessions** if it learned the route from a
//!   non-client (`Up` or `Peer`);
//! * never to the route's own exit point.
//!
//! Selection is the paper's `Choose_best`; advertisement is single-best
//! or the `Choose_set` survivor set ([`HierMode`]).

use crate::topology::{HierTopology, SessionKind};
use ibgp_proto::selection::choose_set;
use ibgp_proto::{choose_best, SelectionPolicy};
use ibgp_sim::{Engine, RoundRobin, SyncOutcome};
use ibgp_types::{BgpId, ExitPathId, ExitPathRef, Route, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How a router came to know a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Own E-BGP exit.
    Own,
    /// Learned from a client (over a `Down` session).
    FromClient,
    /// Learned from a reflector or ordinary peer.
    FromNonClient,
}

/// Advertisement discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum HierMode {
    /// Single best route.
    #[default]
    SingleBest,
    /// The `Choose_set` survivor set (the paper's modification).
    SetAdvertisement,
}

impl fmt::Display for HierMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierMode::SingleBest => write!(f, "single-best"),
            HierMode::SetAdvertisement => write!(f, "set-advertisement"),
        }
    }
}

/// A held route: the exit path plus how we learned it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Held {
    path: ExitPathRef,
    provenance: Provenance,
    learned_from: BgpId,
}

#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    my_exits: Vec<ExitPathRef>,
    possible: BTreeMap<ExitPathId, Held>,
    best: Option<ExitPathId>,
    /// Advertised routes with their provenance (the receiver-side filter
    /// needs it).
    advertised: Vec<Held>,
}

/// Canonical per-node state encoding used for dedup and cycle detection.
pub type NodeKey = (
    Vec<(ExitPathId, u8)>,
    Option<ExitPathId>,
    Vec<(ExitPathId, u8)>,
);

impl NodeState {
    fn key(&self) -> NodeKey {
        let enc = |h: &Held| (h.path.id(), h.provenance as u8);
        (
            self.possible.values().map(enc).collect(),
            self.best,
            self.advertised.iter().map(enc).collect(),
        )
    }
}

/// The pull engine over a hierarchy.
#[derive(Clone)]
pub struct HierEngine<'a> {
    topo: &'a HierTopology,
    mode: HierMode,
    policy: SelectionPolicy,
    nodes: Vec<NodeState>,
    time: u64,
}

impl<'a> HierEngine<'a> {
    /// Create with injected exits (paper selection policy).
    pub fn new(topo: &'a HierTopology, mode: HierMode, exits: Vec<ExitPathRef>) -> Self {
        let n = topo.len();
        let mut nodes = vec![
            NodeState {
                my_exits: Vec::new(),
                possible: BTreeMap::new(),
                best: None,
                advertised: Vec::new(),
            };
            n
        ];
        for p in exits {
            assert!(p.exit_point().index() < n, "exit point out of range");
            nodes[p.exit_point().index()].my_exits.push(p);
        }
        for node in &mut nodes {
            node.my_exits.sort_by_key(|p| p.id());
            for p in &node.my_exits {
                node.possible.insert(
                    p.id(),
                    Held {
                        path: p.clone(),
                        provenance: Provenance::Own,
                        learned_from: p.next_hop().bgp_id(),
                    },
                );
            }
        }
        Self {
            topo,
            mode,
            policy: SelectionPolicy::PAPER,
            nodes,
            time: 0,
        }
    }

    /// Best exit at a router.
    pub fn best_exit(&self, u: RouterId) -> Option<ExitPathId> {
        self.nodes[u.index()].best
    }

    /// All best exits.
    pub fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        self.nodes.iter().map(|s| s.best).collect()
    }

    /// Steps applied.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// May `v` offer this held route to `u`?
    fn may_offer(&self, v: RouterId, u: RouterId, held: &Held) -> bool {
        let Some(kind) = self.topo.session(v, u) else {
            return false;
        };
        if held.path.exit_point() == u {
            return false; // never back to the origin
        }
        match held.provenance {
            Provenance::Own | Provenance::FromClient => true,
            Provenance::FromNonClient => kind == SessionKind::Down,
        }
    }

    fn compute_update(&self, u: RouterId) -> NodeState {
        let cur = &self.nodes[u.index()];
        let mut gathered: BTreeMap<ExitPathId, Held> = BTreeMap::new();
        for p in &cur.my_exits {
            gathered.insert(
                p.id(),
                Held {
                    path: p.clone(),
                    provenance: Provenance::Own,
                    learned_from: p.next_hop().bgp_id(),
                },
            );
        }
        for (v, kind_from_u) in self.topo.peers(u) {
            let sender = self.topo.bgp_id(v);
            let incoming_provenance = if kind_from_u == SessionKind::Down {
                Provenance::FromClient
            } else {
                Provenance::FromNonClient
            };
            for held in &self.nodes[v.index()].advertised {
                if !self.may_offer(v, u, held) {
                    continue;
                }
                let candidate = Held {
                    path: held.path.clone(),
                    provenance: incoming_provenance,
                    learned_from: sender,
                };
                gathered
                    .entry(candidate.path.id())
                    .and_modify(|prev| {
                        // Prefer Own, then client-learned, then the lowest
                        // announcing identifier — deterministic and
                        // never-worse for rule 6.
                        if (candidate.provenance, candidate.learned_from)
                            < (prev.provenance, prev.learned_from)
                        {
                            *prev = candidate.clone();
                        }
                    })
                    .or_insert(candidate);
            }
        }

        // Selection via the shared decision process.
        let routes: Vec<Route> = gathered
            .values()
            .map(|h| {
                Route::new(
                    h.path.clone(),
                    u,
                    self.topo.igp_cost(u, h.path.exit_point()),
                    h.learned_from,
                )
            })
            .collect();
        let best = choose_best(self.policy, &routes).map(|r| r.exit_id());

        let advertised: Vec<Held> = match self.mode {
            HierMode::SingleBest => best
                .map(|id| vec![gathered[&id].clone()])
                .unwrap_or_default(),
            HierMode::SetAdvertisement => {
                let paths: Vec<ExitPathRef> = gathered.values().map(|h| h.path.clone()).collect();
                choose_set(&paths, self.policy.med_mode)
                    .iter()
                    .map(|p| gathered[&p.id()].clone())
                    .collect()
            }
        };

        NodeState {
            my_exits: cur.my_exits.clone(),
            possible: gathered,
            best,
            advertised,
        }
    }

    /// Recompute every router's state from the current (pre-step) global
    /// state — one full synchronous sweep, indexed by router.
    pub(crate) fn update_all(&self) -> Vec<NodeState> {
        self.topo
            .routers()
            .map(|u| self.compute_update(u))
            .collect()
    }

    /// Whether a full sweep's worth of updates changes nothing — i.e. the
    /// current configuration is a fixed point.
    pub(crate) fn is_fixed_point(&self, updates: &[NodeState]) -> bool {
        updates
            .iter()
            .zip(&self.nodes)
            .all(|(new, cur)| new.key() == cur.key())
    }

    /// Install the precomputed updates for the routers in `set` (one
    /// activation step whose sweep was already computed).
    pub(crate) fn apply(&mut self, set: &[RouterId], updates: &[NodeState]) {
        for &u in set {
            self.nodes[u.index()] = updates[u.index()].clone();
        }
        self.time += 1;
    }

    /// One activation step (members read the pre-step state). Returns
    /// whether the pre-step configuration was already a fixed point.
    pub fn step(&mut self, set: &[RouterId]) -> bool {
        let updates = self.update_all();
        let stable = self.is_fixed_point(&updates);
        self.apply(set, &updates);
        stable
    }

    /// Fixed-point check.
    pub fn is_stable(&self) -> bool {
        self.topo
            .routers()
            .all(|u| self.compute_update(u).key() == self.nodes[u.index()].key())
    }

    /// State key for search/cycle detection.
    pub fn state_key(&self, phase: u64) -> (Vec<NodeKey>, u64) {
        (self.nodes.iter().map(NodeState::key).collect(), phase)
    }

    /// Round-robin run until verdict.
    pub fn run_round_robin(&mut self, max_steps: u64) -> SyncOutcome {
        Engine::run(self, &mut RoundRobin::new(), max_steps)
    }
}

impl Engine for HierEngine<'_> {
    type Key = (Vec<NodeKey>, u64);

    fn router_count(&self) -> usize {
        self.topo.len()
    }

    fn step(&mut self, set: &[RouterId]) -> bool {
        HierEngine::step(self, set)
    }

    fn is_stable(&self) -> bool {
        HierEngine::is_stable(self)
    }

    fn state_key(&self, phase: u64) -> Self::Key {
        HierEngine::state_key(self, phase)
    }

    fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        HierEngine::best_vector(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClusterSpec, Member};
    use ibgp_topology::PhysicalGraph;
    use ibgp_types::{AsId, ExitPath, IgpCost, Med};
    use std::sync::Arc;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn exit(id: u32, next_as: u32, med: u32, at: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(r(at))
                .build_unchecked(),
        )
    }

    fn chain(n: usize) -> PhysicalGraph {
        let mut g = PhysicalGraph::new(n);
        for i in 1..n {
            g.add_link(r(i as u32 - 1), r(i as u32), IgpCost::new(1))
                .unwrap();
        }
        g
    }

    /// Three levels: 0 (top) -> 1 (mid reflector) -> 2 (leaf). Exit at
    /// the leaf must climb two levels and also descend to 3.
    #[test]
    fn routes_propagate_up_and_down_the_tree() {
        let spec = ClusterSpec {
            reflectors: vec![0],
            members: vec![
                Member::Cluster(ClusterSpec::flat(1, [2])),
                Member::Router(3),
            ],
        };
        let topo = crate::topology::HierTopology::new(chain(4), vec![spec]).unwrap();
        let mut eng = HierEngine::new(&topo, HierMode::SingleBest, vec![exit(1, 1, 0, 2)]);
        let out = eng.run_round_robin(200);
        assert!(out.converged(), "{out}");
        for u in 0..4 {
            assert_eq!(eng.best_exit(r(u)), Some(ExitPathId::new(1)), "router {u}");
        }
    }

    #[test]
    fn nonclient_routes_do_not_climb() {
        // Exit at leaf 3 (a direct client of the top reflector 0): the
        // mid reflector 1 learns it from ABOVE (non-client) and must not
        // offer it back up, only down to 2.
        let spec = ClusterSpec {
            reflectors: vec![0],
            members: vec![
                Member::Cluster(ClusterSpec::flat(1, [2])),
                Member::Router(3),
            ],
        };
        let topo = crate::topology::HierTopology::new(chain(4), vec![spec]).unwrap();
        let mut eng = HierEngine::new(&topo, HierMode::SingleBest, vec![exit(1, 1, 0, 3)]);
        let out = eng.run_round_robin(200);
        assert!(out.converged(), "{out}");
        assert_eq!(
            eng.best_exit(r(2)),
            Some(ExitPathId::new(1)),
            "reaches the leaf"
        );
        // Structural check of the offer rule itself.
        let held = Held {
            path: exit(9, 1, 0, 3),
            provenance: Provenance::FromNonClient,
            learned_from: ibgp_types::BgpId::new(0),
        };
        assert!(
            !eng.may_offer(r(1), r(0), &held),
            "non-client routes stay down"
        );
        assert!(eng.may_offer(r(1), r(2), &held));
    }

    #[test]
    fn never_offered_back_to_the_exit_point() {
        let spec = ClusterSpec::flat(0, [1]);
        let topo = crate::topology::HierTopology::new(chain(2), vec![spec]).unwrap();
        let eng = HierEngine::new(&topo, HierMode::SingleBest, vec![exit(1, 1, 0, 1)]);
        let held = Held {
            path: exit(1, 1, 0, 1),
            provenance: Provenance::FromClient,
            learned_from: ibgp_types::BgpId::new(1),
        };
        assert!(!eng.may_offer(r(0), r(1), &held));
    }

    /// Cross-model check: on a two-level hierarchy the general engine
    /// agrees with the paper-model two-level semantics on reachability of
    /// routes (client exits visible everywhere, reflector-to-reflector
    /// only for client-originated paths).
    #[test]
    fn two_level_behaviour_matches_the_paper_model() {
        // Two flat clusters {0;1} and {2;3}, exit at client 1.
        let topo = crate::topology::HierTopology::new(
            chain(4),
            vec![ClusterSpec::flat(0, [1]), ClusterSpec::flat(2, [3])],
        )
        .unwrap();
        let mut eng = HierEngine::new(&topo, HierMode::SingleBest, vec![exit(1, 1, 0, 1)]);
        assert!(eng.run_round_robin(200).converged());
        // The client exit crossed the top mesh and descended to client 3.
        assert_eq!(eng.best_exit(r(3)), Some(ExitPathId::new(1)));
    }
}
