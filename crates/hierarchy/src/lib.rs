//! # ibgp-hierarchy
//!
//! Arbitrarily deep route-reflection hierarchies. §2 of the paper notes
//! that "each cluster itself can be partitioned into subclusters and so
//! on creating an arbitrarily deep hierarchy" before specializing its
//! model to two levels; this crate builds the general case:
//!
//! * [`topology`] — a cluster *tree*: top-level reflectors form a full
//!   mesh of ordinary I-BGP `Peer` sessions; each cluster's reflectors
//!   hold `Down` sessions to their clients, and a client may itself be a
//!   reflector of a deeper cluster.
//! * [`engine`] — a synchronous pull engine with the general
//!   (RFC 4456-style, provenance-based) reflection rule, which the
//!   paper's exit-point-based `Transfer` relation specializes to at two
//!   levels: routes learned from **clients** (or via E-BGP) are
//!   re-advertised to *all* sessions; routes learned from **non-clients**
//!   are re-advertised only *down*, to clients. A route is never offered
//!   to its own exit point.
//! * [`search`] — exhaustive reachability, as in `ibgp-analysis`.
//! * [`scenarios`] — the Fig 1(a) oscillator pushed one level deeper
//!   (the oscillating client hangs under a second-level reflector):
//!   persistent under single-best advertisement at every depth, fixed by
//!   the `Choose_set` discipline at every depth.
//!
//! The crate's tests include a cross-model check: on two-level
//! hierarchies, this general engine and the paper-model engine of
//! `ibgp-sim` compute the same fixed points for the modified protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod random;
pub mod scenarios;
pub mod search;
pub mod topology;

pub use engine::{HierEngine, HierMode};
pub use ibgp_sim::{Engine, SyncOutcome};
pub use random::{random_hierarchy, RandomHierConfig};
pub use search::{explore_hier, HierReachability};
pub use topology::{ClusterSpec, HierTopology, Member, SessionKind};
