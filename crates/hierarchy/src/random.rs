//! Seeded random hierarchies, for property-testing the extension
//! question: does the `Choose_set` discipline converge on *arbitrary*
//! cluster trees, not just the paper's two levels?

use crate::topology::{ClusterSpec, HierTopology, Member};
use ibgp_topology::PhysicalGraph;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomHierConfig {
    /// Total routers to distribute (≥ 1).
    pub routers: usize,
    /// Maximum nesting depth (≥ 1).
    pub max_depth: usize,
    /// Number of injected exit paths.
    pub exits: usize,
    /// Number of neighboring ASes.
    pub neighbor_ases: usize,
    /// Maximum MED (inclusive).
    pub max_med: u32,
    /// Maximum IGP link cost (inclusive).
    pub max_cost: u64,
}

impl Default for RandomHierConfig {
    fn default() -> Self {
        Self {
            routers: 9,
            max_depth: 3,
            exits: 4,
            neighbor_ases: 2,
            max_med: 10,
            max_cost: 10,
        }
    }
}

/// Generate a random hierarchy and exit set. Deterministic per seed.
pub fn random_hierarchy(cfg: RandomHierConfig, seed: u64) -> (HierTopology, Vec<ExitPathRef>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.routers.max(1);

    // Assign routers to a random cluster tree: consume ids 0..n.
    let mut next_id = 0u32;
    fn build(
        rng: &mut StdRng,
        next_id: &mut u32,
        remaining: &mut usize,
        depth_left: usize,
    ) -> ClusterSpec {
        // One reflector.
        let reflector = *next_id;
        *next_id += 1;
        *remaining -= 1;
        let mut members = Vec::new();
        while *remaining > 0 && rng.gen_bool(0.55) {
            if depth_left > 1 && *remaining >= 2 && rng.gen_bool(0.35) {
                members.push(Member::Cluster(build(
                    rng,
                    next_id,
                    remaining,
                    depth_left - 1,
                )));
            } else {
                let c = *next_id;
                *next_id += 1;
                *remaining -= 1;
                members.push(Member::Router(c));
            }
        }
        ClusterSpec {
            reflectors: vec![reflector],
            members,
        }
    }

    let mut remaining = n;
    let mut top = Vec::new();
    while remaining > 0 {
        top.push(build(&mut rng, &mut next_id, &mut remaining, cfg.max_depth));
    }

    // Physical: random connected tree + a few chords.
    let mut g = PhysicalGraph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i) as u32;
        g.add_link(
            RouterId::new(parent),
            RouterId::new(i as u32),
            IgpCost::new(rng.gen_range(1..=cfg.max_cost)),
        )
        .unwrap();
    }
    for _ in 0..n / 2 {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let _ = g.add_link(
                RouterId::new(u),
                RouterId::new(v),
                IgpCost::new(rng.gen_range(1..=cfg.max_cost)),
            );
        }
    }

    let topo = HierTopology::new(g, top).expect("random hierarchy is valid");
    let exits = (0..cfg.exits)
        .map(|i| {
            Arc::new(
                ExitPath::builder(ExitPathId::new(i as u32 + 1))
                    .via(AsId::new(1 + rng.gen_range(0..cfg.neighbor_ases as u32)))
                    .med(Med::new(rng.gen_range(0..=cfg.max_med)))
                    .exit_point(RouterId::new(rng.gen_range(0..n as u32)))
                    .build_unchecked(),
            ) as ExitPathRef
        })
        .collect();
    (topo, exits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HierEngine, HierMode};

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..30 {
            let (a, ea) = random_hierarchy(RandomHierConfig::default(), seed);
            let (b, eb) = random_hierarchy(RandomHierConfig::default(), seed);
            assert_eq!(a.len(), b.len());
            assert_eq!(ea, eb);
            assert_eq!(a.len(), 9);
            assert!(a.depth() >= 1);
        }
    }

    /// The extension conjecture, smoke-tested: `Choose_set` advertisement
    /// converges on random cluster trees of depth up to 3. (The full
    /// property test lives in the workspace test suite.)
    #[test]
    fn set_advertisement_converges_on_random_hierarchies() {
        for seed in 0..25 {
            let (topo, exits) = random_hierarchy(RandomHierConfig::default(), seed);
            let mut eng = HierEngine::new(&topo, HierMode::SetAdvertisement, exits);
            let out = eng.run_round_robin(200_000);
            assert!(
                out.converged(),
                "seed {seed}: {out} (depth {})",
                topo.depth()
            );
        }
    }
}
