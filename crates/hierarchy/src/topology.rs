//! Cluster-tree topologies.
//!
//! A hierarchy is described by a forest of [`ClusterSpec`]s: the
//! top-level clusters' reflectors are mutually fully meshed (`Peer`
//! sessions); within a cluster every reflector has a `Down` session to
//! every member, where a member is either a plain client router or a
//! nested cluster (in which case the sessions go to the nested cluster's
//! reflectors, which thereby act as clients one level up). Reflectors of
//! the same cluster peer with each other.

use ibgp_topology::{PhysicalGraph, SpfTable, TopologyError};
use ibgp_types::{BgpId, IgpCost, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of a *directed* session, from the holder's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionKind {
    /// The remote router is this router's client (this side reflects).
    Down,
    /// The remote router is this router's reflector (this side is the
    /// client).
    Up,
    /// Ordinary I-BGP peer (same-cluster reflectors, top-level mesh).
    Peer,
}

impl SessionKind {
    /// The same session from the other side.
    pub fn flipped(self) -> SessionKind {
        match self {
            SessionKind::Down => SessionKind::Up,
            SessionKind::Up => SessionKind::Down,
            SessionKind::Peer => SessionKind::Peer,
        }
    }
}

impl fmt::Display for SessionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionKind::Down => "down",
            SessionKind::Up => "up",
            SessionKind::Peer => "peer",
        };
        f.write_str(s)
    }
}

/// A member of a cluster: a plain client router or a nested cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Member {
    /// A leaf client.
    Router(u32),
    /// A nested cluster whose reflectors are this cluster's clients.
    Cluster(ClusterSpec),
}

/// One cluster: reflectors plus members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Reflector router ids (non-empty).
    pub reflectors: Vec<u32>,
    /// Members (clients or nested clusters).
    pub members: Vec<Member>,
}

impl ClusterSpec {
    /// A flat cluster of one reflector with leaf clients.
    pub fn flat(reflector: u32, clients: impl IntoIterator<Item = u32>) -> Self {
        Self {
            reflectors: vec![reflector],
            members: clients.into_iter().map(Member::Router).collect(),
        }
    }
}

/// A validated hierarchical topology.
#[derive(Debug, Clone)]
pub struct HierTopology {
    physical: PhysicalGraph,
    spf: SpfTable,
    /// Directed session kinds: `(u, v) -> kind of v from u's view`.
    sessions: BTreeMap<(RouterId, RouterId), SessionKind>,
    bgp_ids: Vec<BgpId>,
    depth: usize,
}

impl HierTopology {
    /// Build from a physical graph and top-level cluster specs.
    pub fn new(physical: PhysicalGraph, top: Vec<ClusterSpec>) -> Result<Self, TopologyError> {
        let n = physical.len();
        if !physical.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        let mut sessions: BTreeMap<(RouterId, RouterId), SessionKind> = BTreeMap::new();
        let mut assigned = vec![false; n];
        let mut depth = 1;

        let add = |sessions: &mut BTreeMap<(RouterId, RouterId), SessionKind>,
                   u: u32,
                   v: u32,
                   kind: SessionKind|
         -> Result<(), TopologyError> {
            if u as usize >= n {
                return Err(TopologyError::NodeOutOfRange {
                    node: RouterId::new(u),
                    len: n,
                });
            }
            if v as usize >= n {
                return Err(TopologyError::NodeOutOfRange {
                    node: RouterId::new(v),
                    len: n,
                });
            }
            if u == v {
                return Err(TopologyError::SelfLoop(RouterId::new(u)));
            }
            sessions.insert((RouterId::new(u), RouterId::new(v)), kind);
            sessions.insert((RouterId::new(v), RouterId::new(u)), kind.flipped());
            Ok(())
        };

        // Recursive walk. Returns the cluster's reflector list.
        fn walk(
            spec: &ClusterSpec,
            level: usize,
            n: usize,
            assigned: &mut [bool],
            depth: &mut usize,
            add: &mut dyn FnMut(u32, u32, SessionKind) -> Result<(), TopologyError>,
        ) -> Result<Vec<u32>, TopologyError> {
            *depth = (*depth).max(level);
            if spec.reflectors.is_empty() {
                return Err(TopologyError::ClusterWithoutReflector(
                    ibgp_types::ClusterId::new(0),
                ));
            }
            for &r in &spec.reflectors {
                if r as usize >= n {
                    return Err(TopologyError::NodeOutOfRange {
                        node: RouterId::new(r),
                        len: n,
                    });
                }
                if assigned[r as usize] {
                    return Err(TopologyError::NodeInMultipleClusters(RouterId::new(r)));
                }
                assigned[r as usize] = true;
            }
            // Reflectors of one cluster peer with each other.
            for (i, &a) in spec.reflectors.iter().enumerate() {
                for &b in &spec.reflectors[i + 1..] {
                    add(a, b, SessionKind::Peer)?;
                }
            }
            for member in &spec.members {
                let heads: Vec<u32> = match member {
                    Member::Router(c) => {
                        if *c as usize >= n {
                            return Err(TopologyError::NodeOutOfRange {
                                node: RouterId::new(*c),
                                len: n,
                            });
                        }
                        if assigned[*c as usize] {
                            return Err(TopologyError::NodeInMultipleClusters(RouterId::new(*c)));
                        }
                        assigned[*c as usize] = true;
                        vec![*c]
                    }
                    Member::Cluster(sub) => walk(sub, level + 1, n, assigned, depth, add)?,
                };
                for &r in &spec.reflectors {
                    for &h in &heads {
                        add(r, h, SessionKind::Down)?;
                    }
                }
            }
            Ok(spec.reflectors.clone())
        }

        let mut add_fn = |u: u32, v: u32, k: SessionKind| add(&mut sessions, u, v, k);
        let mut top_reflectors: Vec<u32> = Vec::new();
        for spec in &top {
            let rs = walk(spec, 1, n, &mut assigned, &mut depth, &mut add_fn)?;
            top_reflectors.extend(rs);
        }
        // Top-level mesh across clusters.
        for (i, &a) in top_reflectors.iter().enumerate() {
            for &b in &top_reflectors[i + 1..] {
                let key = (RouterId::new(a), RouterId::new(b));
                if !sessions.contains_key(&key) {
                    add(&mut sessions, a, b, SessionKind::Peer)?;
                }
            }
        }
        // Every router must appear somewhere.
        for (i, ok) in assigned.iter().enumerate() {
            if !ok {
                return Err(TopologyError::NodeUnclustered(RouterId::new(i as u32)));
            }
        }

        let spf = SpfTable::compute(&physical);
        let bgp_ids = (0..n as u32).map(BgpId::new).collect();
        Ok(Self {
            physical,
            spf,
            sessions,
            bgp_ids,
            depth,
        })
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.physical.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.physical.is_empty()
    }

    /// Maximum nesting depth of the cluster tree.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// All routers.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.len() as u32).map(RouterId::new)
    }

    /// Kind of the session from `u` to `v`, if one exists.
    pub fn session(&self, u: RouterId, v: RouterId) -> Option<SessionKind> {
        self.sessions.get(&(u, v)).copied()
    }

    /// The peers of `u`, with the session kind from `u`'s view.
    pub fn peers(&self, u: RouterId) -> Vec<(RouterId, SessionKind)> {
        self.sessions
            .range((u, RouterId::new(0))..=(u, RouterId::new(u32::MAX)))
            .map(|(&(_, v), &k)| (v, k))
            .collect()
    }

    /// IGP distance.
    pub fn igp_cost(&self, u: RouterId, v: RouterId) -> IgpCost {
        self.spf.cost(u, v)
    }

    /// BGP identifier.
    pub fn bgp_id(&self, u: RouterId) -> BgpId {
        self.bgp_ids[u.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn c(v: u64) -> IgpCost {
        IgpCost::new(v)
    }

    fn chain_physical(n: usize) -> PhysicalGraph {
        let mut g = PhysicalGraph::new(n);
        for i in 1..n {
            g.add_link(r(i as u32 - 1), r(i as u32), c(1)).unwrap();
        }
        g
    }

    /// Three levels: top reflector 0; mid cluster {1; leaf 2}; leaf 3.
    fn three_level() -> HierTopology {
        let spec = ClusterSpec {
            reflectors: vec![0],
            members: vec![
                Member::Cluster(ClusterSpec::flat(1, [2])),
                Member::Router(3),
            ],
        };
        HierTopology::new(chain_physical(4), vec![spec]).unwrap()
    }

    #[test]
    fn three_level_sessions() {
        let t = three_level();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.session(r(0), r(1)), Some(SessionKind::Down));
        assert_eq!(t.session(r(1), r(0)), Some(SessionKind::Up));
        assert_eq!(t.session(r(1), r(2)), Some(SessionKind::Down));
        assert_eq!(t.session(r(0), r(3)), Some(SessionKind::Down));
        // No session skips a level.
        assert_eq!(t.session(r(0), r(2)), None);
        assert_eq!(t.session(r(2), r(3)), None);
    }

    #[test]
    fn top_level_mesh_across_clusters() {
        let top = vec![ClusterSpec::flat(0, [1]), ClusterSpec::flat(2, [3])];
        let t = HierTopology::new(chain_physical(4), top).unwrap();
        assert_eq!(t.session(r(0), r(2)), Some(SessionKind::Peer));
        assert_eq!(t.session(r(1), r(3)), None);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn multi_reflector_cluster_peers_internally() {
        let top = vec![ClusterSpec {
            reflectors: vec![0, 1],
            members: vec![Member::Router(2)],
        }];
        let t = HierTopology::new(chain_physical(3), top).unwrap();
        assert_eq!(t.session(r(0), r(1)), Some(SessionKind::Peer));
        assert_eq!(t.session(r(0), r(2)), Some(SessionKind::Down));
        assert_eq!(t.session(r(1), r(2)), Some(SessionKind::Down));
    }

    #[test]
    fn validation_errors() {
        // Unassigned router.
        let err = HierTopology::new(chain_physical(2), vec![ClusterSpec::flat(0, [])]).unwrap_err();
        assert_eq!(err, TopologyError::NodeUnclustered(r(1)));
        // Double assignment.
        let err = HierTopology::new(
            chain_physical(2),
            vec![ClusterSpec::flat(0, [1]), ClusterSpec::flat(1, [])],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::NodeInMultipleClusters(r(1)));
        // Out of range.
        let err =
            HierTopology::new(chain_physical(2), vec![ClusterSpec::flat(0, [5])]).unwrap_err();
        assert!(matches!(err, TopologyError::NodeOutOfRange { .. }));
    }

    #[test]
    fn peers_lists_kinds() {
        let t = three_level();
        let peers = t.peers(r(1));
        assert_eq!(
            peers,
            vec![(r(0), SessionKind::Up), (r(2), SessionKind::Down)]
        );
    }
}
