//! Multi-level oscillation scenarios.
//!
//! [`deep_fig1a`] pushes the paper's Fig 1(a) one level down: reflector
//! `B`'s client `cb1` now hangs under a *second-level* reflector `B2`
//! (`B → B2 → cb1`). The MED-hiding cycle is untouched — `B2` dutifully
//! relays `r3` up to `B` (client-originated routes climb), but `B`
//! re-advertises it to reflector `A` only while `r3` is `B`'s own best;
//! as soon as `B` adopts `r1` (learned from the peer `A`, hence
//! non-client, hence it can only flow *down*), `A` loses `r3`, unhides
//! `r2`, and the cycle turns. Persistent oscillation survives arbitrary
//! nesting depth; the `Choose_set` discipline fixes it at every depth,
//! because `B`'s advertised *set* always contains the client-originated
//! `r3`.

use crate::topology::{ClusterSpec, HierTopology, Member};
use ibgp_topology::PhysicalGraph;
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use std::sync::Arc;

/// Router indices.
pub mod nodes {
    use ibgp_types::RouterId;
    /// Top-level reflector A.
    pub const A: RouterId = RouterId(0);
    /// A's client holding `r1`.
    pub const CA1: RouterId = RouterId(1);
    /// A's client holding `r2`.
    pub const CA2: RouterId = RouterId(2);
    /// Top-level reflector B.
    pub const B: RouterId = RouterId(3);
    /// Second-level reflector under B.
    pub const B2: RouterId = RouterId(4);
    /// The deep client holding `r3`.
    pub const CB1: RouterId = RouterId(5);
}

/// Exit-path ids.
pub mod routes {
    use ibgp_types::ExitPathId;
    /// `r1` via AS1, MED 0, at `ca1`.
    pub const R1: ExitPathId = ExitPathId(1);
    /// `r2` via AS2, MED 10, at `ca2`.
    pub const R2: ExitPathId = ExitPathId(2);
    /// `r3` via AS2, MED 5, at `cb1` (two levels below B).
    pub const R3: ExitPathId = ExitPathId(3);
}

/// Build the three-level Fig 1(a).
pub fn deep_fig1a() -> (HierTopology, Vec<ExitPathRef>) {
    let mut g = PhysicalGraph::new(6);
    g.add_link(nodes::A, nodes::CA1, IgpCost::new(2)).unwrap();
    g.add_link(nodes::A, nodes::CA2, IgpCost::new(1)).unwrap();
    g.add_link(nodes::A, nodes::B, IgpCost::new(1)).unwrap();
    g.add_link(nodes::B, nodes::B2, IgpCost::new(5)).unwrap();
    g.add_link(nodes::B2, nodes::CB1, IgpCost::new(5)).unwrap();
    let top = vec![
        ClusterSpec {
            reflectors: vec![nodes::A.raw()],
            members: vec![
                Member::Router(nodes::CA1.raw()),
                Member::Router(nodes::CA2.raw()),
            ],
        },
        ClusterSpec {
            reflectors: vec![nodes::B.raw()],
            members: vec![Member::Cluster(ClusterSpec::flat(
                nodes::B2.raw(),
                [nodes::CB1.raw()],
            ))],
        },
    ];
    let topo = HierTopology::new(g, top).expect("deep_fig1a topology is valid");
    let mk = |id: ExitPathId, at: RouterId, next_as: u32, med: u32| -> ExitPathRef {
        Arc::new(
            ExitPath::builder(id)
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(at)
                .build_unchecked(),
        )
    };
    let exits = vec![
        mk(routes::R1, nodes::CA1, 1, 0),
        mk(routes::R2, nodes::CA2, 2, 10),
        mk(routes::R3, nodes::CB1, 2, 5),
    ];
    (topo, exits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HierEngine, HierMode};
    use crate::search::explore_hier;

    #[test]
    fn the_hierarchy_is_three_levels_deep() {
        let (topo, _) = deep_fig1a();
        assert_eq!(topo.depth(), 2, "two nested cluster levels + leaves");
        // Session structure: A-B peers; B down to B2; B2 down to cb1.
        use crate::topology::SessionKind;
        assert_eq!(topo.session(nodes::A, nodes::B), Some(SessionKind::Peer));
        assert_eq!(topo.session(nodes::B, nodes::B2), Some(SessionKind::Down));
        assert_eq!(topo.session(nodes::B2, nodes::CB1), Some(SessionKind::Down));
        assert_eq!(topo.session(nodes::B, nodes::CB1), None);
    }

    #[test]
    fn geometry_matches_fig1a() {
        let (topo, _) = deep_fig1a();
        let d = |u, v| topo.igp_cost(u, v).raw();
        assert!(d(nodes::A, nodes::CA2) < d(nodes::A, nodes::CA1));
        assert!(d(nodes::A, nodes::CA1) < d(nodes::A, nodes::CB1));
        assert!(d(nodes::B, nodes::CA1) < d(nodes::B, nodes::CB1));
    }

    #[test]
    fn single_best_oscillates_persistently_at_depth_three() {
        let (topo, exits) = deep_fig1a();
        let reach = explore_hier(&topo, HierMode::SingleBest, exits.clone(), 500_000);
        assert!(
            reach.complete,
            "search must finish ({} states)",
            reach.states
        );
        assert!(
            reach.persistent_oscillation(),
            "stable vectors: {:?}",
            reach.stable_vectors
        );
        let mut eng = HierEngine::new(&topo, HierMode::SingleBest, exits);
        let out = eng.run_round_robin(100_000);
        assert!(out.cycled(), "{out}");
    }

    #[test]
    fn set_advertisement_fixes_the_deep_oscillation() {
        let (topo, exits) = deep_fig1a();
        let reach = explore_hier(&topo, HierMode::SetAdvertisement, exits.clone(), 500_000);
        assert!(reach.complete);
        assert_eq!(reach.stable_vectors.len(), 1, "{:?}", reach.stable_vectors);
        let mut eng = HierEngine::new(&topo, HierMode::SetAdvertisement, exits);
        let out = eng.run_round_robin(100_000);
        assert!(out.converged(), "{out}");
        // Same fixed point shape as two-level Fig 1(a) under Modified.
        assert_eq!(eng.best_exit(nodes::A), Some(routes::R1));
        assert_eq!(eng.best_exit(nodes::B), Some(routes::R1));
        assert_eq!(eng.best_exit(nodes::CB1), Some(routes::R3));
        // The deep client's own exit survives at the deep level; ca2's r2
        // is MED-hidden, so it uses r1.
        assert_eq!(eng.best_exit(nodes::CA2), Some(routes::R1));
    }
}
