//! Exhaustive reachability for the hierarchy engine.

use crate::engine::{HierEngine, HierMode};
use crate::topology::HierTopology;
use ibgp_types::{ExitPathId, ExitPathRef, RouterId, SearchBudget, StopReason};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct HierReachability {
    /// Distinct configurations visited.
    pub states: usize,
    /// Whether the reachable space fit under the budget.
    pub complete: bool,
    /// Why the search ended. Always from the search itself — consumers
    /// must not infer a stop reason from `complete` alone.
    pub stop: StopReason,
    /// Distinct stable best-exit vectors.
    pub stable_vectors: Vec<Vec<Option<ExitPathId>>>,
}

impl HierReachability {
    /// Whether a stable configuration is reachable.
    pub fn can_converge(&self) -> bool {
        !self.stable_vectors.is_empty()
    }

    /// Whether persistent oscillation is proven.
    pub fn persistent_oscillation(&self) -> bool {
        self.complete && self.stable_vectors.is_empty()
    }

    /// The state cap that stopped the search, when one did.
    #[deprecated(note = "read the `stop` field (`StopReason`) instead")]
    pub fn cap(&self) -> Option<usize> {
        self.stop.state_cap()
    }
}

fn digest<T: Hash>(t: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Explore all configurations reachable under singleton + full-set
/// activations.
///
/// The budget honors `max_states` and `deadline` (checked between state
/// expansions, so an already-expired deadline stops deterministically at
/// the initial state); this search has no visited-set byte accounting,
/// so `max_bytes` is ignored and callers warn about the dropped flag.
/// A bare `usize` converts to a states-only budget.
pub fn explore_hier(
    topo: &HierTopology,
    mode: HierMode,
    exits: Vec<ExitPathRef>,
    budget: impl Into<SearchBudget>,
) -> HierReachability {
    let budget: SearchBudget = budget.into();
    let max_states = budget.max_states;
    let engine0 = HierEngine::new(topo, mode, exits);
    let n = topo.len();
    let mut branches: Vec<Vec<RouterId>> = (0..n as u32).map(|i| vec![RouterId::new(i)]).collect();
    branches.push((0..n as u32).map(RouterId::new).collect());

    let mut visited: HashMap<u64, Vec<Vec<_>>> = HashMap::new();
    let mut queue: VecDeque<HierEngine> = VecDeque::new();
    let mut stable_vectors = Vec::new();
    let mut states = 0usize;

    let mut try_visit = |eng: &HierEngine| -> bool {
        let (key, _) = eng.state_key(0);
        let d = digest(&key);
        let bucket = visited.entry(d).or_default();
        if bucket.contains(&key) {
            false
        } else {
            bucket.push(key);
            true
        }
    };

    if try_visit(&engine0) {
        states += 1;
        queue.push_back(engine0);
    }
    while let Some(eng) = queue.pop_front() {
        if budget.expired() {
            return HierReachability {
                states,
                complete: false,
                stop: StopReason::Deadline,
                stable_vectors,
            };
        }
        // One synchronous sweep serves both the stability test and every
        // branch: `step` on a clone would recompute the same n updates
        // per branch.
        let updates = eng.update_all();
        if eng.is_fixed_point(&updates) {
            let bv = eng.best_vector();
            if !stable_vectors.contains(&bv) {
                stable_vectors.push(bv);
            }
            continue;
        }
        for branch in &branches {
            let mut next = eng.clone();
            next.apply(branch, &updates);
            if try_visit(&next) {
                states += 1;
                if states > max_states {
                    return HierReachability {
                        states,
                        complete: false,
                        stop: StopReason::StateCap(max_states),
                        stable_vectors,
                    };
                }
                queue.push_back(next);
            }
        }
    }
    HierReachability {
        states,
        complete: true,
        stop: StopReason::Complete,
        stable_vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;
    use ibgp_topology::PhysicalGraph;
    use ibgp_types::{AsId, ExitPath, IgpCost, Med};
    use std::sync::Arc;

    #[test]
    fn trivial_hierarchy_converges() {
        let r = RouterId::new;
        let mut g = PhysicalGraph::new(2);
        g.add_link(r(0), r(1), IgpCost::new(1)).unwrap();
        let topo = crate::topology::HierTopology::new(g, vec![ClusterSpec::flat(0, [1])]).unwrap();
        let exit = Arc::new(
            ExitPath::builder(ExitPathId::new(1))
                .via(AsId::new(1))
                .med(Med::new(0))
                .exit_point(r(1))
                .build_unchecked(),
        );
        let reach = explore_hier(&topo, HierMode::SingleBest, vec![exit.clone()], 10_000);
        assert!(reach.complete);
        assert_eq!(
            reach.stop,
            StopReason::Complete,
            "complete searches report no budget stop"
        );
        assert_eq!(reach.stable_vectors.len(), 1);
        assert!(!reach.persistent_oscillation());
        #[allow(deprecated)]
        let shim = reach.cap();
        assert_eq!(shim, None, "the deprecated accessor keeps working");

        // An already-expired deadline stops before any expansion.
        let budget = SearchBudget::states(10_000).deadline(std::time::Instant::now());
        let reach = explore_hier(&topo, HierMode::SingleBest, vec![exit], budget);
        assert!(!reach.complete);
        assert_eq!(reach.stop, StopReason::Deadline);
        assert_eq!(reach.states, 1, "only the initial state was visited");
    }
}
