//! Property test: the memoized incremental engine is observationally
//! equivalent to the naive reference engine.
//!
//! Two `SyncEngine`s over the same random topology, exit set, and
//! protocol variant are driven in lockstep through a random activation
//! script (with an optional mid-run withdrawal to exercise the memo
//! flush). At every step the memoized engine must agree with the naive
//! one on the fixed-point verdict, the best-exit vector, stability, and
//! the message-accounting metrics.

use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::SyncEngine;
use ibgp_topology::{Topology, TopologyBuilder};
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, Med, RouterId};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a connected topology over `n` routers: a chain with the given
/// IGP costs plus deduplicated extra links, under one of three I-BGP
/// session shapes (full mesh, one cluster, or a two-cluster split).
fn build_topology(
    n: usize,
    shape: u8,
    chain_costs: &[u64],
    extra_links: &[(u32, u32, u64)],
) -> Topology {
    let mut b = TopologyBuilder::new(n);
    let mut seen: Vec<(u32, u32)> = Vec::new();
    for (i, &cost) in chain_costs.iter().take(n - 1).enumerate() {
        let (u, v) = (i as u32, i as u32 + 1);
        b = b.link(u, v, cost);
        seen.push((u, v));
    }
    for &(u, v, cost) in extra_links {
        let (u, v) = (u % n as u32, v % n as u32);
        let pair = (u.min(v), u.max(v));
        if u != v && !seen.contains(&pair) {
            seen.push(pair);
            b = b.link(pair.0, pair.1, cost);
        }
    }
    b = match shape {
        0 => b.full_mesh(),
        _ if shape == 2 && n >= 4 => {
            // Two clusters: even routers under reflector 0, odd under 1.
            let evens: Vec<u32> = (2..n as u32).step_by(2).collect();
            let odds: Vec<u32> = (3..n as u32).step_by(2).collect();
            b.cluster([0], evens).cluster([1], odds)
        }
        _ => b.cluster([0], 1..n as u32),
    };
    b.build().expect("generated topology must validate")
}

fn build_exits(n: usize, n_exits: usize, raw: &[(u32, u32, u32, u64)]) -> Vec<ExitPathRef> {
    raw.iter()
        .take(n_exits)
        .enumerate()
        .map(|(i, &(next_as, med, exit_point, exit_cost))| {
            Arc::new(
                ExitPath::builder(ExitPathId::new(i as u32 + 1))
                    .via(AsId::new(next_as))
                    .med(Med::new(med))
                    .exit_point(RouterId::new(exit_point % n as u32))
                    .exit_cost(IgpCost::new(exit_cost))
                    .build_unchecked(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn memoized_engine_is_equivalent_to_naive(
        n in 2usize..=5,
        shape in 0u8..3,
        chain_costs in prop::collection::vec(1u64..10, 4),
        extra_links in prop::collection::vec((0u32..5, 0u32..5, 1u64..10), 0..4),
        n_exits in 1usize..=4,
        exit_raw in prop::collection::vec((1u32..3, 0u32..11, 0u32..5, 0u64..6), 4),
        variant in 0u8..3,
        script in prop::collection::vec(0usize..6, 1..30),
        do_withdraw in any::<bool>(),
    ) {
        let topo = build_topology(n, shape, &chain_costs, &extra_links);
        let exits = build_exits(n, n_exits, &exit_raw);
        let config = [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ][variant as usize];

        let mut fast = SyncEngine::new(&topo, config, exits.clone());
        let mut slow = SyncEngine::new(&topo, config, exits);
        slow.set_memoized(false);

        let withdraw_at = script.len() / 2;
        for (i, &choice) in script.iter().enumerate() {
            if do_withdraw && i == withdraw_at {
                let a = fast.withdraw(ExitPathId::new(1));
                let b = slow.withdraw(ExitPathId::new(1));
                prop_assert_eq!(a, b, "withdraw verdicts diverge at step {}", i);
            }
            // Script entries below `n` activate that single router; the
            // rest activate the full set (the simultaneous-exchange case
            // that drives the paper's oscillations).
            let set: Vec<RouterId> = if choice < n {
                vec![RouterId::new(choice as u32)]
            } else {
                (0..n as u32).map(RouterId::new).collect()
            };
            let fixed_fast = fast.step(&set);
            let fixed_slow = slow.step(&set);
            prop_assert_eq!(
                fixed_fast, fixed_slow,
                "fixed-point verdicts diverge at step {}", i
            );
            prop_assert_eq!(fast.best_vector(), slow.best_vector());
            prop_assert_eq!(fast.is_stable(), slow.is_stable());
            prop_assert_eq!(fast.metrics().messages, slow.metrics().messages);
            prop_assert_eq!(
                fast.metrics().paths_advertised,
                slow.metrics().paths_advertised
            );
        }

        // Full per-router state, not just the best vector, must agree.
        for u in (0..n as u32).map(RouterId::new) {
            prop_assert_eq!(fast.possible_exits(u), slow.possible_exits(u));
            prop_assert_eq!(fast.advertised(u), slow.advertised(u));
        }
    }
}
