//! # ibgp-sim
//!
//! Two simulation engines for I-BGP with route reflection:
//!
//! * [`sync`] — the paper's operational model (§4): discrete time, fair
//!   activation sequences, and the pull semantics "whenever a router takes
//!   a step, it receives advertisements from each of its neighbors about
//!   their best routes [or advertised sets], then updates its own best
//!   route". Deterministic given an activation sequence; supports
//!   fixed-point (stability) checking and cycle detection. This engine is
//!   the ground truth for the paper's theorems.
//! * [`async_engine`] — an event-driven, message-level simulator with
//!   per-session FIFO delivery, controllable delays, E-BGP inject/withdraw
//!   churn, and router crash/restart. This is the engine that reproduces
//!   the *transient* oscillations of Fig 2/Fig 3 (Table 1), which depend
//!   on message timing that the synchronous model abstracts away.
//!
//! Both engines are deterministic: all randomness comes from seeded
//! generators supplied by the caller, so every experiment in this
//! repository replays bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod async_engine;
pub mod engine;
pub mod flat;
pub mod metrics;
pub mod multi;
pub mod signature;
pub mod sync;

pub use activation::{Activation, AllAtOnce, RandomFair, RandomSubsets, RoundRobin, Scripted};
pub use async_engine::{
    best_history, AdaptivePolicy, AsyncEvent, AsyncOutcome, AsyncSim, DelayModel, FixedDelay,
    FnDelay, SeededJitter, TraceEvent,
};
pub use engine::Engine;
pub use flat::{FlatKey, StateCodec};
pub use metrics::Metrics;
pub use multi::{aggregate, MultiPrefixSim, PrefixResult};
pub use sync::{StepPlan, SyncEngine, SyncOutcome, SyncSnapshot};
