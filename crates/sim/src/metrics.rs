//! Simple counters shared by both engines.
//!
//! The overhead experiments (E10/E11) read these: how many activations or
//! messages a run took, how many exit paths crossed sessions (the
//! advertisement-volume cost the paper's §10 discusses), and how often
//! best routes churned.

use serde::{Deserialize, Serialize};

/// Cumulative counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Sync engine: node-activations performed. Async engine: events
    /// processed.
    pub activations: u64,
    /// Update messages (non-identical advertised sets) sent between peers.
    pub messages: u64,
    /// Total exit paths carried in those messages — the advertisement
    /// volume that distinguishes standard (≤1 per message) from Walton
    /// (≤ m) and the modified protocol (≤ |S′|).
    pub paths_advertised: u64,
    /// Times some node's best route changed.
    pub best_changes: u64,
}

impl Metrics {
    /// Average paths per message, or 0.0 when no messages were sent.
    pub fn paths_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.paths_advertised as f64 / self.messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_per_message_handles_zero() {
        let m = Metrics::default();
        assert_eq!(m.paths_per_message(), 0.0);
        let m = Metrics {
            messages: 4,
            paths_advertised: 10,
            ..Metrics::default()
        };
        assert!((m.paths_per_message() - 2.5).abs() < 1e-12);
    }
}
