//! Simple counters shared by both engines.
//!
//! The overhead experiments (E10/E11) read these: how many activations or
//! messages a run took, how many exit paths crossed sessions (the
//! advertisement-volume cost the paper's §10 discusses), and how often
//! best routes churned. The incremental-engine fields report how well the
//! memoized update cache performed and, for reachability exploration, how
//! the search frontier behaved over time.

use serde::{Deserialize, Serialize};

/// Cumulative counters for one simulation run or exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Sync engine: node-activations performed. Async engine: events
    /// processed.
    pub activations: u64,
    /// Update messages (non-identical advertised sets) sent between peers.
    pub messages: u64,
    /// Total exit paths carried in those messages — the advertisement
    /// volume that distinguishes standard (≤1 per message) from Walton
    /// (≤ m) and the modified protocol (≤ |S′|).
    pub paths_advertised: u64,
    /// Times some node's best route changed.
    pub best_changes: u64,
    /// Memoized node-update cache hits (sync engine; 0 on the naive
    /// reference path).
    pub cache_hits: u64,
    /// Memoized node-update cache misses — each miss is one full update
    /// computation.
    pub cache_misses: u64,
    /// Reachability exploration: distinct configurations visited.
    pub states_visited: u64,
    /// Reachability exploration: wall-clock nanoseconds spent.
    pub elapsed_nanos: u64,
    /// Reachability exploration: deepest BFS frontier reached (activation
    /// steps from `config(0)`).
    pub frontier_depth: u64,
    /// Reachability exploration: peak BFS frontier length (states queued
    /// at one depth).
    pub peak_queue: u64,
    /// Parallel exploration: worker threads used (1 for the in-thread
    /// sequential path).
    pub workers: u64,
    /// Parallel exploration: work units handed off to the worker pool
    /// (0 for the in-thread sequential path).
    pub handoffs: u64,
    /// Parallel exploration: most state keys held by any one visited-set
    /// shard at the end of the search — a balance gauge for the sharded
    /// dedup structure.
    pub peak_shard: u64,
    /// Symmetry reduction: order of the instance's automorphism group
    /// (0 when symmetry reduction was not requested, 1 when the instance
    /// is asymmetric or the group enumeration overflowed its cap).
    pub group_order: u64,
    /// Symmetry reduction: total reachable states the visited orbit
    /// representatives stand for (sum of orbit sizes). Equals
    /// `states_visited` when the group is trivial; 0 when symmetry
    /// reduction was not requested.
    pub orbit_states: u64,
    /// Memory-bounded exploration: distinct state keys that hashed to an
    /// already-occupied 64-bit digest while the visited set still held
    /// exact keys. After digest compaction a collision is unobservable
    /// (it conflates two states), so this counts only the observable ones.
    pub digest_collisions: u64,
    /// Memory-bounded exploration: times the visited set was compacted
    /// from exact keys to digest-only hashes (0 or 1 per search).
    pub compactions: u64,
    /// Memory-bounded exploration: peak accounted byte footprint of the
    /// visited set (an estimate, not an allocator measurement).
    pub visited_bytes: u64,
    /// Partial-order reduction: frontier states expanded through the
    /// pruned compound ample branch (0 when POR was not requested).
    #[serde(default)]
    pub por_ample: u64,
    /// Partial-order reduction: frontier states that fell back to full
    /// branch expansion because no activation's invisibility could be
    /// proven (0 when POR was not requested).
    #[serde(default)]
    pub por_full: u64,
}

impl Metrics {
    /// Fold another engine's counters into this one. Engine-side counters
    /// (activations, messages, paths advertised, best changes, cache
    /// hits/misses) are summed — the merge is commutative and
    /// associative, so per-worker metrics can be combined in any arrival
    /// order. Search-side gauges (states visited, elapsed time, frontier
    /// depth, peak queue/shard, workers, handoffs) are owned by the
    /// search coordinator, not the workers, and are deliberately left
    /// untouched.
    pub fn absorb_engine(&mut self, other: &Metrics) {
        self.activations += other.activations;
        self.messages += other.messages;
        self.paths_advertised += other.paths_advertised;
        self.best_changes += other.best_changes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Fold the counters of one completed search into a campaign-level
    /// aggregate. Engine counters and cumulative search totals (states
    /// visited, wall-clock time, pool handoffs) are summed; the gauges
    /// (frontier depth, peak queue/shard, workers) keep the maximum seen
    /// across the campaign. Commutative and associative, so runs can be
    /// folded in any order.
    pub fn absorb_campaign(&mut self, other: &Metrics) {
        self.absorb_engine(other);
        self.states_visited += other.states_visited;
        self.elapsed_nanos += other.elapsed_nanos;
        self.handoffs += other.handoffs;
        self.orbit_states += other.orbit_states;
        self.digest_collisions += other.digest_collisions;
        self.compactions += other.compactions;
        self.por_ample += other.por_ample;
        self.por_full += other.por_full;
        self.frontier_depth = self.frontier_depth.max(other.frontier_depth);
        self.peak_queue = self.peak_queue.max(other.peak_queue);
        self.peak_shard = self.peak_shard.max(other.peak_shard);
        self.workers = self.workers.max(other.workers);
        self.group_order = self.group_order.max(other.group_order);
        self.visited_bytes = self.visited_bytes.max(other.visited_bytes);
    }

    /// Average paths per message, or 0.0 when no messages were sent.
    pub fn paths_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.paths_advertised as f64 / self.messages as f64
        }
    }

    /// Fraction of node-update computations answered from the memo, or
    /// 0.0 when no lookups happened (e.g. the naive reference path).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Distinct states visited per second of exploration wall-clock time,
    /// or 0.0 when no time was recorded.
    pub fn states_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.states_visited as f64 / (self.elapsed_nanos as f64 / 1e9)
        }
    }

    /// Symmetry reduction factor: reachable states per visited orbit
    /// representative (`orbit_states / states_visited`). 1.0 for an
    /// asymmetric instance, for a search without symmetry reduction, and
    /// for metrics that never ran a search.
    pub fn reduction_factor(&self) -> f64 {
        if self.states_visited == 0 || self.orbit_states == 0 {
            1.0
        } else {
            self.orbit_states as f64 / self.states_visited as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_per_message_handles_zero() {
        let m = Metrics::default();
        assert_eq!(m.paths_per_message(), 0.0);
        let m = Metrics {
            messages: 4,
            paths_advertised: 10,
            ..Metrics::default()
        };
        assert!((m.paths_per_message() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_rate_handles_zero_and_ratio() {
        assert_eq!(Metrics::default().cache_hit_rate(), 0.0);
        let m = Metrics {
            cache_hits: 3,
            cache_misses: 1,
            ..Metrics::default()
        };
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reduction_factor_handles_zero_and_ratio() {
        assert_eq!(Metrics::default().reduction_factor(), 1.0);
        let m = Metrics {
            states_visited: 100,
            orbit_states: 0,
            ..Metrics::default()
        };
        assert_eq!(m.reduction_factor(), 1.0);
        let m = Metrics {
            states_visited: 100,
            orbit_states: 300,
            ..Metrics::default()
        };
        assert!((m.reduction_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn campaign_absorb_sums_totals_and_maxes_gauges() {
        let mut a = Metrics {
            states_visited: 10,
            orbit_states: 30,
            group_order: 3,
            digest_collisions: 1,
            compactions: 1,
            visited_bytes: 500,
            ..Metrics::default()
        };
        let b = Metrics {
            states_visited: 5,
            orbit_states: 5,
            group_order: 1,
            digest_collisions: 0,
            compactions: 0,
            visited_bytes: 900,
            ..Metrics::default()
        };
        a.absorb_campaign(&b);
        assert_eq!(a.states_visited, 15);
        assert_eq!(a.orbit_states, 35);
        assert_eq!(a.digest_collisions, 1);
        assert_eq!(a.compactions, 1);
        assert_eq!(a.group_order, 3);
        assert_eq!(a.visited_bytes, 900);
    }

    /// Regression guard for the parallel explorer's rate accounting:
    /// folding per-worker engine counters must never sum worker-side
    /// `elapsed_nanos` (or any other coordinator-owned search gauge)
    /// into the aggregate — `states_per_sec()` is defined off the
    /// coordinator's wall clock alone, and a summed-worker-time elapsed
    /// would deflate it by the worker count.
    #[test]
    fn engine_absorb_never_sums_worker_wall_clock() {
        let mut coordinator = Metrics {
            states_visited: 1_000,
            elapsed_nanos: 500_000_000, // 0.5 s of coordinator wall clock
            workers: 8,
            handoffs: 42,
            frontier_depth: 9,
            peak_queue: 11,
            peak_shard: 13,
            ..Metrics::default()
        };
        let rate_before = coordinator.states_per_sec();
        for _ in 0..8 {
            let worker = Metrics {
                activations: 10,
                cache_hits: 5,
                cache_misses: 2,
                // A buggy merge would sum these into the aggregate.
                elapsed_nanos: 500_000_000,
                states_visited: 999,
                workers: 1,
                handoffs: 7,
                frontier_depth: 50,
                peak_queue: 50,
                peak_shard: 50,
                ..Metrics::default()
            };
            coordinator.absorb_engine(&worker);
        }
        assert_eq!(coordinator.elapsed_nanos, 500_000_000);
        assert_eq!(coordinator.states_visited, 1_000);
        assert_eq!(coordinator.workers, 8);
        assert_eq!(coordinator.handoffs, 42);
        assert_eq!(coordinator.frontier_depth, 9);
        assert_eq!(coordinator.peak_queue, 11);
        assert_eq!(coordinator.peak_shard, 13);
        assert_eq!(coordinator.activations, 80, "engine counters do sum");
        assert_eq!(coordinator.cache_hits, 40);
        assert!((coordinator.states_per_sec() - rate_before).abs() < 1e-12);
    }

    #[test]
    fn states_per_sec_handles_zero_and_rate() {
        assert_eq!(Metrics::default().states_per_sec(), 0.0);
        let m = Metrics {
            states_visited: 500,
            elapsed_nanos: 250_000_000,
            ..Metrics::default()
        };
        assert!((m.states_per_sec() - 2000.0).abs() < 1e-9);
    }
}
