//! The [`Engine`] trait — one surface over every synchronous pull engine
//! in the workspace.
//!
//! Three engines implement the paper's §4 activation-step semantics on
//! different session structures: [`crate::SyncEngine`] (the two-level
//! route-reflection model), `ibgp_confed::ConfedEngine` (sub-AS
//! confederations), and `ibgp_hierarchy::HierEngine` (arbitrarily deep
//! reflection hierarchies). They share the same observable contract —
//! step a set of routers against the pre-step state, test for fixed
//! points, expose a canonical state key for cycle detection, and report
//! the best-exit vector — so search drivers, conformance tests, and
//! schedule runners are written once against this trait.
//!
//! [`Engine::run`] has a default implementation: the bounded
//! run-to-verdict loop (stability / provable cycle / budget) that every
//! engine previously re-implemented by hand. Cycle detection follows the
//! [`Activation::phase`] contract: phases are used as-is and must already
//! be normalized to the schedule's period.

use crate::activation::Activation;
use crate::sync::SyncOutcome;
use ibgp_types::{ExitPathId, RouterId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A synchronous activation-step engine over some I-BGP session
/// structure.
pub trait Engine {
    /// Canonical form of the engine's visible configuration, tagged with
    /// a schedule phase. Equal keys mean the executions are in
    /// indistinguishable states (and will behave identically under the
    /// same future activations), which is what makes cycle detection and
    /// reachability dedup sound.
    type Key: Eq + Hash + Clone;

    /// Number of routers being simulated.
    fn router_count(&self) -> usize;

    /// Apply one activation step: every router in `set` recomputes its
    /// state from the *pre-step* global state (simultaneous members model
    /// simultaneous message exchange). Returns whether the **pre-step**
    /// configuration was already a fixed point — i.e. activating any set
    /// of routers, not just `set`, would have changed nothing.
    fn step(&mut self, set: &[RouterId]) -> bool;

    /// Whether the current configuration is a fixed point: activating
    /// every router would change nothing. A fixed point is stable under
    /// *any* activation sequence.
    fn is_stable(&self) -> bool;

    /// The canonical state key, tagged with the schedule's phase.
    fn state_key(&self, phase: u64) -> Self::Key;

    /// The vector of best exit ids, indexed by router — the "routing
    /// configuration" two runs are compared on.
    fn best_vector(&self) -> Vec<Option<ExitPathId>>;

    /// Run under the given activation sequence until stability, a
    /// provable cycle, or the step budget.
    ///
    /// Cycle detection is sound only for periodic schedules (those
    /// reporting [`Activation::phase`]): revisiting a `(state, phase)`
    /// pair proves the execution is periodic. Keys are bucketed by a
    /// 64-bit digest and confirmed by exact comparison, so hash
    /// collisions cannot produce a false cycle.
    fn run(&mut self, schedule: &mut dyn Activation, max_steps: u64) -> SyncOutcome {
        let n = self.router_count();
        let mut seen: HashMap<u64, Vec<(Self::Key, u64)>> = HashMap::new();
        for step in 0..max_steps {
            if self.is_stable() {
                return SyncOutcome::Converged { steps: step };
            }
            if let Some(phase) = schedule.phase() {
                let key = self.state_key(phase);
                let digest = {
                    let mut h = DefaultHasher::new();
                    key.hash(&mut h);
                    h.finish()
                };
                let bucket = seen.entry(digest).or_default();
                if let Some((_, first)) = bucket.iter().find(|(k, _)| *k == key) {
                    return SyncOutcome::Cycle {
                        first_seen: *first,
                        period: step - *first,
                    };
                }
                bucket.push((key, step));
            }
            let set = schedule.next_set(n);
            self.step(&set);
        }
        if self.is_stable() {
            SyncOutcome::Converged { steps: max_steps }
        } else {
            SyncOutcome::Budget { steps: max_steps }
        }
    }
}
