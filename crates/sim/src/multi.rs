//! Multi-prefix simulation.
//!
//! BGP carries many destination prefixes; the paper's model (and every
//! engine in this workspace) analyzes one at a time, which is sound
//! because I-BGP processes prefixes independently — but operational
//! questions are per-fleet: how much total churn, which prefixes
//! oscillate, and (for the §10 adaptive feature) whether detection is
//! correctly *per prefix*: "the propagation of extra routes [is] a
//! feature that is only triggered when route oscillations are detected
//! for some destination prefix".
//!
//! [`MultiPrefixSim`] runs one async engine per prefix over a shared
//! topology and aggregates the results.

use crate::async_engine::{AdaptivePolicy, AsyncOutcome, AsyncSim, DelayModel};
use crate::metrics::Metrics;
use ibgp_proto::variants::ProtocolConfig;
use ibgp_topology::Topology;
use ibgp_types::{ExitPathId, ExitPathRef, Prefix, RouterId};
use std::collections::BTreeMap;

/// Per-prefix result of a fleet run.
#[derive(Debug, Clone)]
pub struct PrefixResult {
    /// The prefix.
    pub prefix: Prefix,
    /// How its simulation ended.
    pub outcome: AsyncOutcome,
    /// Its best-exit vector at the end.
    pub best_exits: Vec<Option<ExitPathId>>,
    /// Its message/churn counters.
    pub metrics: Metrics,
    /// Routers that upgraded to set advertisement for this prefix
    /// (adaptive mode only).
    pub upgraded: Vec<RouterId>,
}

/// A fleet of per-prefix simulations over one topology.
pub struct MultiPrefixSim<'a> {
    topo: &'a Topology,
    config: ProtocolConfig,
    /// Exit paths per prefix.
    workload: BTreeMap<Prefix, Vec<ExitPathRef>>,
    adaptive: Option<AdaptivePolicy>,
    mrai: u64,
}

impl<'a> MultiPrefixSim<'a> {
    /// Create an empty fleet.
    pub fn new(topo: &'a Topology, config: ProtocolConfig) -> Self {
        Self {
            topo,
            config,
            workload: BTreeMap::new(),
            adaptive: None,
            mrai: 0,
        }
    }

    /// Add a prefix with its injected exit paths.
    pub fn prefix(mut self, prefix: Prefix, exits: Vec<ExitPathRef>) -> Self {
        self.workload.insert(prefix, exits);
        self
    }

    /// Enable the per-prefix adaptive upgrade.
    pub fn adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }

    /// Set an MRAI (with deterministic jitter) on every engine.
    pub fn mrai(mut self, mrai: u64) -> Self {
        self.mrai = mrai;
        self
    }

    /// Number of prefixes.
    pub fn len(&self) -> usize {
        self.workload.len()
    }

    /// True when no prefixes were added.
    pub fn is_empty(&self) -> bool {
        self.workload.is_empty()
    }

    /// Run every prefix to quiescence or the per-prefix event budget.
    ///
    /// `delay_for` builds a (seeded) delay model per prefix, so timing
    /// can differ across prefixes as it does in practice.
    pub fn run(
        &self,
        mut delay_for: impl FnMut(Prefix) -> Box<dyn DelayModel>,
        max_events_per_prefix: u64,
    ) -> Vec<PrefixResult> {
        self.workload
            .iter()
            .map(|(&prefix, exits)| {
                let mut sim =
                    AsyncSim::new(self.topo, self.config, exits.clone(), delay_for(prefix));
                if let Some(policy) = self.adaptive {
                    sim.set_adaptive(policy);
                }
                if self.mrai > 0 {
                    sim.set_mrai(self.mrai);
                    sim.set_mrai_jitter(prefix.addr() as u64);
                }
                sim.start();
                let outcome = sim.run(max_events_per_prefix);
                PrefixResult {
                    prefix,
                    outcome,
                    best_exits: sim.best_vector(),
                    metrics: sim.metrics(),
                    upgraded: sim.upgraded_routers(),
                }
            })
            .collect()
    }
}

/// Aggregate counters over a fleet run.
pub fn aggregate(results: &[PrefixResult]) -> Metrics {
    let mut total = Metrics::default();
    for r in results {
        total.activations += r.metrics.activations;
        total.messages += r.metrics.messages;
        total.paths_advertised += r.metrics.paths_advertised;
        total.best_changes += r.metrics.best_changes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_engine::FixedDelay;
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med};
    use std::sync::Arc;

    fn exit(id: u32, next_as: u32, med: u32, at: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(RouterId::new(at))
                .build_unchecked(),
        )
    }

    fn prefix(i: u32) -> Prefix {
        Prefix::new(0x0A00_0000 + (i << 8), 24).unwrap()
    }

    #[test]
    fn independent_prefixes_quiesce_independently() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let fleet = MultiPrefixSim::new(&topo, ProtocolConfig::MODIFIED)
            .prefix(prefix(1), vec![exit(1, 1, 0, 0)])
            .prefix(prefix(2), vec![exit(3, 2, 5, 2), exit(4, 2, 0, 1)]);
        assert_eq!(fleet.len(), 2);
        let results = fleet.run(|_| Box::new(FixedDelay(2)), 50_000);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.outcome.quiescent(), "{}: {}", r.prefix, r.outcome);
            assert!(r.upgraded.is_empty());
        }
        // Prefixes converge to different tables.
        assert_ne!(results[0].best_exits, results[1].best_exits);
        let total = aggregate(&results);
        assert!(total.messages >= results[0].metrics.messages);
    }

    #[test]
    fn only_the_oscillating_prefix_triggers_upgrades() {
        // Prefix A: a quiet single-exit destination. Prefix B: the Fig 2
        // DISAGREE exits, which flap forever under the standard protocol
        // with symmetric delays. With the adaptive policy, only prefix
        // B's routers upgrade, and both prefixes end quiescent.
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        let quiet = vec![exit(1, 1, 0, 2)];
        let flappy = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
        let fleet = MultiPrefixSim::new(&topo, ProtocolConfig::STANDARD)
            .prefix(prefix(1), quiet)
            .prefix(prefix(2), flappy)
            .adaptive(AdaptivePolicy {
                threshold: 8,
                window: 200,
            });
        let results = fleet.run(|_| Box::new(FixedDelay(2)), 200_000);
        let quiet_result = &results[0];
        let flappy_result = &results[1];
        assert!(quiet_result.outcome.quiescent());
        assert!(
            quiet_result.upgraded.is_empty(),
            "quiet prefix pays nothing"
        );
        assert!(
            flappy_result.outcome.quiescent(),
            "{}",
            flappy_result.outcome
        );
        assert!(
            !flappy_result.upgraded.is_empty(),
            "the oscillating prefix self-heals"
        );
    }

    #[test]
    fn empty_fleet_is_empty() {
        let topo = TopologyBuilder::new(1).cluster([0], []).build().unwrap();
        let fleet = MultiPrefixSim::new(&topo, ProtocolConfig::STANDARD);
        assert!(fleet.is_empty());
        assert!(fleet.run(|_| Box::new(FixedDelay(1)), 10).is_empty());
    }
}
