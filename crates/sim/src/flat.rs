//! Flat, fixed-width state encoding for the reachability hot path.
//!
//! The explorer's visited set and canonicalization used to operate on
//! [`StateKey`](crate::signature::StateKey) — three `Vec`s per router per
//! state, allocated fresh for every generated successor. This module
//! packs the same information into a single `Box<[u32]>` per state:
//!
//! ```text
//! [ router 0 | router 1 | ... ]         one fixed-width block per router
//! block = [ possible bitmask  : mask_words u32s ]
//!         [ advertised bitmask: mask_words u32s ]
//!         [ best exit index+1 : 1 u32 (0 = no best route) ]
//! ```
//!
//! Exit paths are numbered by a per-search [`StateCodec`] (ascending raw
//! id, so bit order equals the sorted-id order `StateKey` uses), which
//! also converts back to `StateKey` at the API boundary. Equality of
//! [`FlatKey`]s is exactly equality of the `StateKey`s they encode (at
//! phase 0, the only phase the explorer generates), so visited-set dedup
//! and orbit collapsing are unchanged observationally — only cheaper:
//! one allocation per state, `memcmp` equality, and a digest that is
//! computed once and carried with the key.
//!
//! The digest is a hand-rolled Fx-style multiply-xor hash (the workspace
//! deliberately adds no dependencies); it only feeds hash-map bucketing
//! and the digest-compacted visited set, never equality.

use crate::signature::{NodeStateKey, StateKey};
use ibgp_types::{ExitPathId, ExitPathRef};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Multiplier from the Fx hash family (the golden-ratio-derived odd
/// constant used by rustc's FxHasher).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style multiply-xor hash over a word slice. Not cryptographic; used
/// for hash-map bucketing and digest-only visited sets.
pub fn hash_words(words: &[u32]) -> u64 {
    let mut h = words.len() as u64;
    for &w in words {
        h = (h.rotate_left(5) ^ u64::from(w)).wrapping_mul(FX_SEED);
    }
    h
}

/// Per-search table mapping exit-path ids to dense bit positions, plus
/// the derived block geometry. Construction fixes the id set for the
/// whole search (the explorer never injects mid-search).
#[derive(Debug)]
pub struct StateCodec {
    /// Sorted raw exit ids; the bit position of an exit is its index here.
    ids: Vec<u32>,
    routers: usize,
    mask_words: usize,
    node_words: usize,
}

impl StateCodec {
    /// Build the codec for `routers` routers and the given injected exit
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics on duplicate exit ids — scenario construction errors, the
    /// same contract `SyncEngine::new` enforces.
    pub fn new(routers: usize, exits: &[ExitPathRef]) -> Self {
        let mut ids: Vec<u32> = exits.iter().map(|p| p.id().raw()).collect();
        ids.sort_unstable();
        assert!(
            ids.windows(2).all(|w| w[0] != w[1]),
            "duplicate exit path id"
        );
        let mask_words = ids.len().div_ceil(32);
        Self {
            ids,
            routers,
            mask_words,
            node_words: 2 * mask_words + 1,
        }
    }

    /// Number of distinct exit paths in the table.
    pub fn exit_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of routers per encoded state.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// `u32` words per per-router bitmask.
    pub fn mask_words(&self) -> usize {
        self.mask_words
    }

    /// `u32` words per router block.
    pub fn node_words(&self) -> usize {
        self.node_words
    }

    /// Total `u32` words per encoded state.
    pub fn key_words(&self) -> usize {
        self.routers * self.node_words
    }

    /// Dense bit position of an exit id, if the id is in the table.
    pub fn index_of(&self, id: ExitPathId) -> Option<usize> {
        self.ids.binary_search(&id.raw()).ok()
    }

    /// The exit id at a dense bit position.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn id_at(&self, index: usize) -> ExitPathId {
        ExitPathId::new(self.ids[index])
    }

    /// Encode one router's visible state into `out` (exactly
    /// [`StateCodec::node_words`] long, pre-zeroed or not — every word is
    /// written).
    ///
    /// # Panics
    ///
    /// Panics if an id is not in the codec table or `out` has the wrong
    /// length.
    pub fn encode_node_into(
        &self,
        possible: impl Iterator<Item = ExitPathId>,
        best: Option<ExitPathId>,
        advertised: impl Iterator<Item = ExitPathId>,
        out: &mut [u32],
    ) {
        assert_eq!(out.len(), self.node_words, "wrong node block length");
        out.fill(0);
        let slot = |codec: &Self, id: ExitPathId| {
            codec
                .index_of(id)
                .unwrap_or_else(|| panic!("exit path {id} not in the codec table"))
        };
        for id in possible {
            let e = slot(self, id);
            out[e / 32] |= 1 << (e % 32);
        }
        for id in advertised {
            let e = slot(self, id);
            out[self.mask_words + e / 32] |= 1 << (e % 32);
        }
        out[2 * self.mask_words] = match best {
            Some(id) => slot(self, id) as u32 + 1,
            None => 0,
        };
    }

    /// Encode a full [`StateKey`] (the explorer only generates phase 0;
    /// the phase is not represented).
    ///
    /// # Panics
    ///
    /// Panics if the key's router count disagrees with the codec.
    pub fn encode_key(&self, key: &StateKey) -> FlatKey {
        assert_eq!(key.nodes.len(), self.routers, "router count mismatch");
        let mut words = vec![0u32; self.key_words()];
        for (u, node) in key.nodes.iter().enumerate() {
            self.encode_node_into(
                node.possible.iter().copied(),
                node.best,
                node.advertised.iter().copied(),
                &mut words[u * self.node_words..(u + 1) * self.node_words],
            );
        }
        FlatKey::new(words.into_boxed_slice())
    }

    /// Decode back to the snapshot-side [`StateKey`] (phase 0). Bit order
    /// is ascending raw id, so the decoded id vectors come out sorted —
    /// exactly the `StateKey` invariant.
    ///
    /// # Panics
    ///
    /// Panics if the key's length disagrees with the codec geometry.
    pub fn decode_key(&self, flat: &FlatKey) -> StateKey {
        assert_eq!(flat.words.len(), self.key_words(), "key length mismatch");
        let nodes = flat
            .words
            .chunks_exact(self.node_words)
            .map(|block| {
                let best_slot = block[2 * self.mask_words];
                NodeStateKey {
                    possible: self.decode_mask(&block[..self.mask_words]),
                    best: (best_slot != 0).then(|| self.id_at(best_slot as usize - 1)),
                    advertised: self.decode_mask(&block[self.mask_words..2 * self.mask_words]),
                    // The flat encoding never carries reflection
                    // attributes: searches with loop prevention on run
                    // the legacy scheme (`set_codec` rejects the combo).
                    rr: Vec::new(),
                }
            })
            .collect();
        StateKey { nodes, phase: 0 }
    }

    fn decode_mask(&self, mask: &[u32]) -> Vec<ExitPathId> {
        let mut ids = Vec::new();
        for (w, &word) in mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                ids.push(self.id_at(w * 32 + b));
            }
        }
        ids
    }
}

/// One encoded configuration: the packed words plus their digest,
/// computed once at construction and carried with the key (the legacy
/// `StateKey` re-hashed on every probe).
#[derive(Debug, Clone)]
pub struct FlatKey {
    digest: u64,
    words: Box<[u32]>,
}

impl FlatKey {
    /// Wrap packed words, computing the digest.
    pub fn new(words: Box<[u32]>) -> Self {
        Self {
            digest: hash_words(&words),
            words,
        }
    }

    /// The precomputed 64-bit digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The packed words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Accounted heap footprint, the flat analogue of
    /// `StateKey::approx_bytes`: the struct itself plus the word payload.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * std::mem::size_of::<u32>()
    }
}

impl PartialEq for FlatKey {
    fn eq(&self, other: &Self) -> bool {
        // The digest is a pure function of the words: a mismatch proves
        // inequality without touching the payload.
        self.digest == other.digest && self.words == other.words
    }
}

impl Eq for FlatKey {}

impl PartialOrd for FlatKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FlatKey {
    /// Lexicographic over the packed words — the total order
    /// symmetry-reduced searches pick orbit representatives with.
    fn cmp(&self, other: &Self) -> Ordering {
        self.words.cmp(&other.words)
    }
}

impl Hash for FlatKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.digest.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_types::{AsId, ExitPath, RouterId};
    use std::sync::Arc;

    fn exit(id: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(1))
                .exit_point(RouterId::new(exit_point))
                .build_unchecked(),
        )
    }

    fn key(nodes: Vec<NodeStateKey>) -> StateKey {
        StateKey { nodes, phase: 0 }
    }

    fn node(possible: &[u32], best: Option<u32>, advertised: &[u32]) -> NodeStateKey {
        NodeStateKey {
            possible: possible.iter().map(|&i| ExitPathId::new(i)).collect(),
            best: best.map(ExitPathId::new),
            advertised: advertised.iter().map(|&i| ExitPathId::new(i)).collect(),
            rr: Vec::new(),
        }
    }

    #[test]
    fn round_trips_state_keys() {
        let codec = StateCodec::new(2, &[exit(3, 0), exit(7, 1), exit(9, 1)]);
        assert_eq!(codec.exit_count(), 3);
        assert_eq!(codec.mask_words(), 1);
        assert_eq!(codec.node_words(), 3);
        assert_eq!(codec.key_words(), 6);
        let k = key(vec![node(&[3, 9], Some(9), &[9]), node(&[], None, &[])]);
        let flat = codec.encode_key(&k);
        assert_eq!(codec.decode_key(&flat), k);
    }

    #[test]
    fn equality_matches_state_key_equality() {
        let codec = StateCodec::new(1, &[exit(1, 0), exit(2, 0)]);
        let a = codec.encode_key(&key(vec![node(&[1, 2], Some(1), &[1])]));
        let b = codec.encode_key(&key(vec![node(&[1, 2], Some(1), &[1])]));
        let c = codec.encode_key(&key(vec![node(&[1, 2], Some(2), &[2])]));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_lexicographic_over_words() {
        let codec = StateCodec::new(1, &[exit(1, 0), exit(2, 0)]);
        let lo = codec.encode_key(&key(vec![node(&[1], None, &[])]));
        let hi = codec.encode_key(&key(vec![node(&[2], None, &[])]));
        assert!(lo < hi, "bit 0 < bit 1");
        assert_eq!(lo.cmp(&lo), Ordering::Equal);
    }

    #[test]
    fn wide_exit_sets_span_mask_words() {
        let exits: Vec<ExitPathRef> = (0..40).map(|i| exit(i + 1, 0)).collect();
        let codec = StateCodec::new(1, &exits);
        assert_eq!(codec.mask_words(), 2);
        let all: Vec<u32> = (1..=40).collect();
        let k = key(vec![node(&all, Some(40), &[40])]);
        let flat = codec.encode_key(&k);
        assert_eq!(codec.decode_key(&flat), k);
    }

    #[test]
    fn empty_exit_table_still_encodes() {
        let codec = StateCodec::new(2, &[]);
        assert_eq!(codec.node_words(), 1);
        let k = key(vec![node(&[], None, &[]), node(&[], None, &[])]);
        assert_eq!(codec.decode_key(&codec.encode_key(&k)), k);
    }

    #[test]
    fn hash_words_is_stable_and_spreads() {
        assert_eq!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 3]));
        assert_ne!(hash_words(&[1, 2, 3]), hash_words(&[3, 2, 1]));
        assert_ne!(hash_words(&[]), hash_words(&[0]));
    }

    #[test]
    #[should_panic(expected = "duplicate exit path id")]
    fn duplicate_ids_panic() {
        let _ = StateCodec::new(1, &[exit(1, 0), exit(1, 0)]);
    }
}
