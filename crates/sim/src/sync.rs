//! The synchronous activation-sequence engine — the paper's operational
//! model of I-BGP (§4), extended with the modified protocol of §6 and the
//! Walton baseline of §8.
//!
//! State per node `v` at time `t`:
//!
//! * `MyExits(v)` — the E-BGP routes `v` itself knows (mutable only via
//!   explicit inject/withdraw, modeling E-BGP churn);
//! * `PossibleExits(v, t)` — the exit paths `v` can currently choose from;
//! * `BestRoute(v, t)` — `best_v(route(PossibleExits(v, t), v))`;
//! * the advertised set — what `v` offers its peers, per protocol
//!   variant: `{exit(BestRoute)}` (standard), the per-neighbor-AS vector
//!   (Walton, reflectors only), or `GoodExits(v, t) =
//!   Choose_set(PossibleExits(v, t))` (modified).
//!
//! When a node activates it *pulls* from every peer the transfer-filtered
//! advertised set, rebuilds `PossibleExits` from scratch (union with
//! `MyExits` — withdrawal is implicit), recomputes its best route, and
//! refreshes its advertised set. Nodes activated in the same step all read
//! the pre-step state, so simultaneous activations model simultaneous
//! message exchange (this is what drives the Fig 2 oscillation).
//!
//! # The incremental engine
//!
//! Node updates are *memoized*: `u`'s post-activation state is a pure
//! function of `(u, MyExits(u), peers' advertised sets)` given the fixed
//! topology and protocol configuration, so the engine caches computed
//! updates keyed by that input signature and shares the resulting rows
//! behind [`Arc`]s. This makes three hot paths cheap:
//!
//! * **Stability folds into the step.** [`SyncEngine::step`] computes every
//!   node's update once per step (cache-hitting where inputs are
//!   unchanged), derives both the transition *and* the fixed-point check
//!   from that single pass, and returns whether the pre-step configuration
//!   was stable. [`SyncEngine::is_stable`] shares the same cache, so
//!   `run()`-style `is_stable` + `step` loops compute each update at most
//!   once per step.
//! * **Snapshots are interned rows, not deep clones.**
//!   [`SyncEngine::snapshot`]/[`SyncEngine::restore`] copy a vector of
//!   `Arc`s; the millions of `restore → step` replays a reachability
//!   search performs share row storage and cache entries.
//! * **Message accounting reuses per-state transfer sets.** Each state
//!   carries the transfer-filtered ids it offers every peer, computed once
//!   when the state is first built rather than twice per peer per step.
//!
//! Cache-key soundness: within one engine, exit-path ids uniquely identify
//! the paths (enforced at construction and on inject), and the cache is
//! flushed on `inject`/`withdraw`, where that binding could change. The
//! unmemoized reference path stays available through
//! [`SyncEngine::set_memoized`] and is exercised by the equivalence tests.

use crate::engine::Engine;
use crate::flat::{hash_words, FlatKey, StateCodec};
use crate::metrics::Metrics;
use crate::signature::{NodeStateKey, StateKey};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_proto::{
    choose_best, choose_set, cluster_loop, reflect_allowed, route_at, stamp_cluster_list,
    transfer_set, walton_advertised_set, ProtocolVariant, RrAttrs,
};
use ibgp_topology::Topology;
use ibgp_types::{BgpId, ExitPathId, ExitPathRef, Route, RouterId};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

// The reachability explorer ships snapshots between worker threads and
// shares the topology behind `&`; keep the cross-thread contracts
// explicit so a future `Rc`/`Cell` in a row type fails to compile here
// rather than at a distant spawn site. (`SyncEngine` itself is `Send`
// but deliberately not `Sync` — the update memo uses `RefCell` — so each
// worker owns its own engine.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<SyncSnapshot>();
    assert_send_sync::<StateKey>();
    assert_send_sync::<FlatKey>();
    assert_send_sync::<StateCodec>();
    assert_send_sync::<Metrics>();
    assert_send::<SyncEngine<'_>>();
};

/// The result of a bounded sync-engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncOutcome {
    /// The configuration reached a stable state (a fixed point of the full
    /// activation step) after the given number of steps.
    Converged {
        /// Steps taken before stability held.
        steps: u64,
    },
    /// The execution revisited a `(state, phase)` pair: it is provably
    /// periodic and will oscillate forever under this schedule.
    Cycle {
        /// Step at which the repeated state was first seen.
        first_seen: u64,
        /// Cycle length in steps.
        period: u64,
    },
    /// The step budget ran out without stability or a provable cycle
    /// (possible under aperiodic schedules).
    Budget {
        /// Steps taken.
        steps: u64,
    },
}

impl SyncOutcome {
    /// True for [`SyncOutcome::Converged`].
    pub fn converged(&self) -> bool {
        matches!(self, SyncOutcome::Converged { .. })
    }

    /// True for [`SyncOutcome::Cycle`].
    pub fn cycled(&self) -> bool {
        matches!(self, SyncOutcome::Cycle { .. })
    }
}

impl fmt::Display for SyncOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncOutcome::Converged { steps } => write!(f, "converged after {steps} steps"),
            SyncOutcome::Cycle { first_seen, period } => {
                write!(f, "cycle of period {period} entered at step {first_seen}")
            }
            SyncOutcome::Budget { steps } => write!(f, "no decision within {steps} steps"),
        }
    }
}

/// One node's state — an immutable row shared behind an [`Arc`] between
/// the live configuration, snapshots, and the update memo.
#[derive(Debug, Clone)]
struct NodeState {
    my_exits: Vec<ExitPathRef>,
    possible: Vec<ExitPathRef>,
    /// `learnedFrom` per possible exit path.
    learned: BTreeMap<ExitPathId, BgpId>,
    best: Option<Route>,
    advertised: Vec<ExitPathRef>,
    /// Transfer-filtered advertised ids offered to each I-BGP peer, in
    /// `Topology::ibgp().peers(u)` order — computed once per distinct
    /// state so message accounting needn't re-filter on every step.
    outgoing: Vec<Vec<ExitPathId>>,
    /// Reflection attributes per possible path (loop-prevention mode
    /// only; empty otherwise). Peers read the entries of *advertised*
    /// paths when gathering; the rest ride along for inspection.
    attrs: BTreeMap<ExitPathId, RrAttrs>,
    /// The row's flat encoding under the engine's [`StateCodec`] —
    /// `node_words` long when a codec is installed, empty otherwise.
    /// Cached with the row so assembling a full [`FlatKey`] is a plain
    /// word copy.
    flat: Box<[u32]>,
}

impl NodeState {
    fn key(&self) -> NodeStateKey {
        // Attribute words for the advertised paths only: peers read
        // exactly (advertised set, its attributes), so keys of this
        // granularity determine all future transitions — differing
        // attributes on *unadvertised* paths cannot influence anyone.
        let mut rr = Vec::new();
        for p in &self.advertised {
            if let Some(a) = self.attrs.get(&p.id()) {
                rr.push(a.from.map_or(0, |v| v.raw() + 1));
                rr.push(a.cluster_list.len() as u32);
                rr.extend(a.cluster_list.iter().map(|c| c.raw()));
            }
        }
        NodeStateKey {
            possible: self.possible.iter().map(|p| p.id()).collect(),
            best: self.best.as_ref().map(Route::exit_id),
            advertised: self.advertised.iter().map(|p| p.id()).collect(),
            rr,
        }
    }

    fn encode_flat(&self, codec: &StateCodec) -> Box<[u32]> {
        let mut out = vec![0u32; codec.node_words()];
        codec.encode_node_into(
            self.possible.iter().map(|p| p.id()),
            self.best.as_ref().map(Route::exit_id),
            self.advertised.iter().map(|p| p.id()),
            &mut out,
        );
        out.into_boxed_slice()
    }

    /// Append this row's flat words to `words`, encoding on the fly if
    /// the cached copy predates the codec installation.
    fn extend_flat(&self, codec: &StateCodec, words: &mut Vec<u32>) {
        if self.flat.len() == codec.node_words() {
            words.extend_from_slice(&self.flat);
        } else {
            words.extend_from_slice(&self.encode_flat(codec));
        }
    }
}

/// An opaque copy of a [`SyncEngine`]'s mutable state, for search
/// algorithms that explore the configuration space (see `ibgp-analysis`).
/// Rows are interned: a snapshot is a vector of `Arc`s, so capturing and
/// restoring are O(n) pointer copies, not deep clones.
#[derive(Clone)]
pub struct SyncSnapshot {
    nodes: Vec<Arc<NodeState>>,
    time: u64,
}

/// Memoized node updates: digest of the input signature → rows, with the
/// exact flat key kept to rule out collisions.
type UpdateMemo = HashMap<u64, Vec<(Box<[u32]>, Arc<NodeState>)>>;

/// The paper's synchronous simulator.
///
/// ```
/// use ibgp_sim::{Engine, RoundRobin, SyncEngine};
/// use ibgp_proto::variants::ProtocolConfig;
/// use ibgp_topology::TopologyBuilder;
/// use ibgp_types::*;
/// use std::sync::Arc;
///
/// let topo = TopologyBuilder::new(2).link(0, 1, 1).full_mesh().build()?;
/// let exit = Arc::new(ExitPath::builder(ExitPathId::new(1))
///     .via(AsId::new(1)).exit_point(RouterId::new(0)).build_unchecked());
/// let mut engine = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, vec![exit]);
/// let outcome = engine.run(&mut RoundRobin::new(), 1_000);
/// assert!(outcome.converged());
/// assert_eq!(engine.best_exit(RouterId::new(1)), Some(ExitPathId::new(1)));
/// # Ok::<(), ibgp_topology::TopologyError>(())
/// ```
pub struct SyncEngine<'a> {
    topo: &'a Topology,
    config: ProtocolConfig,
    nodes: Vec<Arc<NodeState>>,
    time: u64,
    metrics: Metrics,
    memoized: bool,
    /// Message-level reflection mechanics (ORIGINATOR_ID / CLUSTER_LIST /
    /// SSLD) instead of the paper's `Transfer` relation. See
    /// [`SyncEngine::set_loop_prevention`].
    loop_prevention: bool,
    memo: RefCell<UpdateMemo>,
    /// Reused buffer for memo-key assembly, so the memoized lookup path
    /// allocates only on a miss.
    memo_scratch: RefCell<Vec<u32>>,
    /// Flat-encoding table for [`SyncEngine::flat_key`] and the branch
    /// API; installed once per search via [`SyncEngine::set_codec`].
    codec: Option<Arc<StateCodec>>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
}

impl Clone for SyncEngine<'_> {
    fn clone(&self) -> Self {
        Self {
            topo: self.topo,
            config: self.config,
            nodes: self.nodes.clone(),
            time: self.time,
            metrics: self.metrics,
            memoized: self.memoized,
            loop_prevention: self.loop_prevention,
            memo: RefCell::new(self.memo.borrow().clone()),
            memo_scratch: RefCell::new(Vec::new()),
            codec: self.codec.clone(),
            cache_hits: self.cache_hits.clone(),
            cache_misses: self.cache_misses.clone(),
        }
    }
}

impl<'a> SyncEngine<'a> {
    /// Create an engine with the given injected exit paths distributed to
    /// their exit points. `config(0)`: `PossibleExits(u, 0) = MyExits(u)`,
    /// no best route, nothing advertised.
    ///
    /// # Panics
    ///
    /// Panics if an exit path's exit point is out of range or two paths
    /// share an id — scenario construction errors.
    pub fn new(topo: &'a Topology, config: ProtocolConfig, exits: Vec<ExitPathRef>) -> Self {
        let n = topo.len();
        let mut nodes: Vec<NodeState> = (0..n)
            .map(|i| NodeState {
                my_exits: Vec::new(),
                possible: Vec::new(),
                learned: BTreeMap::new(),
                best: None,
                advertised: Vec::new(),
                outgoing: vec![Vec::new(); topo.ibgp().peers(RouterId::new(i as u32)).len()],
                attrs: BTreeMap::new(),
                flat: Box::default(),
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for p in exits {
            assert!(
                p.exit_point().index() < n,
                "exit point {} out of range",
                p.exit_point()
            );
            assert!(seen.insert(p.id()), "duplicate exit path id {}", p.id());
            assert!(
                p.id().raw() != u32::MAX,
                "exit path id {} is reserved",
                p.id()
            );
            nodes[p.exit_point().index()].my_exits.push(p);
        }
        for node in &mut nodes {
            node.my_exits.sort_by_key(|p| p.id());
            node.possible = node.my_exits.clone();
            for p in &node.possible {
                node.learned.insert(p.id(), p.next_hop().bgp_id());
            }
        }
        Self {
            topo,
            config,
            nodes: nodes.into_iter().map(Arc::new).collect(),
            time: 0,
            metrics: Metrics::default(),
            memoized: true,
            loop_prevention: false,
            memo: RefCell::new(HashMap::new()),
            memo_scratch: RefCell::new(Vec::new()),
            codec: None,
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The protocol configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// Current simulated time (number of steps applied).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Run metrics so far, including update-cache hit/miss counters.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.metrics;
        m.cache_hits = self.cache_hits.get();
        m.cache_misses = self.cache_misses.get();
        m
    }

    /// Whether node updates are memoized (the default). Disabling switches
    /// to the naive reference path that recomputes every update from
    /// scratch — used by the equivalence tests and benchmarks.
    pub fn memoized(&self) -> bool {
        self.memoized
    }

    /// Enable or disable update memoization. Disabling also drops the
    /// cache, so re-enabling starts cold.
    pub fn set_memoized(&mut self, on: bool) {
        self.memoized = on;
        if !on {
            self.memo.borrow_mut().clear();
        }
    }

    /// Whether message-level loop prevention is on.
    pub fn loop_prevention(&self) -> bool {
        self.loop_prevention
    }

    /// Switch between the paper's `Transfer` relation (off, the default)
    /// and message-level reflection mechanics (on): ORIGINATOR_ID
    /// (derivable — the originator of `p` is `exitPoint(p)`), SSLD,
    /// CLUSTER_LIST stamping with receive-side cluster-loop detection,
    /// and the reflect-to-whom matrix keyed on whom each copy was
    /// learned from (see [`ibgp_proto::reflection`]).
    ///
    /// Restoring snapshots taken under the *same* setting is fine; the
    /// two modes' rows are not interchangeable, so flip this right after
    /// construction, before any step. Drops the update memo.
    ///
    /// # Panics
    ///
    /// Panics when enabling after steps were applied, or with a flat
    /// codec installed (the flat encoding cannot carry the per-path
    /// attributes; loop-prevention searches run the legacy scheme).
    pub fn set_loop_prevention(&mut self, on: bool) {
        if self.loop_prevention == on {
            return;
        }
        assert!(
            self.time == 0,
            "set_loop_prevention must precede stepping"
        );
        assert!(
            !(on && self.codec.is_some()),
            "loop prevention is incompatible with the flat encoding"
        );
        self.loop_prevention = on;
        self.memo.borrow_mut().clear();
        for node in &mut self.nodes {
            let row = Arc::make_mut(node);
            row.attrs.clear();
            if on {
                // config(0): every possible path is an own E-BGP route.
                for p in &row.possible {
                    row.attrs.insert(p.id(), RrAttrs::own());
                }
            }
        }
    }

    /// `BestRoute(u, now)`.
    pub fn best_route(&self, u: RouterId) -> Option<&Route> {
        self.nodes[u.index()].best.as_ref()
    }

    /// The best route's exit-path id, if any.
    pub fn best_exit(&self, u: RouterId) -> Option<ExitPathId> {
        self.nodes[u.index()].best.as_ref().map(Route::exit_id)
    }

    /// `PossibleExits(u, now)`, sorted by id.
    pub fn possible_exits(&self, u: RouterId) -> &[ExitPathRef] {
        &self.nodes[u.index()].possible
    }

    /// The currently advertised set (for the modified protocol this is
    /// `GoodExits(u, now)`), sorted by id.
    pub fn advertised(&self, u: RouterId) -> &[ExitPathRef] {
        &self.nodes[u.index()].advertised
    }

    /// `MyExits(u)`.
    pub fn my_exits(&self, u: RouterId) -> &[ExitPathRef] {
        &self.nodes[u.index()].my_exits
    }

    /// The candidate routes `route(PossibleExits(u), u)` as the decision
    /// process sees them right now — for inspection and `explain`-style
    /// tooling.
    pub fn candidate_routes(&self, u: RouterId) -> Vec<Route> {
        let node = &self.nodes[u.index()];
        node.possible
            .iter()
            .map(|p| {
                let lf = node
                    .learned
                    .get(&p.id())
                    .copied()
                    .unwrap_or_else(|| p.next_hop().bgp_id());
                route_at(self.topo, u, p, lf)
            })
            .collect()
    }

    /// ORIGINATOR_ID of a possible path at `u`: the router that learned
    /// it over E-BGP. Derivable in any mode (`exitPoint(p)`); `None` if
    /// `u` does not currently know the path.
    pub fn originator(&self, u: RouterId, id: ExitPathId) -> Option<RouterId> {
        self.nodes[u.index()]
            .possible
            .iter()
            .find(|p| p.id() == id)
            .map(|p| p.exit_point())
    }

    /// The stored CLUSTER_LIST of a possible path at `u` (loop-prevention
    /// mode; `None` if the path is unknown there).
    pub fn cluster_list(&self, u: RouterId, id: ExitPathId) -> Option<&[RouterId]> {
        self.nodes[u.index()]
            .attrs
            .get(&id)
            .map(|a| &a.cluster_list[..])
    }

    /// The I-BGP peer `u`'s stored copy of a path was learned from
    /// (`Some(None)` = `u`'s own E-BGP route; `None` = unknown path or
    /// loop prevention off).
    pub fn rr_from(&self, u: RouterId, id: ExitPathId) -> Option<Option<RouterId>> {
        self.nodes[u.index()].attrs.get(&id).map(|a| a.from)
    }

    /// The send-filtered advertisement `v` currently offers peer `u`
    /// (empty when `u` is not a peer of `v`) — what conformance
    /// assertions on reflection targets check.
    pub fn outgoing_to(&self, v: RouterId, u: RouterId) -> Vec<ExitPathId> {
        let peers = self.topo.ibgp().peers(v);
        match peers.iter().position(|&w| w == u) {
            Some(i) => self.nodes[v.index()].outgoing[i].clone(),
            None => Vec::new(),
        }
    }

    /// Inject a new E-BGP route at its exit point (E-BGP churn). Takes
    /// effect on the exit point's next activation.
    pub fn inject(&mut self, p: ExitPathRef) {
        assert!(
            p.id().raw() != u32::MAX,
            "exit path id {} is reserved",
            p.id()
        );
        let node = Arc::make_mut(&mut self.nodes[p.exit_point().index()]);
        assert!(
            node.my_exits.iter().all(|q| q.id() != p.id()),
            "duplicate exit path id {}",
            p.id()
        );
        node.my_exits.push(p);
        node.my_exits.sort_by_key(|p| p.id());
        // The id → path binding may have changed; cached rows are stale.
        self.memo.borrow_mut().clear();
    }

    /// Withdraw an E-BGP route from `MyExits` (the Lemma 7.2 scenario:
    /// the path may linger in `PossibleExits` sets until flushed).
    /// Returns whether the path was present.
    pub fn withdraw(&mut self, id: ExitPathId) -> bool {
        // A path lives in exactly one node's MyExits (ids are unique), so
        // stop at the owning exit point instead of rescanning every node.
        for i in 0..self.nodes.len() {
            if let Some(pos) = self.nodes[i].my_exits.iter().position(|p| p.id() == id) {
                Arc::make_mut(&mut self.nodes[i]).my_exits.remove(pos);
                self.memo.borrow_mut().clear();
                return true;
            }
        }
        false
    }

    /// The memo key for `u`'s next update: `u` itself, `MyExits(u)`, and
    /// every peer's advertised set, flattened to raw ids with `u32::MAX`
    /// separators (reserved — asserted at construction/inject). Under
    /// loop prevention, each advertised id is followed by its reflection
    /// attributes (`from + 1`, cluster-list length, cluster ids) — fixed
    /// per-path structure, so the encoding stays injective. Together
    /// with the fixed topology and protocol configuration these inputs
    /// fully determine [`SyncEngine::compute_update`]'s output. Written
    /// into a reused buffer so the lookup path allocates only on a miss.
    fn memo_key_into(&self, u: RouterId, key: &mut Vec<u32>) {
        let node = &self.nodes[u.index()];
        key.push(u.raw());
        for p in &node.my_exits {
            key.push(p.id().raw());
        }
        for v in self.topo.ibgp().peers(u) {
            key.push(u32::MAX);
            let peer = &self.nodes[v.index()];
            for p in &peer.advertised {
                key.push(p.id().raw());
                if self.loop_prevention {
                    let a = peer.attrs.get(&p.id());
                    key.push(a.and_then(|a| a.from).map_or(0, |w| w.raw() + 1));
                    let list = a.map_or(&[][..], |a| &a.cluster_list[..]);
                    key.push(list.len() as u32);
                    key.extend(list.iter().map(|c| c.raw()));
                }
            }
        }
    }

    /// `u`'s post-activation state, memoized on the inputs it depends on.
    fn update_row(&self, u: RouterId) -> Arc<NodeState> {
        if !self.memoized {
            return Arc::new(self.compute_update(u));
        }
        let mut scratch = self.memo_scratch.borrow_mut();
        scratch.clear();
        self.memo_key_into(u, &mut scratch);
        let digest = hash_words(&scratch);
        if let Some(bucket) = self.memo.borrow().get(&digest) {
            if let Some((_, row)) = bucket.iter().find(|(k, _)| k[..] == scratch[..]) {
                self.cache_hits.set(self.cache_hits.get() + 1);
                return Arc::clone(row);
            }
        }
        self.cache_misses.set(self.cache_misses.get() + 1);
        let row = Arc::new(self.compute_update(u));
        self.memo
            .borrow_mut()
            .entry(digest)
            .or_default()
            .push((scratch[..].into(), Arc::clone(&row)));
        row
    }

    /// Compute node `u`'s post-activation state from the current global
    /// state, without applying it. This is the naive reference path; the
    /// engine normally goes through the memoized [`SyncEngine::update_row`].
    fn compute_update(&self, u: RouterId) -> NodeState {
        if self.loop_prevention {
            return self.compute_update_rr(u);
        }
        let cur = &self.nodes[u.index()];
        // Gather: own exits plus transfer-filtered peer advertisements,
        // tracking the minimum announcing BGP id per path.
        let mut gathered: BTreeMap<ExitPathId, (ExitPathRef, BgpId)> = BTreeMap::new();
        for p in &cur.my_exits {
            gathered.insert(p.id(), (p.clone(), p.next_hop().bgp_id()));
        }
        for v in self.topo.ibgp().peers(u) {
            let sender = self.topo.bgp_id(v);
            for p in transfer_set(self.topo, v, u, &self.nodes[v.index()].advertised) {
                gathered
                    .entry(p.id())
                    .and_modify(|(_, lf)| {
                        // Own exits keep their external learnedFrom; I-BGP
                        // announcements take the minimum announcing peer.
                        if p.exit_point() != u {
                            *lf = (*lf).min(sender);
                        }
                    })
                    .or_insert((p, sender));
            }
        }
        let possible: Vec<ExitPathRef> = gathered.values().map(|(p, _)| p.clone()).collect();
        let learned: BTreeMap<ExitPathId, BgpId> =
            gathered.iter().map(|(&id, &(_, lf))| (id, lf)).collect();
        let routes: Vec<Route> = possible
            .iter()
            .map(|p| route_at(self.topo, u, p, learned[&p.id()]))
            .collect();
        let best = choose_best(self.config.policy, &routes);
        let advertised = self.advertised_set(u, &possible, &routes, best.as_ref());
        let outgoing = self
            .topo
            .ibgp()
            .peers(u)
            .into_iter()
            .map(|v| {
                transfer_set(self.topo, u, v, &advertised)
                    .iter()
                    .map(|p| p.id())
                    .collect()
            })
            .collect();
        let mut row = NodeState {
            my_exits: cur.my_exits.clone(),
            possible,
            learned,
            best,
            advertised,
            outgoing,
            attrs: BTreeMap::new(),
            flat: Box::default(),
        };
        if let Some(codec) = &self.codec {
            row.flat = row.encode_flat(codec);
        }
        row
    }

    /// [`SyncEngine::compute_update`] under message-level loop
    /// prevention: the gather applies the reflect-to-whom matrix plus
    /// SSLD on the send side, stamps CLUSTER_LIST on the wire, and drops
    /// cluster loops on the receive side; the stored attributes follow
    /// the minimum-BGP-id announcing peer (the same winner `learnedFrom`
    /// tracks).
    fn compute_update_rr(&self, u: RouterId) -> NodeState {
        use std::collections::btree_map::Entry;
        let cur = &self.nodes[u.index()];
        let mut gathered: BTreeMap<ExitPathId, (ExitPathRef, BgpId, RrAttrs)> = BTreeMap::new();
        for p in &cur.my_exits {
            gathered.insert(p.id(), (p.clone(), p.next_hop().bgp_id(), RrAttrs::own()));
        }
        let ibgp = self.topo.ibgp();
        for v in ibgp.peers(u) {
            let sender = self.topo.bgp_id(v);
            let peer = &self.nodes[v.index()];
            for p in &peer.advertised {
                let stored = peer.attrs.get(&p.id());
                let from = stored.and_then(|a| a.from);
                if !reflect_allowed(self.topo, v, u, p.exit_point(), from) {
                    continue;
                }
                let wire = stamp_cluster_list(
                    v,
                    p.exit_point(),
                    stored.map_or(&[][..], |a| &a.cluster_list[..]),
                );
                if cluster_loop(u, &wire) {
                    continue;
                }
                // SSLD already blocked exitPoint(p) = u, so every arrival
                // is a genuine I-BGP announcement: minimum announcing id
                // wins, and the stored attributes follow the winner.
                match gathered.entry(p.id()) {
                    Entry::Occupied(mut e) => {
                        let (_, lf, a) = e.get_mut();
                        if sender < *lf {
                            *lf = sender;
                            *a = RrAttrs::learned(v, wire);
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert((p.clone(), sender, RrAttrs::learned(v, wire)));
                    }
                }
            }
        }
        let possible: Vec<ExitPathRef> = gathered.values().map(|(p, _, _)| p.clone()).collect();
        let learned: BTreeMap<ExitPathId, BgpId> =
            gathered.iter().map(|(&id, &(_, lf, _))| (id, lf)).collect();
        let attrs: BTreeMap<ExitPathId, RrAttrs> = gathered
            .into_iter()
            .map(|(id, (_, _, a))| (id, a))
            .collect();
        let routes: Vec<Route> = possible
            .iter()
            .map(|p| route_at(self.topo, u, p, learned[&p.id()]))
            .collect();
        let best = choose_best(self.config.policy, &routes);
        let advertised = self.advertised_set(u, &possible, &routes, best.as_ref());
        // Send-side filtering only: the receive-side cluster-loop drop is
        // the *receiver's* decision, applied in its own gather.
        let outgoing = ibgp
            .peers(u)
            .into_iter()
            .map(|v| {
                advertised
                    .iter()
                    .filter(|p| {
                        let from = attrs.get(&p.id()).and_then(|a| a.from);
                        reflect_allowed(self.topo, u, v, p.exit_point(), from)
                    })
                    .map(|p| p.id())
                    .collect()
            })
            .collect();
        NodeState {
            my_exits: cur.my_exits.clone(),
            possible,
            learned,
            best,
            advertised,
            outgoing,
            attrs,
            flat: Box::default(),
        }
    }

    /// The advertisement discipline per protocol variant.
    fn advertised_set(
        &self,
        u: RouterId,
        possible: &[ExitPathRef],
        routes: &[Route],
        best: Option<&Route>,
    ) -> Vec<ExitPathRef> {
        // Standard advertisement: exactly the best route's exit, if any.
        let best_singleton = || best.map(|r| vec![r.exit().clone()]).unwrap_or_default();
        match self.config.variant {
            ProtocolVariant::Standard => best_singleton(),
            ProtocolVariant::Walton => {
                if self.topo.ibgp().is_reflector(u) {
                    walton_advertised_set(self.config.policy, routes)
                } else {
                    best_singleton()
                }
            }
            ProtocolVariant::Modified => choose_set(possible, self.config.policy.med_mode),
        }
    }

    /// Apply one activation step: every node in `set` recomputes its state
    /// from the *pre-step* global state.
    ///
    /// Every node's update is computed once (through the memo), so the
    /// fixed-point check rides along for free: the return value is whether
    /// the **pre-step** configuration was stable, i.e. activating any set
    /// of nodes — not just `set` — would have changed nothing.
    pub fn step(&mut self, set: &[RouterId]) -> bool {
        let rows: Vec<Arc<NodeState>> = self.topo.routers().map(|u| self.update_row(u)).collect();
        let stable = rows
            .iter()
            .zip(&self.nodes)
            .all(|(new, old)| Arc::ptr_eq(new, old) || new.key() == old.key());
        for &u in set {
            let new = Arc::clone(&rows[u.index()]);
            let old = &self.nodes[u.index()];
            let best_changed =
                old.best.as_ref().map(Route::exit_id) != new.best.as_ref().map(Route::exit_id);
            if best_changed {
                self.metrics.best_changes += 1;
            }
            // Push-on-change message accounting: if the advertised set
            // changed, count one message per peer whose transfer-filtered
            // view changed. Both views were precomputed with their states.
            if !Arc::ptr_eq(old, &new) && old.advertised != new.advertised {
                for (before, after) in old.outgoing.iter().zip(&new.outgoing) {
                    if before != after {
                        self.metrics.messages += 1;
                        self.metrics.paths_advertised += after.len() as u64;
                    }
                }
            }
            self.metrics.activations += 1;
            self.nodes[u.index()] = new;
        }
        self.time += 1;
        stable
    }

    /// Whether the current configuration is a fixed point: activating
    /// every node would change nothing. A fixed point is stable under
    /// *any* activation sequence. Shares the update memo with
    /// [`SyncEngine::step`], so an `is_stable` + `step` pair computes each
    /// node's update at most once.
    pub fn is_stable(&self) -> bool {
        self.topo.routers().all(|u| {
            let new = self.update_row(u);
            let old = &self.nodes[u.index()];
            Arc::ptr_eq(&new, old) || new.key() == old.key()
        })
    }

    /// Canonical state key (for cycle detection), tagged with the
    /// schedule's phase.
    pub fn state_key(&self, phase: u64) -> StateKey {
        StateKey {
            nodes: self.nodes.iter().map(|n| n.key()).collect(),
            phase,
        }
    }

    /// Capture the mutable state for later [`SyncEngine::restore`]. O(n)
    /// `Arc` clones of interned rows — no deep copy.
    pub fn snapshot(&self) -> SyncSnapshot {
        SyncSnapshot {
            nodes: self.nodes.clone(),
            time: self.time,
        }
    }

    /// Restore a previously captured state (metrics and the update memo
    /// are left untouched, so replays reuse earlier work).
    pub fn restore(&mut self, snap: &SyncSnapshot) {
        self.nodes = snap.nodes.clone();
        self.time = snap.time;
    }

    /// The vector of best exit ids, indexed by router — the "routing
    /// configuration" two runs are compared on (determinism experiments).
    pub fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        self.nodes
            .iter()
            .map(|s| s.best.as_ref().map(Route::exit_id))
            .collect()
    }

    /// Install a flat-encoding table (see [`crate::flat`]). Every live
    /// row is (re-)encoded and the update memo is dropped (cached rows
    /// lack the encoding), so install the codec once, right after
    /// construction, before any search work.
    pub fn set_codec(&mut self, codec: Arc<StateCodec>) {
        assert!(
            !self.loop_prevention,
            "loop prevention is incompatible with the flat encoding"
        );
        self.memo.borrow_mut().clear();
        for node in &mut self.nodes {
            let row = Arc::make_mut(node);
            row.flat = row.encode_flat(&codec);
        }
        self.codec = Some(codec);
    }

    /// The installed flat-encoding table, if any.
    pub fn codec(&self) -> Option<&Arc<StateCodec>> {
        self.codec.as_ref()
    }

    /// The current configuration's [`FlatKey`] — equivalent to
    /// `state_key(0)` under the codec's encoding, assembled by copying
    /// the rows' cached words.
    ///
    /// # Panics
    ///
    /// Panics if no codec is installed.
    pub fn flat_key(&self) -> FlatKey {
        let codec = self.codec.as_deref().expect("flat_key requires set_codec");
        let mut words = Vec::with_capacity(codec.key_words());
        for node in &self.nodes {
            node.extend_flat(codec, &mut words);
        }
        FlatKey::new(words.into_boxed_slice())
    }

    /// Compute every node's update row once, for expanding all of a
    /// state's activation branches via [`SyncEngine::branch_key`] /
    /// [`SyncEngine::branch_snapshot`] without re-deriving rows per
    /// branch (a `step` per branch recomputes all `n` rows each time).
    /// `stable` is exactly [`SyncEngine::is_stable`] of the current
    /// configuration.
    pub fn plan(&self) -> StepPlan {
        let rows: Vec<Arc<NodeState>> = self.topo.routers().map(|u| self.update_row(u)).collect();
        let stable = rows
            .iter()
            .zip(&self.nodes)
            .all(|(new, old)| Arc::ptr_eq(new, old) || new.key() == old.key());
        StepPlan { rows, stable }
    }

    /// The [`FlatKey`] of the configuration that activating `set` from
    /// the current state would produce, without mutating the live state.
    /// Metrics account exactly as [`SyncEngine::step`] would for the same
    /// activation (activations, best changes, messages, paths).
    ///
    /// # Panics
    ///
    /// Panics if no codec is installed or `plan` came from a different
    /// engine/state (row count mismatch).
    pub fn branch_key(&mut self, plan: &StepPlan, set: &[RouterId]) -> FlatKey {
        assert_eq!(plan.rows.len(), self.nodes.len(), "foreign step plan");
        for &u in set {
            let new = &plan.rows[u.index()];
            let old = &self.nodes[u.index()];
            let best_changed =
                old.best.as_ref().map(Route::exit_id) != new.best.as_ref().map(Route::exit_id);
            if best_changed {
                self.metrics.best_changes += 1;
            }
            if !Arc::ptr_eq(old, new) && old.advertised != new.advertised {
                for (before, after) in old.outgoing.iter().zip(&new.outgoing) {
                    if before != after {
                        self.metrics.messages += 1;
                        self.metrics.paths_advertised += after.len() as u64;
                    }
                }
            }
            self.metrics.activations += 1;
        }
        let codec = self
            .codec
            .as_deref()
            .expect("branch_key requires set_codec");
        let mut words = Vec::with_capacity(codec.key_words());
        for (i, node) in self.nodes.iter().enumerate() {
            let row = if set.iter().any(|&u| u.index() == i) {
                &plan.rows[i]
            } else {
                node
            };
            row.extend_flat(codec, &mut words);
        }
        FlatKey::new(words.into_boxed_slice())
    }

    /// The ample activation set for exact partial-order reduction: every
    /// *enabled* router (planned row differs from its current row) whose
    /// activation leaves all of its transfer-filtered outgoing
    /// advertisements unchanged, in ascending id order.
    ///
    /// A node's update is a pure function of its own `MyExits` and its
    /// I-BGP peers' transfer-filtered advertised sets (see the memo-key
    /// derivation in `memo_key_into` and the session graph in
    /// `ibgp_topology::IbgpTopology`), so such an activation is
    /// *invisible*: it rewrites only the mover's private components
    /// (`possible`, `learnedFrom`, `best`) and no other router's next
    /// update can read the difference. Invisible activations therefore
    /// commute with every transition — other singletons *and* the
    /// full-set simultaneous exchange — and activating all of them at
    /// once reaches exactly the state any interleaving of them reaches.
    ///
    /// Exactness of pruning to this one compound branch (the ample step):
    ///
    /// * **Fixed points are preserved.** For any configuration `d`
    ///   reachable from the current state, the same activation sequence
    ///   from the ample successor reaches a state differing from `d` only
    ///   in not-yet-reapplied invisible rows with identical outgoing sets;
    ///   if `d` is a fixed point, activating those routers (each a real
    ///   singleton branch) lands exactly on `d`. So the set of reachable
    ///   stable best-exit vectors — the search's verdict evidence — is
    ///   unchanged.
    /// * **The cycle proviso (C3) is discharged structurally.** An
    ///   invisible activation changes no update input, so the step plan is
    ///   unchanged across the ample step and every member of the ample set
    ///   becomes disabled in the successor: the successor's ample set is
    ///   empty and it expands fully. Ample edges can never chain, let
    ///   alone close a cycle, so no action is postponed forever and
    ///   persistent-oscillation detection stays sound.
    ///
    /// Returns `None` when no enabled activation's invisibility can be
    /// proven — the caller must then expand every branch (the
    /// conservative fallback). Visible activations get no ample treatment
    /// at all: the full-set simultaneous branch is dependent on every
    /// visible mover, so no proper subset containing one is persistent.
    ///
    /// # Panics
    ///
    /// Panics if `plan` came from a different engine/state (row count
    /// mismatch).
    pub fn ample_set(&self, plan: &StepPlan) -> Option<Vec<RouterId>> {
        assert_eq!(plan.rows.len(), self.nodes.len(), "foreign step plan");
        let mut ample = Vec::new();
        for (i, (new, old)) in plan.rows.iter().zip(&self.nodes).enumerate() {
            if Arc::ptr_eq(new, old) || new.key() == old.key() {
                continue; // disabled: activating this router is a no-op
            }
            if new.outgoing == old.outgoing {
                ample.push(RouterId::new(i as u32));
            }
        }
        if ample.is_empty() {
            None
        } else {
            Some(ample)
        }
    }

    /// The successor snapshot activating `set` would produce — the state
    /// [`SyncEngine::branch_key`] keyed. O(n) `Arc` clones; the live
    /// configuration is untouched. Carries no metrics accounting (pair
    /// it with `branch_key`, which accounts the activation).
    pub fn branch_snapshot(&self, plan: &StepPlan, set: &[RouterId]) -> SyncSnapshot {
        let mut nodes = self.nodes.clone();
        for &u in set {
            nodes[u.index()] = Arc::clone(&plan.rows[u.index()]);
        }
        SyncSnapshot {
            nodes,
            time: self.time + 1,
        }
    }
}

/// Every node's update row for one activation step, precomputed once so
/// a search can expand all `n + 1` activation branches of a state
/// without recomputing rows per branch. Produced by [`SyncEngine::plan`].
pub struct StepPlan {
    rows: Vec<Arc<NodeState>>,
    /// Whether the planned-from configuration is a fixed point
    /// (identical to [`SyncEngine::is_stable`]).
    pub stable: bool,
}

/// The unified engine surface ([`Engine::run`] — the bounded
/// run-to-verdict loop — comes from the trait's default implementation).
impl Engine for SyncEngine<'_> {
    type Key = StateKey;

    fn router_count(&self) -> usize {
        self.topo.len()
    }

    fn step(&mut self, set: &[RouterId]) -> bool {
        SyncEngine::step(self, set)
    }

    fn is_stable(&self) -> bool {
        SyncEngine::is_stable(self)
    }

    fn state_key(&self, phase: u64) -> StateKey {
        SyncEngine::state_key(self, phase)
    }

    fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        SyncEngine::best_vector(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Activation, AllAtOnce, RoundRobin};
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med};
    use std::sync::Arc;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(r(exit_point))
                .build_unchecked(),
        )
    }

    /// Full mesh of 3, single exit at node 0: everyone should adopt it.
    #[test]
    fn single_exit_propagates_to_all() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged(), "{outcome}");
        for u in 0..3 {
            assert_eq!(eng.best_exit(r(u)), Some(ExitPathId::new(1)));
        }
        // Node 1's route is I-BGP with metric 1, learned from node 0.
        let route = eng.best_route(r(1)).unwrap();
        assert!(!route.is_ebgp());
        assert_eq!(route.learned_from(), topo.bgp_id(r(0)));
    }

    /// Route reflection: client learns an exit two clusters away.
    #[test]
    fn reflection_carries_routes_to_foreign_clients() {
        // Clusters {RR0; c1} and {RR2; c3}; exit at client 1.
        let topo = TopologyBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 1)
            .link(2, 3, 1)
            .cluster([0], [1])
            .cluster([2], [3])
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 1)]);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged(), "{outcome}");
        // Path: client1 -> RR0 (case 1), RR0 -> RR2 (case 2), RR2 -> c3 (case 3).
        assert_eq!(eng.best_exit(r(3)), Some(ExitPathId::new(1)));
    }

    /// Two equal exits in a full mesh: nodes pick the nearer one; the
    /// outcome is a fixed point.
    #[test]
    fn igp_metric_splits_traffic() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 5)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 0, 1)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, exits);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged());
        // Each prefers its own E-BGP route.
        assert_eq!(eng.best_exit(r(0)), Some(ExitPathId::new(1)));
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(2)));
    }

    /// The paper's Fig 2 shape in miniature: two reflectors, each closer
    /// to the *other's* exit, same neighbor AS and MED. Under simultaneous
    /// activation the standard protocol oscillates (DISAGREE); under the
    /// modified protocol it converges.
    fn disagree_topo() -> Topology {
        // 0 and 1 are reflectors; physical path 0-2-1 where 2 is a client
        // used only as IGP transit... simpler: direct link with asymmetric
        // exit costs creating the "closer to the other's exit" geometry:
        // exit A at node 0 has exit cost 10, exit B at node 1 has exit
        // cost 10; IGP distance 0<->1 is 1. Then node 0 sees A at 10, B at
        // 11 — no. To make each prefer the other's exit: exit costs 10 and
        // the IGP link cheap won't do it. Use per-exit costs: A cost 10 at
        // node 0 (so remote B is 1+0=1 best), B cost 10 at node 1.
        TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap()
    }

    fn disagree_exits() -> Vec<ExitPathRef> {
        let a = Arc::new(
            ExitPath::builder(ExitPathId::new(1))
                .via(AsId::new(1))
                .exit_point(r(0))
                .exit_cost(ibgp_types::IgpCost::new(10))
                .build_unchecked(),
        );
        let b = Arc::new(
            ExitPath::builder(ExitPathId::new(2))
                .via(AsId::new(1))
                .exit_point(r(1))
                .exit_cost(ibgp_types::IgpCost::new(10))
                .build_unchecked(),
        );
        vec![a, b]
    }

    #[test]
    fn disagree_is_stable_here_because_ebgp_wins() {
        // Sanity check of the geometry: with the paper's rule order the
        // E-BGP preference pins each node to its own exit, so this
        // configuration converges even simultaneously. (The true Fig 2
        // oscillation needs reflectors without own exits; see the
        // scenarios crate.)
        let topo = disagree_topo();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, disagree_exits());
        let outcome = eng.run(&mut AllAtOnce, 50);
        assert!(outcome.converged(), "{outcome}");
    }

    /// Withdrawn paths are flushed (Lemma 7.2 dynamics).
    #[test]
    fn withdrawn_exit_paths_flush_out() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 5, 2)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, exits);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged());
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(1)));
        // Withdraw p1; after re-running, nobody may still use or know it.
        assert!(eng.withdraw(ExitPathId::new(1)));
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged());
        for u in 0..3 {
            assert_eq!(eng.best_exit(r(u)), Some(ExitPathId::new(2)));
            assert!(eng
                .possible_exits(r(u))
                .iter()
                .all(|p| p.id() != ExitPathId::new(1)));
        }
        assert!(!eng.withdraw(ExitPathId::new(1)), "already gone");
    }

    /// Injection after convergence is picked up.
    #[test]
    fn injected_exit_paths_take_effect() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 9, 0)]);
        eng.run(&mut RoundRobin::new(), 50);
        // A better route (same AS, lower MED) appears at node 1.
        eng.inject(exit(2, 1, 0, 1));
        let outcome = eng.run(&mut RoundRobin::new(), 50);
        assert!(outcome.converged());
        assert_eq!(eng.best_exit(r(0)), Some(ExitPathId::new(2)));
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(2)));
    }

    /// The modified protocol advertises the whole Choose_set survivor set.
    #[test]
    fn modified_advertises_good_exits() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        // Two exits at node 0 through different ASes: both survive rules
        // 1-3, so both are advertised under the modified protocol.
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 0, 0)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, exits);
        eng.run(&mut RoundRobin::new(), 50);
        assert_eq!(eng.advertised(r(0)).len(), 2);
        assert_eq!(eng.possible_exits(r(1)).len(), 2);

        // Standard protocol: only the single best is advertised.
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 0, 0)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, exits);
        eng.run(&mut RoundRobin::new(), 50);
        assert_eq!(eng.advertised(r(0)).len(), 1);
        // Node 1 has no exits of its own and hears only node 0's best.
        assert_eq!(eng.possible_exits(r(1)).len(), 1);
    }

    /// Metrics count messages and best changes.
    #[test]
    fn metrics_accumulate() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        eng.run(&mut RoundRobin::new(), 100);
        let m = eng.metrics();
        assert!(m.activations > 0);
        assert!(m.messages >= 2, "node 0 must have announced to 2 peers");
        assert!(m.best_changes >= 3, "each node adopted a best route");
        assert!(m.paths_advertised >= m.messages);
    }

    /// The update memo fills up during a run and reports its hit rate;
    /// the naive path keeps the counters at zero.
    #[test]
    fn cache_counters_accumulate_only_when_memoized() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        assert!(eng.memoized());
        eng.run(&mut RoundRobin::new(), 100);
        let m = eng.metrics();
        assert!(m.cache_misses > 0, "first computations must miss");
        assert!(m.cache_hits > 0, "replays must hit");
        assert!(m.cache_hit_rate() > 0.0);

        let mut naive = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        naive.set_memoized(false);
        naive.run(&mut RoundRobin::new(), 100);
        let m = naive.metrics();
        assert_eq!((m.cache_hits, m.cache_misses), (0, 0));
    }

    /// The memoized engine and the naive reference path agree, including
    /// across inject/withdraw churn (which flushes the memo).
    #[test]
    fn memoized_engine_matches_naive_reference() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        for config in [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ] {
            let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
            let mut fast = SyncEngine::new(&topo, config, exits.clone());
            let mut slow = SyncEngine::new(&topo, config, exits);
            slow.set_memoized(false);
            let mut sched_a = RoundRobin::new();
            let mut sched_b = RoundRobin::new();
            for _ in 0..40 {
                let set = sched_a.next_set(4);
                assert_eq!(set, sched_b.next_set(4));
                let sa = fast.step(&set);
                let sb = slow.step(&set);
                assert_eq!(sa, sb, "stability flags diverge");
                assert_eq!(fast.best_vector(), slow.best_vector());
                assert_eq!(fast.is_stable(), slow.is_stable());
            }
            fast.withdraw(ExitPathId::new(1));
            slow.withdraw(ExitPathId::new(1));
            let out_a = fast.run(&mut RoundRobin::new(), 200);
            let out_b = slow.run(&mut RoundRobin::new(), 200);
            assert_eq!(out_a, out_b);
            assert_eq!(fast.best_vector(), slow.best_vector());
        }
    }

    /// `step` reports whether the pre-step configuration was already a
    /// fixed point.
    #[test]
    fn step_reports_fixed_point() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        let all = [r(0), r(1)];
        assert!(!eng.step(&all), "config(0) is not a fixed point");
        while !eng.step(&all) {}
        assert!(eng.is_stable());
        assert!(eng.step(&all), "fixed points self-loop");
    }

    /// Regression: `run` trusts `Activation::phase` to be normalized, so a
    /// periodic schedule whose period differs from `n` still gets sound
    /// cycle detection (the engine used to mangle phases with `% n`).
    #[test]
    fn run_supports_schedules_with_period_not_equal_to_n() {
        /// Period-2 schedule over any n >= 3: {0}, then {1, 2}.
        struct AlternatingPairs {
            pos: u64,
        }
        impl Activation for AlternatingPairs {
            fn next_set(&mut self, _n: usize) -> Vec<RouterId> {
                let set = if self.pos == 0 {
                    vec![r(0)]
                } else {
                    vec![r(1), r(2)]
                };
                self.pos = (self.pos + 1) % 2;
                set
            }
            fn phase(&self) -> Option<u64> {
                Some(self.pos)
            }
        }
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        let outcome = eng.run(&mut AlternatingPairs { pos: 0 }, 100);
        assert!(outcome.converged(), "{outcome}");
        for u in 0..3 {
            assert_eq!(eng.best_exit(r(u)), Some(ExitPathId::new(1)));
        }
    }

    /// Snapshots are interned rows: capturing and restoring round-trips
    /// the visible state and shares storage with the live configuration.
    #[test]
    fn snapshots_round_trip_and_share_rows() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, vec![exit(1, 1, 0, 0)]);
        eng.step(&[r(0)]);
        let snap = eng.snapshot();
        let key_before = eng.state_key(0);
        assert!(
            Arc::ptr_eq(&snap.nodes[0], &eng.nodes[0]),
            "rows are shared"
        );
        eng.step(&[r(1), r(2)]);
        eng.step(&[r(0)]);
        eng.restore(&snap);
        assert_eq!(eng.state_key(0), key_before);
        assert_eq!(eng.time(), snap.time);
    }

    /// An empty system (no exits) is immediately stable.
    #[test]
    fn no_exits_is_trivially_stable() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![]);
        let outcome = eng.run(&mut RoundRobin::new(), 10);
        assert_eq!(outcome, SyncOutcome::Converged { steps: 0 });
        assert_eq!(eng.best_vector(), vec![None, None]);
    }

    #[test]
    #[should_panic(expected = "duplicate exit path id")]
    fn duplicate_exit_ids_panic() {
        let topo = TopologyBuilder::new(1).cluster([0], []).build().unwrap();
        let _ = SyncEngine::new(
            &topo,
            ProtocolConfig::STANDARD,
            vec![exit(1, 1, 0, 0), exit(1, 2, 0, 0)],
        );
    }

    /// Loop prevention changes nothing on a full mesh: only own E-BGP
    /// routes are ever sent, and they carry empty cluster lists.
    #[test]
    fn loop_prevention_is_inert_on_full_meshes() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 5, 2)];
        let mut plain = SyncEngine::new(&topo, ProtocolConfig::STANDARD, exits.clone());
        let mut lp = SyncEngine::new(&topo, ProtocolConfig::STANDARD, exits);
        lp.set_loop_prevention(true);
        assert!(lp.loop_prevention());
        let mut sched_a = RoundRobin::new();
        let mut sched_b = RoundRobin::new();
        for _ in 0..20 {
            let set = sched_a.next_set(3);
            assert_eq!(set, sched_b.next_set(3));
            plain.step(&set);
            lp.step(&set);
            assert_eq!(plain.best_vector(), lp.best_vector());
        }
        assert_eq!(plain.is_stable(), lp.is_stable());
        // Every stored copy records its announcing peer; own routes none.
        assert_eq!(lp.rr_from(r(0), ExitPathId::new(1)), Some(None));
        assert_eq!(lp.rr_from(r(1), ExitPathId::new(1)), Some(Some(r(0))));
        assert_eq!(lp.cluster_list(r(1), ExitPathId::new(1)), Some(&[][..]));
    }

    /// The cbgp `bgp_rr` shape (explicit sessions): a non-client route is
    /// reflected to clients only, and the stored attributes match what a
    /// real reflector would stamp.
    #[test]
    fn loop_prevention_reflects_per_the_matrix() {
        // 0—1 peers, 2—3 peers, 1—4 peers; 2 a client of 1. Exit at 0.
        let topo = TopologyBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(1, 4, 1)
            .peer(0, 1)
            .peer(2, 3)
            .peer(1, 4)
            .rr_client(1, 2)
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        eng.set_loop_prevention(true);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged(), "{outcome}");
        let p1 = ExitPathId::new(1);
        // 0 (origin) and 1 (peer) and 2 (client of 1) know the route.
        assert_eq!(eng.best_exit(r(0)), Some(p1));
        assert_eq!(eng.best_exit(r(1)), Some(p1));
        assert_eq!(eng.best_exit(r(2)), Some(p1));
        // 1 must not reflect the non-client route to peer 4, and 2 (no
        // clients) must not re-advertise it to peer 3.
        assert_eq!(eng.best_exit(r(3)), None);
        assert_eq!(eng.best_exit(r(4)), None);
        assert_eq!(eng.outgoing_to(r(1), r(4)), vec![]);
        assert_eq!(eng.outgoing_to(r(2), r(3)), vec![]);
        // ORIGINATOR_ID and CLUSTER_LIST at the client.
        assert_eq!(eng.originator(r(2), p1), Some(r(0)));
        assert_eq!(eng.cluster_list(r(2), p1), Some(&[r(1)][..]));
        assert_eq!(eng.rr_from(r(2), p1), Some(Some(r(1))));
        // Without loop prevention, the partitionless Transfer relation is
        // not even defined for this graph — but the paper's relation on a
        // cluster encoding of the same intent would have let 3 learn it.
    }

    /// SSLD: a reflector never sends a route back to its originator,
    /// even when it learned the route from a third party.
    #[test]
    fn loop_prevention_ssld_blocks_the_originator() {
        // cbgp bgp_rr_originator_id_ssld shape: 0 client of both 1 and
        // 2; 1—2 peers. Exit at 0.
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(0, 2, 1)
            .link(1, 2, 1)
            .rr_client(1, 0)
            .rr_client(2, 0)
            .peer(1, 2)
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        eng.set_loop_prevention(true);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged(), "{outcome}");
        let p1 = ExitPathId::new(1);
        assert_eq!(eng.best_exit(r(1)), Some(p1));
        assert_eq!(eng.best_exit(r(2)), Some(p1));
        // Neither reflector offers the route back to its originator.
        assert_eq!(eng.outgoing_to(r(1), r(0)), vec![]);
        assert_eq!(eng.outgoing_to(r(2), r(0)), vec![]);
        // Both reflectors hear the route from client 0 directly (and
        // also via each other, stamped with a one-hop cluster list); the
        // lowest-BGP-id sender wins the stored copy, so each keeps the
        // direct client copy with an empty cluster list.
        assert_eq!(eng.rr_from(r(2), p1), Some(Some(r(0))));
        assert_eq!(eng.cluster_list(r(2), p1), Some(&[][..]));
    }

    /// Enabling loop prevention after stepping (or with a codec) is a
    /// construction error.
    #[test]
    #[should_panic(expected = "set_loop_prevention must precede stepping")]
    fn loop_prevention_after_steps_panics() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        eng.step(&[r(0)]);
        eng.set_loop_prevention(true);
    }

    #[test]
    #[should_panic(expected = "incompatible with the flat encoding")]
    fn codec_under_loop_prevention_panics() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, exits.clone());
        eng.set_loop_prevention(true);
        eng.set_codec(Arc::new(crate::flat::StateCodec::new(topo.len(), &exits)));
    }

    /// The flat key of the live configuration is the codec encoding of
    /// `state_key(0)`, before and after steps.
    #[test]
    fn flat_key_matches_encoded_state_key() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 5, 2)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, exits.clone());
        let codec = Arc::new(crate::flat::StateCodec::new(topo.len(), &exits));
        eng.set_codec(Arc::clone(&codec));
        for _ in 0..6 {
            assert_eq!(eng.flat_key(), codec.encode_key(&eng.state_key(0)));
            assert_eq!(codec.decode_key(&eng.flat_key()), eng.state_key(0));
            eng.step(&[r(0), r(1), r(2)]);
        }
    }

    /// `plan` + `branch_key`/`branch_snapshot` replicate `step` exactly:
    /// same successor keys, same stability verdict, same metrics deltas.
    #[test]
    fn branch_api_matches_step_semantics() {
        let topo = TopologyBuilder::new(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2])
            .cluster([1], [3])
            .build()
            .unwrap();
        for config in [
            ProtocolConfig::STANDARD,
            ProtocolConfig::WALTON,
            ProtocolConfig::MODIFIED,
        ] {
            let exits = vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)];
            let codec = Arc::new(crate::flat::StateCodec::new(topo.len(), &exits));
            let mut flat = SyncEngine::new(&topo, config, exits.clone());
            flat.set_codec(Arc::clone(&codec));
            let mut legacy = SyncEngine::new(&topo, config, exits);

            // Walk a few frontier states; at each, compare every branch.
            let mut branches: Vec<Vec<RouterId>> = (0..4).map(|i| vec![r(i)]).collect();
            branches.push((0..4).map(r).collect());
            let mut snap_flat = flat.snapshot();
            let mut snap_legacy = legacy.snapshot();
            for depth in 0..4 {
                flat.restore(&snap_flat);
                legacy.restore(&snap_legacy);
                let plan = flat.plan();
                assert_eq!(plan.stable, legacy.is_stable(), "depth {depth}");
                for branch in &branches {
                    flat.restore(&snap_flat);
                    legacy.restore(&snap_legacy);
                    let m_flat = flat.metrics();
                    let m_legacy = legacy.metrics();
                    let key = flat.branch_key(&plan, branch);
                    legacy.step(branch);
                    assert_eq!(
                        codec.decode_key(&key),
                        legacy.state_key(0),
                        "branch {branch:?} at depth {depth}"
                    );
                    // Identical metrics deltas (cache counters aside —
                    // the two paths schedule memo lookups differently).
                    let d_flat = flat.metrics();
                    let d_legacy = legacy.metrics();
                    assert_eq!(
                        d_flat.activations - m_flat.activations,
                        d_legacy.activations - m_legacy.activations
                    );
                    assert_eq!(
                        d_flat.messages - m_flat.messages,
                        d_legacy.messages - m_legacy.messages
                    );
                    assert_eq!(
                        d_flat.paths_advertised - m_flat.paths_advertised,
                        d_legacy.paths_advertised - m_legacy.paths_advertised
                    );
                    assert_eq!(
                        d_flat.best_changes - m_flat.best_changes,
                        d_legacy.best_changes - m_legacy.best_changes
                    );
                    // The branch snapshot restores to the keyed state.
                    flat.restore(&snap_flat);
                    let succ = flat.branch_snapshot(&plan, branch);
                    flat.restore(&succ);
                    assert_eq!(flat.flat_key(), key);
                }
                // Descend along the full-set branch.
                flat.restore(&snap_flat);
                let plan = flat.plan();
                snap_flat = flat.branch_snapshot(&plan, &branches[4]);
                legacy.restore(&snap_legacy);
                legacy.step(&branches[4]);
                snap_legacy = legacy.snapshot();
            }
        }
    }
}
