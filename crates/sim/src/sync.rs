//! The synchronous activation-sequence engine — the paper's operational
//! model of I-BGP (§4), extended with the modified protocol of §6 and the
//! Walton baseline of §8.
//!
//! State per node `v` at time `t`:
//!
//! * `MyExits(v)` — the E-BGP routes `v` itself knows (mutable only via
//!   explicit inject/withdraw, modeling E-BGP churn);
//! * `PossibleExits(v, t)` — the exit paths `v` can currently choose from;
//! * `BestRoute(v, t)` — `best_v(route(PossibleExits(v, t), v))`;
//! * the advertised set — what `v` offers its peers, per protocol
//!   variant: `{exit(BestRoute)}` (standard), the per-neighbor-AS vector
//!   (Walton, reflectors only), or `GoodExits(v, t) =
//!   Choose_set(PossibleExits(v, t))` (modified).
//!
//! When a node activates it *pulls* from every peer the transfer-filtered
//! advertised set, rebuilds `PossibleExits` from scratch (union with
//! `MyExits` — withdrawal is implicit), recomputes its best route, and
//! refreshes its advertised set. Nodes activated in the same step all read
//! the pre-step state, so simultaneous activations model simultaneous
//! message exchange (this is what drives the Fig 2 oscillation).

use crate::activation::Activation;
use crate::metrics::Metrics;
use crate::signature::{NodeStateKey, StateKey};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_proto::{choose_best, choose_set, route_at, transfer_set, walton_advertised_set, ProtocolVariant};
use ibgp_topology::Topology;
use ibgp_types::{BgpId, ExitPathId, ExitPathRef, Route, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The result of a bounded sync-engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncOutcome {
    /// The configuration reached a stable state (a fixed point of the full
    /// activation step) after the given number of steps.
    Converged {
        /// Steps taken before stability held.
        steps: u64,
    },
    /// The execution revisited a `(state, phase)` pair: it is provably
    /// periodic and will oscillate forever under this schedule.
    Cycle {
        /// Step at which the repeated state was first seen.
        first_seen: u64,
        /// Cycle length in steps.
        period: u64,
    },
    /// The step budget ran out without stability or a provable cycle
    /// (possible under aperiodic schedules).
    Budget {
        /// Steps taken.
        steps: u64,
    },
}

impl SyncOutcome {
    /// True for [`SyncOutcome::Converged`].
    pub fn converged(&self) -> bool {
        matches!(self, SyncOutcome::Converged { .. })
    }

    /// True for [`SyncOutcome::Cycle`].
    pub fn cycled(&self) -> bool {
        matches!(self, SyncOutcome::Cycle { .. })
    }
}

impl fmt::Display for SyncOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncOutcome::Converged { steps } => write!(f, "converged after {steps} steps"),
            SyncOutcome::Cycle { first_seen, period } => {
                write!(f, "cycle of period {period} entered at step {first_seen}")
            }
            SyncOutcome::Budget { steps } => write!(f, "no decision within {steps} steps"),
        }
    }
}

/// One node's mutable state.
#[derive(Debug, Clone)]
struct NodeState {
    my_exits: Vec<ExitPathRef>,
    possible: Vec<ExitPathRef>,
    /// `learnedFrom` per possible exit path.
    learned: BTreeMap<ExitPathId, BgpId>,
    best: Option<Route>,
    advertised: Vec<ExitPathRef>,
}

impl NodeState {
    fn key(&self) -> NodeStateKey {
        NodeStateKey {
            possible: self.possible.iter().map(|p| p.id()).collect(),
            best: self.best.as_ref().map(Route::exit_id),
            advertised: self.advertised.iter().map(|p| p.id()).collect(),
        }
    }
}

/// An opaque copy of a [`SyncEngine`]'s mutable state, for search
/// algorithms that explore the configuration space (see `ibgp-analysis`).
#[derive(Clone)]
pub struct SyncSnapshot {
    nodes: Vec<NodeState>,
    time: u64,
}

/// The paper's synchronous simulator.
///
/// ```
/// use ibgp_sim::{RoundRobin, SyncEngine};
/// use ibgp_proto::variants::ProtocolConfig;
/// use ibgp_topology::TopologyBuilder;
/// use ibgp_types::*;
/// use std::sync::Arc;
///
/// let topo = TopologyBuilder::new(2).link(0, 1, 1).full_mesh().build()?;
/// let exit = Arc::new(ExitPath::builder(ExitPathId::new(1))
///     .via(AsId::new(1)).exit_point(RouterId::new(0)).build_unchecked());
/// let mut engine = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, vec![exit]);
/// let outcome = engine.run(&mut RoundRobin::new(), 1_000);
/// assert!(outcome.converged());
/// assert_eq!(engine.best_exit(RouterId::new(1)), Some(ExitPathId::new(1)));
/// # Ok::<(), ibgp_topology::TopologyError>(())
/// ```
#[derive(Clone)]
pub struct SyncEngine<'a> {
    topo: &'a Topology,
    config: ProtocolConfig,
    nodes: Vec<NodeState>,
    time: u64,
    metrics: Metrics,
}

impl<'a> SyncEngine<'a> {
    /// Create an engine with the given injected exit paths distributed to
    /// their exit points. `config(0)`: `PossibleExits(u, 0) = MyExits(u)`,
    /// no best route, nothing advertised.
    ///
    /// # Panics
    ///
    /// Panics if an exit path's exit point is out of range or two paths
    /// share an id — scenario construction errors.
    pub fn new(topo: &'a Topology, config: ProtocolConfig, exits: Vec<ExitPathRef>) -> Self {
        let n = topo.len();
        let mut nodes = vec![
            NodeState {
                my_exits: Vec::new(),
                possible: Vec::new(),
                learned: BTreeMap::new(),
                best: None,
                advertised: Vec::new(),
            };
            n
        ];
        let mut seen = std::collections::HashSet::new();
        for p in exits {
            assert!(
                p.exit_point().index() < n,
                "exit point {} out of range",
                p.exit_point()
            );
            assert!(seen.insert(p.id()), "duplicate exit path id {}", p.id());
            nodes[p.exit_point().index()].my_exits.push(p);
        }
        for node in &mut nodes {
            node.my_exits.sort_by_key(|p| p.id());
            node.possible = node.my_exits.clone();
            for p in &node.possible {
                node.learned.insert(p.id(), p.next_hop().bgp_id());
            }
        }
        Self {
            topo,
            config,
            nodes,
            time: 0,
            metrics: Metrics::default(),
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The protocol configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// Current simulated time (number of steps applied).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// `BestRoute(u, now)`.
    pub fn best_route(&self, u: RouterId) -> Option<&Route> {
        self.nodes[u.index()].best.as_ref()
    }

    /// The best route's exit-path id, if any.
    pub fn best_exit(&self, u: RouterId) -> Option<ExitPathId> {
        self.nodes[u.index()].best.as_ref().map(Route::exit_id)
    }

    /// `PossibleExits(u, now)`, sorted by id.
    pub fn possible_exits(&self, u: RouterId) -> &[ExitPathRef] {
        &self.nodes[u.index()].possible
    }

    /// The currently advertised set (for the modified protocol this is
    /// `GoodExits(u, now)`), sorted by id.
    pub fn advertised(&self, u: RouterId) -> &[ExitPathRef] {
        &self.nodes[u.index()].advertised
    }

    /// `MyExits(u)`.
    pub fn my_exits(&self, u: RouterId) -> &[ExitPathRef] {
        &self.nodes[u.index()].my_exits
    }

    /// The candidate routes `route(PossibleExits(u), u)` as the decision
    /// process sees them right now — for inspection and `explain`-style
    /// tooling.
    pub fn candidate_routes(&self, u: RouterId) -> Vec<Route> {
        let node = &self.nodes[u.index()];
        node.possible
            .iter()
            .map(|p| {
                let lf = node
                    .learned
                    .get(&p.id())
                    .copied()
                    .unwrap_or_else(|| p.next_hop().bgp_id());
                route_at(self.topo, u, p, lf)
            })
            .collect()
    }

    /// Inject a new E-BGP route at its exit point (E-BGP churn). Takes
    /// effect on the exit point's next activation.
    pub fn inject(&mut self, p: ExitPathRef) {
        let node = &mut self.nodes[p.exit_point().index()];
        assert!(
            node.my_exits.iter().all(|q| q.id() != p.id()),
            "duplicate exit path id {}",
            p.id()
        );
        node.my_exits.push(p);
        node.my_exits.sort_by_key(|p| p.id());
    }

    /// Withdraw an E-BGP route from `MyExits` (the Lemma 7.2 scenario:
    /// the path may linger in `PossibleExits` sets until flushed).
    /// Returns whether the path was present.
    pub fn withdraw(&mut self, id: ExitPathId) -> bool {
        for node in &mut self.nodes {
            let before = node.my_exits.len();
            node.my_exits.retain(|p| p.id() != id);
            if node.my_exits.len() != before {
                return true;
            }
        }
        false
    }

    /// Compute node `u`'s post-activation state from the current global
    /// state, without applying it.
    fn compute_update(&self, u: RouterId) -> NodeState {
        let cur = &self.nodes[u.index()];
        // Gather: own exits plus transfer-filtered peer advertisements,
        // tracking the minimum announcing BGP id per path.
        let mut gathered: BTreeMap<ExitPathId, (ExitPathRef, BgpId)> = BTreeMap::new();
        for p in &cur.my_exits {
            gathered.insert(p.id(), (p.clone(), p.next_hop().bgp_id()));
        }
        for v in self.topo.ibgp().peers(u) {
            let sender = self.topo.bgp_id(v);
            for p in transfer_set(self.topo, v, u, &self.nodes[v.index()].advertised) {
                gathered
                    .entry(p.id())
                    .and_modify(|(_, lf)| {
                        // Own exits keep their external learnedFrom; I-BGP
                        // announcements take the minimum announcing peer.
                        if p.exit_point() != u {
                            *lf = (*lf).min(sender);
                        }
                    })
                    .or_insert((p, sender));
            }
        }
        let possible: Vec<ExitPathRef> = gathered.values().map(|(p, _)| p.clone()).collect();
        let learned: BTreeMap<ExitPathId, BgpId> =
            gathered.iter().map(|(&id, &(_, lf))| (id, lf)).collect();
        let routes: Vec<Route> = possible
            .iter()
            .map(|p| route_at(self.topo, u, p, learned[&p.id()]))
            .collect();
        let best = choose_best(self.config.policy, &routes);
        let advertised = self.advertised_set(u, &possible, &routes, best.as_ref());
        NodeState {
            my_exits: cur.my_exits.clone(),
            possible,
            learned,
            best,
            advertised,
        }
    }

    /// The advertisement discipline per protocol variant.
    fn advertised_set(
        &self,
        u: RouterId,
        possible: &[ExitPathRef],
        routes: &[Route],
        best: Option<&Route>,
    ) -> Vec<ExitPathRef> {
        match self.config.variant {
            ProtocolVariant::Standard => best.map(|r| vec![r.exit().clone()]).unwrap_or_default(),
            ProtocolVariant::Walton => {
                if self.topo.ibgp().is_reflector(u) {
                    walton_advertised_set(self.config.policy, routes)
                } else {
                    best.map(|r| vec![r.exit().clone()]).unwrap_or_default()
                }
            }
            ProtocolVariant::Modified => choose_set(possible, self.config.policy.med_mode),
        }
    }

    /// Apply one activation step: every node in `set` recomputes its state
    /// from the *pre-step* global state.
    pub fn step(&mut self, set: &[RouterId]) {
        let updates: Vec<(RouterId, NodeState)> = set
            .iter()
            .map(|&u| (u, self.compute_update(u)))
            .collect();
        for (u, new) in updates {
            let old = &self.nodes[u.index()];
            let best_changed =
                old.best.as_ref().map(Route::exit_id) != new.best.as_ref().map(Route::exit_id);
            if best_changed {
                self.metrics.best_changes += 1;
            }
            // Push-on-change message accounting: if the advertised set
            // changed, count one message per peer whose transfer-filtered
            // view changed.
            if old.advertised != new.advertised {
                for v in self.topo.ibgp().peers(u) {
                    let before = transfer_set(self.topo, u, v, &old.advertised);
                    let after = transfer_set(self.topo, u, v, &new.advertised);
                    if before != after {
                        self.metrics.messages += 1;
                        self.metrics.paths_advertised += after.len() as u64;
                    }
                }
            }
            self.metrics.activations += 1;
            self.nodes[u.index()] = new;
        }
        self.time += 1;
    }

    /// Whether the current configuration is a fixed point: activating
    /// every node would change nothing. A fixed point is stable under
    /// *any* activation sequence.
    pub fn is_stable(&self) -> bool {
        self.topo.routers().all(|u| {
            let new = self.compute_update(u);
            new.key() == self.nodes[u.index()].key()
        })
    }

    /// Canonical state key (for cycle detection), tagged with the
    /// schedule's phase.
    pub fn state_key(&self, phase: u64) -> StateKey {
        StateKey {
            nodes: self.nodes.iter().map(NodeState::key).collect(),
            phase,
        }
    }

    /// Run under the given activation sequence until stability, a provable
    /// cycle, or the step budget.
    pub fn run(&mut self, schedule: &mut dyn Activation, max_steps: u64) -> SyncOutcome {
        let n = self.topo.len();
        let mut seen: HashMap<u64, Vec<(StateKey, u64)>> = HashMap::new();
        for step in 0..max_steps {
            if self.is_stable() {
                return SyncOutcome::Converged { steps: step };
            }
            if let Some(phase) = schedule.phase() {
                let key = self.state_key(phase % n.max(1) as u64);
                let digest = key.digest();
                let bucket = seen.entry(digest).or_default();
                if let Some((_, first)) = bucket.iter().find(|(k, _)| *k == key) {
                    return SyncOutcome::Cycle {
                        first_seen: *first,
                        period: step - *first,
                    };
                }
                bucket.push((key, step));
            }
            let set = schedule.next_set(n);
            self.step(&set);
        }
        if self.is_stable() {
            SyncOutcome::Converged { steps: max_steps }
        } else {
            SyncOutcome::Budget { steps: max_steps }
        }
    }

    /// Capture the mutable state for later [`SyncEngine::restore`].
    pub fn snapshot(&self) -> SyncSnapshot {
        SyncSnapshot {
            nodes: self.nodes.clone(),
            time: self.time,
        }
    }

    /// Restore a previously captured state (metrics are left untouched).
    pub fn restore(&mut self, snap: &SyncSnapshot) {
        self.nodes = snap.nodes.clone();
        self.time = snap.time;
    }

    /// The vector of best exit ids, indexed by router — the "routing
    /// configuration" two runs are compared on (determinism experiments).
    pub fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        self.nodes
            .iter()
            .map(|s| s.best.as_ref().map(Route::exit_id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{AllAtOnce, RoundRobin};
    use ibgp_topology::TopologyBuilder;
    use ibgp_types::{AsId, ExitPath, Med};
    use std::sync::Arc;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(id))
                .via(AsId::new(next_as))
                .med(Med::new(med))
                .exit_point(r(exit_point))
                .build_unchecked(),
        )
    }

    /// Full mesh of 3, single exit at node 0: everyone should adopt it.
    #[test]
    fn single_exit_propagates_to_all() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged(), "{outcome}");
        for u in 0..3 {
            assert_eq!(eng.best_exit(r(u)), Some(ExitPathId::new(1)));
        }
        // Node 1's route is I-BGP with metric 1, learned from node 0.
        let route = eng.best_route(r(1)).unwrap();
        assert!(!route.is_ebgp());
        assert_eq!(route.learned_from(), topo.bgp_id(r(0)));
    }

    /// Route reflection: client learns an exit two clusters away.
    #[test]
    fn reflection_carries_routes_to_foreign_clients() {
        // Clusters {RR0; c1} and {RR2; c3}; exit at client 1.
        let topo = TopologyBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 1)
            .link(2, 3, 1)
            .cluster([0], [1])
            .cluster([2], [3])
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 1)]);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged(), "{outcome}");
        // Path: client1 -> RR0 (case 1), RR0 -> RR2 (case 2), RR2 -> c3 (case 3).
        assert_eq!(eng.best_exit(r(3)), Some(ExitPathId::new(1)));
    }

    /// Two equal exits in a full mesh: nodes pick the nearer one; the
    /// outcome is a fixed point.
    #[test]
    fn igp_metric_splits_traffic() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 5)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 0, 1)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, exits);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged());
        // Each prefers its own E-BGP route.
        assert_eq!(eng.best_exit(r(0)), Some(ExitPathId::new(1)));
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(2)));
    }

    /// The paper's Fig 2 shape in miniature: two reflectors, each closer
    /// to the *other's* exit, same neighbor AS and MED. Under simultaneous
    /// activation the standard protocol oscillates (DISAGREE); under the
    /// modified protocol it converges.
    fn disagree_topo() -> Topology {
        // 0 and 1 are reflectors; physical path 0-2-1 where 2 is a client
        // used only as IGP transit... simpler: direct link with asymmetric
        // exit costs creating the "closer to the other's exit" geometry:
        // exit A at node 0 has exit cost 10, exit B at node 1 has exit
        // cost 10; IGP distance 0<->1 is 1. Then node 0 sees A at 10, B at
        // 11 — no. To make each prefer the other's exit: exit costs 10 and
        // the IGP link cheap won't do it. Use per-exit costs: A cost 10 at
        // node 0 (so remote B is 1+0=1 best), B cost 10 at node 1.
        TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap()
    }

    fn disagree_exits() -> Vec<ExitPathRef> {
        let a = Arc::new(
            ExitPath::builder(ExitPathId::new(1))
                .via(AsId::new(1))
                .exit_point(r(0))
                .exit_cost(ibgp_types::IgpCost::new(10))
                .build_unchecked(),
        );
        let b = Arc::new(
            ExitPath::builder(ExitPathId::new(2))
                .via(AsId::new(1))
                .exit_point(r(1))
                .exit_cost(ibgp_types::IgpCost::new(10))
                .build_unchecked(),
        );
        vec![a, b]
    }

    #[test]
    fn disagree_is_stable_here_because_ebgp_wins() {
        // Sanity check of the geometry: with the paper's rule order the
        // E-BGP preference pins each node to its own exit, so this
        // configuration converges even simultaneously. (The true Fig 2
        // oscillation needs reflectors without own exits; see the
        // scenarios crate.)
        let topo = disagree_topo();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, disagree_exits());
        let outcome = eng.run(&mut AllAtOnce, 50);
        assert!(outcome.converged(), "{outcome}");
    }

    /// Withdrawn paths are flushed (Lemma 7.2 dynamics).
    #[test]
    fn withdrawn_exit_paths_flush_out() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 5, 2)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, exits);
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged());
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(1)));
        // Withdraw p1; after re-running, nobody may still use or know it.
        assert!(eng.withdraw(ExitPathId::new(1)));
        let outcome = eng.run(&mut RoundRobin::new(), 100);
        assert!(outcome.converged());
        for u in 0..3 {
            assert_eq!(eng.best_exit(r(u)), Some(ExitPathId::new(2)));
            assert!(eng
                .possible_exits(r(u))
                .iter()
                .all(|p| p.id() != ExitPathId::new(1)));
        }
        assert!(!eng.withdraw(ExitPathId::new(1)), "already gone");
    }

    /// Injection after convergence is picked up.
    #[test]
    fn injected_exit_paths_take_effect() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 9, 0)]);
        eng.run(&mut RoundRobin::new(), 50);
        // A better route (same AS, lower MED) appears at node 1.
        eng.inject(exit(2, 1, 0, 1));
        let outcome = eng.run(&mut RoundRobin::new(), 50);
        assert!(outcome.converged());
        assert_eq!(eng.best_exit(r(0)), Some(ExitPathId::new(2)));
        assert_eq!(eng.best_exit(r(1)), Some(ExitPathId::new(2)));
    }

    /// The modified protocol advertises the whole Choose_set survivor set.
    #[test]
    fn modified_advertises_good_exits() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        // Two exits at node 0 through different ASes: both survive rules
        // 1-3, so both are advertised under the modified protocol.
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 0, 0)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::MODIFIED, exits);
        eng.run(&mut RoundRobin::new(), 50);
        assert_eq!(eng.advertised(r(0)).len(), 2);
        assert_eq!(eng.possible_exits(r(1)).len(), 2);

        // Standard protocol: only the single best is advertised.
        let exits = vec![exit(1, 1, 0, 0), exit(2, 2, 0, 0)];
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, exits);
        eng.run(&mut RoundRobin::new(), 50);
        assert_eq!(eng.advertised(r(0)).len(), 1);
        // Node 1 has no exits of its own and hears only node 0's best.
        assert_eq!(eng.possible_exits(r(1)).len(), 1);
    }

    /// Metrics count messages and best changes.
    #[test]
    fn metrics_accumulate() {
        let topo = TopologyBuilder::new(3)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![exit(1, 1, 0, 0)]);
        eng.run(&mut RoundRobin::new(), 100);
        let m = eng.metrics();
        assert!(m.activations > 0);
        assert!(m.messages >= 2, "node 0 must have announced to 2 peers");
        assert!(m.best_changes >= 3, "each node adopted a best route");
        assert!(m.paths_advertised >= m.messages);
    }

    /// An empty system (no exits) is immediately stable.
    #[test]
    fn no_exits_is_trivially_stable() {
        let topo = TopologyBuilder::new(2)
            .link(0, 1, 1)
            .full_mesh()
            .build()
            .unwrap();
        let mut eng = SyncEngine::new(&topo, ProtocolConfig::STANDARD, vec![]);
        let outcome = eng.run(&mut RoundRobin::new(), 10);
        assert_eq!(outcome, SyncOutcome::Converged { steps: 0 });
        assert_eq!(eng.best_vector(), vec![None, None]);
    }

    #[test]
    #[should_panic(expected = "duplicate exit path id")]
    fn duplicate_exit_ids_panic() {
        let topo = TopologyBuilder::new(1).cluster([0], []).build().unwrap();
        let _ = SyncEngine::new(
            &topo,
            ProtocolConfig::STANDARD,
            vec![exit(1, 1, 0, 0), exit(1, 2, 0, 0)],
        );
    }
}
